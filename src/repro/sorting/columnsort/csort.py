"""csort: three-pass out-of-core columnsort on single linear FG pipelines.

Pass structure (paper, Section III, Figure 3): each pass runs ONE linear
pipeline per node — csort never needs FG's multi-pipeline extensions
because all of its communication is balanced and predetermined:

* **pass 1** (steps 1-2): ``read -> sort -> communicate -> write``; the
  communicate stage does a balanced ``alltoallv`` routing each sorted
  column's transpose pieces and assembles the received pieces into one
  contiguous r-record block ("fragmented column" layout);
* **pass 2** (steps 3-4): identical shape with the untranspose routing;
* **pass 3** (steps 5-8): ``read -> sort -> shift -> sort -> stripe ->
  write``; the shift stage exchanges sorted half-columns with the
  neighboring column's owner (matched Send/Recv pairs of equal size), the
  second sort realizes step 7, and the stripe stage performs one more
  balanced exchange that deals the final sorted segments into PDM striped
  blocks.

Column ownership is round-robin (column j on node j % P), which makes the
half-column shift flow forward across same-numbered rounds instead of
serializing the cluster.

Intermediate columns are stored *fragmented*: each round writes one
contiguous r-record block, and each column is read back as s/P contiguous
chunks.  The records within an intermediate column arrive unordered —
harmless, because the next pass's first act is to sort the column (the
odd columnsort steps), so only the multiset routed to each column matters.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.errors import ColumnsortShapeError, SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort.steps import (
    ColumnsortPlan,
    plan_columnsort,
    validate_shape,
)

__all__ = ["CsortConfig", "CsortReport", "run_csort"]

TAG_SHIFT = 31
TAG_STRIPE = 32


@dataclasses.dataclass(frozen=True)
class CsortConfig:
    """Tuning knobs for csort."""

    #: records per output stripe block; must satisfy P * block <= r
    out_block_records: int = 4096
    #: buffers per pipeline
    nbuffers: int = 4
    input_file: str = "input"
    output_file: str = "output"
    #: intermediate file names (deleted afterwards when cleanup is set)
    temp1_file: str = "csort-L1"
    temp2_file: str = "csort-L2"
    cleanup_temps: bool = True
    #: force a specific column count instead of the planner's choice
    s_override: Optional[int] = None
    #: copies of the permute passes' sort stage (stateless map; see
    #: repro.tune and docs/TUNING.md)
    sort_replicas: int = 1
    #: prefix for FGProgram names; the multi-tenant scheduler sets a
    #: per-job prefix so concurrent jobs stay distinguishable
    name_prefix: str = "csort"

    def __post_init__(self):
        if self.out_block_records < 1:
            raise SortError("out_block_records must be >= 1")
        if self.nbuffers < 1:
            raise SortError("nbuffers must be >= 1")
        if self.sort_replicas < 1:
            raise SortError("sort_replicas must be >= 1")


@dataclasses.dataclass
class CsortReport:
    """Per-node result of one csort execution (times in kernel seconds)."""

    rank: int
    pass1_time: float
    pass2_time: float
    pass3_time: float
    plan: ColumnsortPlan

    @property
    def total_time(self) -> float:
        return self.pass1_time + self.pass2_time + self.pass3_time


def _chunk_for_dest(matrix_pieces: np.ndarray, dest: int, P: int,
                    spp: int) -> np.ndarray:
    """Group pieces for one destination node, ordered by its local round."""
    # matrix_pieces has shape (s, frag) with row j = piece for column j
    return np.ascontiguousarray(matrix_pieces[dest::P]).reshape(-1)


def _build_permute_pass(prog: FGProgram, node: Node, comm: Comm,
                        schema: RecordSchema, plan: ColumnsortPlan,
                        in_file: str, in_fragmented: bool, out_file: str,
                        routing: str, nbuffers: int, name: str,
                        sort_replicas: int = 1) -> None:
    """One of the two permutation passes (steps 1-2 or 3-4)."""
    P = comm.size
    r, s = plan.r, plan.s
    spp = plan.cols_per_node
    frag = plan.frag_records
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, in_file, schema)
    rf_out = RecordFile(node.disk, out_file, schema)
    tag = 41 if routing == "transpose" else 42

    def read(ctx, buf):
        t = buf.round
        if in_fragmented:
            # column j = t*P + rank, as s/P contiguous chunks
            parts = [rf_in.read(tp * r + t * (P * frag), P * frag)
                     for tp in range(spp)]
            column = np.concatenate(parts) if len(parts) > 1 else parts[0]
        else:
            column = rf_in.read(t * r, r)
        buf.put(column)
        buf.tags["column"] = t * P + comm.rank
        return buf

    def sort(ctx, buf):
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    def communicate(ctx, buf):
        records = buf.view(schema.dtype)
        column = buf.tags["column"]
        if routing == "transpose":
            # row i -> column i % s: piece for column j is records[j::s]
            pieces = np.ascontiguousarray(
                records.reshape(r // s, s).T)        # (s, frag)
        else:
            # row i -> column (i*s + c) // r: contiguous slices
            starts = [max(0, (j * r - column + s - 1) // s)
                      for j in range(s)] + [r]
            pieces = np.stack([records[starts[j]:starts[j + 1]]
                               for j in range(s)])   # (s, frag)
        node.compute_copy(records.nbytes)
        chunks = [_chunk_for_dest(pieces, dest, P, spp)
                  for dest in range(P)]
        received = comm.alltoall(chunks)
        # assemble the round block: [my column j_local][sender n][frag]
        stacked = np.stack([c.reshape(spp, frag) for c in received],
                           axis=1)                   # (spp, P, frag)
        node.compute_copy(records.nbytes)
        buf.put(stacked.reshape(-1))
        return buf

    def write(ctx, buf):
        rf_out.write(buf.round * r, buf.view(schema.dtype))
        return buf

    prog.add_pipeline(
        name,
        [Stage.map("read", read), Stage.map("sort", sort),
         Stage.map("communicate", communicate), Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=r * rec_bytes, rounds=spp,
        aux_buffers=True,
        replicas={"sort": sort_replicas} if sort_replicas > 1 else None)


def _build_pass3(prog: FGProgram, node: Node, comm: Comm,
                 schema: RecordSchema, plan: ColumnsortPlan, in_file: str,
                 out_file: str, block_records: int, nbuffers: int) -> None:
    """Steps 5-8 plus striping, in one linear pipeline."""
    P = comm.size
    r, s = plan.r, plan.s
    spp = plan.cols_per_node
    frag = plan.frag_records
    half = r // 2
    B = block_records
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, in_file, schema)
    out_local = RecordFile(node.disk, out_file, schema)
    state: dict = {}

    def read(ctx, buf):
        t = buf.round
        if t == spp:
            buf.clear()
            buf.tags["final"] = True
            return buf
        parts = [rf_in.read(tp * r + t * (P * frag), P * frag)
                 for tp in range(spp)]
        column = np.concatenate(parts) if len(parts) > 1 else parts[0]
        buf.put(column)
        buf.tags["column"] = t * P + comm.rank
        return buf

    def sort5(ctx, buf):
        if buf.tags.get("final"):
            return buf
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    def shift(ctx):
        """Step 6: form shifted column c from bottom(c-1) + top(c)."""
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                ctx.forward(buf)
                return
            if buf.tags.get("final"):
                # the extra round: only the owner of column s-1 holds the
                # pending bottom half, which becomes the final segment
                bottom = state.pop("pending_bottom", None)
                if bottom is not None:
                    buf.put(bottom)
                    buf.tags["g0"] = s * r - half
                ctx.convey(buf)
                continue
            column = buf.tags["column"]
            records = buf.view(schema.dtype)
            top = records[:half].copy()
            bottom = records[half:].copy()
            if column + 1 < s:
                comm.send((column + 1) % P, bottom, tag=TAG_SHIFT)
            else:
                state["pending_bottom"] = bottom  # used in the final round
            if column == 0:
                # shifted column 0 = [-inf*half, top]; the -infs drop out
                buf.put(top)
                buf.tags["g0"] = 0
            else:
                _, prev_bottom = comm.recv(source=(column - 1) % P,
                                           tag=TAG_SHIFT)
                node.compute_copy(prev_bottom.nbytes + top.nbytes)
                buf.put(np.concatenate([prev_bottom, top]))
                buf.tags["g0"] = column * r - half
            ctx.convey(buf)

    def sort7(ctx, buf):
        if buf.size == 0:
            return buf
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    def stripe(ctx):
        """Balanced exchange dealing sorted segments into striped blocks.

        Every node sends exactly one (possibly empty) message to every
        node per round and receives exactly P, so the stage stays
        balanced and deterministic even though block ownership is
        round-robin.
        """
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                ctx.forward(buf)
                return
            records = (buf.view(schema.dtype) if buf.size else
                       schema.empty(0))
            g0 = buf.tags.get("g0", 0)
            length = len(records)
            # split [g0, g0+length) into per-owner block-aligned groups;
            # an owner's blocks are every P-th, so its group is contiguous
            # in its local file
            groups: list[list] = [[] for _ in range(P)]
            metas: list[Optional[dict]] = [None] * P
            if length:
                first_block = g0 // B
                last_block = (g0 + length - 1) // B
                for gb in range(first_block, last_block + 1):
                    lo = max(gb * B, g0)
                    hi = min((gb + 1) * B, g0 + length)
                    owner = gb % P
                    groups[owner].append(records[lo - g0:hi - g0])
                    if metas[owner] is None:
                        metas[owner] = {"gb": gb, "off": lo - gb * B}
            for dest in range(P):
                payload = (np.concatenate(groups[dest]) if groups[dest]
                           else schema.empty(0))
                comm.send(dest, payload, tag=TAG_STRIPE, meta=metas[dest])
            buf.clear()
            placements = []
            fill = 0
            target = buf.data[:].view(schema.dtype)
            for _ in range(P):
                msg = comm.recv_msg(tag=TAG_STRIPE)
                if len(msg.payload) == 0:
                    continue
                node.compute_copy(msg.payload.nbytes)
                target[fill:fill + len(msg.payload)] = msg.payload
                placements.append((msg.meta["gb"], msg.meta["off"],
                                   fill, len(msg.payload)))
                fill += len(msg.payload)
            buf.size = fill * rec_bytes
            buf.tags["placements"] = placements
            ctx.convey(buf)

    def write(ctx, buf):
        if buf.size == 0:
            return buf
        records = buf.view(schema.dtype)
        for gb, off, start, count in buf.tags["placements"]:
            local_start = (gb // P) * B + off
            out_local.write(local_start, records[start:start + count])
        return buf

    stages = [Stage.map("read", read), Stage.map("sort5", sort5),
              Stage.source_driven("shift", shift),
              Stage.map("sort7", sort7),
              Stage.source_driven("stripe", stripe),
              Stage.map("write", write)]
    # pass 3 is deeper than the permute passes: floor the pool at the
    # pipeline depth so every stage can hold a buffer at once (FG101)
    prog.add_pipeline(
        "pass3", stages, nbuffers=max(nbuffers, len(stages)),
        buffer_bytes=2 * r * rec_bytes, rounds=spp + 1)


def run_csort(node: Node, comm: Comm, schema: RecordSchema,
              config: Optional[CsortConfig] = None) -> CsortReport:
    """Sort the cluster's ``input`` files into striped ``output`` (SPMD)."""
    if config is None:
        config = CsortConfig()
    kernel = node.kernel
    P = comm.size

    rf_in = RecordFile(node.disk, config.input_file, schema)
    n_local = rf_in.n_records
    totals = comm.allgather(n_local)
    if len(set(totals)) != 1:
        raise ColumnsortShapeError(
            f"csort needs evenly distributed input; per-node sizes "
            f"{totals}")
    n_total = sum(totals)
    if config.s_override is not None:
        s = config.s_override
        if n_total % s != 0:
            raise ColumnsortShapeError(
                f"s_override {s} does not divide N = {n_total}")
        r = n_total // s
        validate_shape(n_total, r, s, P)
        plan = ColumnsortPlan(n_total, r, s, P)
    else:
        plan = plan_columnsort(n_total, P)
    if config.out_block_records * P > plan.r:
        raise ColumnsortShapeError(
            f"stripe block of {config.out_block_records} records needs "
            f"P*block <= r = {plan.r} so each round's exchange stays "
            "single-group per owner")

    # size the output file up front (every node's striped share)
    my_blocks = [b for b in range(-(-n_total // config.out_block_records))
                 if b % P == comm.rank]
    my_records = sum(min(config.out_block_records,
                         n_total - b * config.out_block_records)
                     for b in my_blocks)
    RecordFile(node.disk, config.output_file, schema).delete()
    node.disk.storage.truncate(config.output_file,
                               my_records * schema.record_bytes)

    comm.barrier()
    t0 = kernel.now()

    prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"{config.name_prefix}-p1@{comm.rank}")
    _build_permute_pass(prog1, node, comm, schema, plan,
                        in_file=config.input_file, in_fragmented=False,
                        out_file=config.temp1_file, routing="transpose",
                        nbuffers=config.nbuffers, name="pass1",
                        sort_replicas=config.sort_replicas)
    prog1.run()
    comm.barrier()
    t1 = kernel.now()

    prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"{config.name_prefix}-p2@{comm.rank}")
    _build_permute_pass(prog2, node, comm, schema, plan,
                        in_file=config.temp1_file, in_fragmented=True,
                        out_file=config.temp2_file, routing="untranspose",
                        nbuffers=config.nbuffers, name="pass2",
                        sort_replicas=config.sort_replicas)
    prog2.run()
    comm.barrier()
    t2 = kernel.now()

    prog3 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"{config.name_prefix}-p3@{comm.rank}")
    _build_pass3(prog3, node, comm, schema, plan,
                 in_file=config.temp2_file, out_file=config.output_file,
                 block_records=config.out_block_records,
                 nbuffers=config.nbuffers)
    prog3.run()
    comm.barrier()
    t3 = kernel.now()

    if config.cleanup_temps:
        node.disk.delete(config.temp1_file)
        node.disk.delete(config.temp2_file)

    return CsortReport(rank=comm.rank, pass1_time=t1 - t0,
                       pass2_time=t2 - t1, pass3_time=t3 - t2, plan=plan)
