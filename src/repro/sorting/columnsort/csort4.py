"""The four-pass out-of-core columnsort (paper, Section III).

"A relatively simple four-pass implementation of out-of-core columnsort
groups together each pair of consecutive steps into a single pass" —
passes 1-2 are the permutation passes shared with the three-pass version;
pass 3 realizes steps 5-6 (sort, then shift down by half a column,
writing the *shifted* columns back to disk), and pass 4 realizes steps
7-8 (sort the shifted columns, unshift, stripe the final output).

The three-pass version exists precisely because "the communicate,
permute, and write stages of the third pass, together with the read stage
of the fourth pass, just shift each column down by the height of half a
column" — coalescing them eliminates one full read+write of the data.
This module keeps the un-coalesced version alive so the benefit is
measurable: csort4 moves 8x the data volume through the disks where
csort3 moves 6x and dsort 4x.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.errors import ColumnsortShapeError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort.csort import (
    CsortConfig,
    _build_permute_pass,
)
from repro.sorting.columnsort.steps import (
    ColumnsortPlan,
    plan_columnsort,
    validate_shape,
)

__all__ = ["Csort4Report", "run_csort4"]

TAG_SHIFT4 = 33
TAG_STRIPE4 = 34


@dataclasses.dataclass
class Csort4Report:
    """Per-node result of one four-pass csort execution."""

    rank: int
    pass_times: list[float]  #: four entries
    plan: ColumnsortPlan

    @property
    def total_time(self) -> float:
        return sum(self.pass_times)


def _shifted_len(m: int, s: int, half: int, r: int) -> int:
    """Stored record count of shifted column m (sentinel halves drop)."""
    if m == 0 or m == s:
        return half
    return r


def _build_pass3_shift(prog: FGProgram, node: Node, comm: Comm,
                       schema: RecordSchema, plan: ColumnsortPlan,
                       in_file: str, out_file: str, nbuffers: int) -> None:
    """Steps 5-6: sort each column, form shifted columns, write them."""
    P = comm.size
    r, s = plan.r, plan.s
    spp = plan.cols_per_node
    frag = plan.frag_records
    half = r // 2
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, in_file, schema)
    rf_out = RecordFile(node.disk, out_file, schema)
    state: dict = {}

    def read(ctx, buf):
        t = buf.round
        if t == spp:
            buf.clear()
            buf.tags["final"] = True
            return buf
        parts = [rf_in.read(tp * r + t * (P * frag), P * frag)
                 for tp in range(spp)]
        buf.put(np.concatenate(parts) if len(parts) > 1 else parts[0])
        buf.tags["column"] = t * P + comm.rank
        return buf

    def sort5(ctx, buf):
        if buf.tags.get("final"):
            return buf
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    def shift(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                ctx.forward(buf)
                return
            if buf.tags.get("final"):
                bottom = state.pop("pending_bottom", None)
                if bottom is not None:
                    buf.put(bottom)  # shifted column s (minus +inf half)
                buf.tags["slot"] = spp
                ctx.convey(buf)
                continue
            column = buf.tags["column"]
            records = buf.view(schema.dtype)
            top = records[:half].copy()
            bottom = records[half:].copy()
            if column + 1 < s:
                comm.send((column + 1) % P, bottom, tag=TAG_SHIFT4)
            else:
                state["pending_bottom"] = bottom
            if column == 0:
                buf.put(top)  # shifted column 0 (minus -inf half)
            else:
                _, prev_bottom = comm.recv(source=(column - 1) % P,
                                           tag=TAG_SHIFT4)
                node.compute_copy(prev_bottom.nbytes + top.nbytes)
                buf.put(np.concatenate([prev_bottom, top]))
            buf.tags["slot"] = buf.round
            ctx.convey(buf)

    def write(ctx, buf):
        if buf.size == 0:
            return buf
        # fixed r-record slots; partial slots for the sentinel columns
        rf_out.write(buf.tags["slot"] * r, buf.view(schema.dtype))
        return buf

    prog.add_pipeline(
        "pass3",
        [Stage.map("read", read), Stage.map("sort5", sort5),
         Stage.source_driven("shift", shift), Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=r * rec_bytes, rounds=spp + 1)


def _build_pass4_unshift(prog: FGProgram, node: Node, comm: Comm,
                         schema: RecordSchema, plan: ColumnsortPlan,
                         in_file: str, out_file: str, block_records: int,
                         nbuffers: int) -> None:
    """Steps 7-8: sort shifted columns, unshift via striping exchange."""
    P = comm.size
    r, s = plan.r, plan.s
    spp = plan.cols_per_node
    half = r // 2
    B = block_records
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, in_file, schema)
    out_local = RecordFile(node.disk, out_file, schema)

    def read(ctx, buf):
        t = buf.round
        m = t * P + comm.rank  # shifted column index
        if t == spp and comm.rank != P - 1:
            buf.clear()
            return buf
        if t == spp:
            m = s  # node P-1's extra shifted column
        count = _shifted_len(m, s, half, r)
        buf.put(rf_in.read(t * r, count))
        buf.tags["m"] = m
        return buf

    def sort7(ctx, buf):
        if buf.size == 0:
            return buf
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        # step 8: the sorted shifted column m occupies the contiguous
        # final positions [m*r - half, m*r - half + len)
        m = buf.tags["m"]
        buf.tags["g0"] = 0 if m == 0 else m * r - half
        return buf

    def stripe(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                ctx.forward(buf)
                return
            records = (buf.view(schema.dtype) if buf.size
                       else schema.empty(0))
            g0 = buf.tags.get("g0", 0)
            length = len(records)
            groups: list[list] = [[] for _ in range(P)]
            metas: list[Optional[dict]] = [None] * P
            if length:
                first_block = g0 // B
                last_block = (g0 + length - 1) // B
                for gb in range(first_block, last_block + 1):
                    lo = max(gb * B, g0)
                    hi = min((gb + 1) * B, g0 + length)
                    owner = gb % P
                    groups[owner].append(records[lo - g0:hi - g0])
                    if metas[owner] is None:
                        metas[owner] = {"gb": gb, "off": lo - gb * B}
            for dest in range(P):
                payload = (np.concatenate(groups[dest]) if groups[dest]
                           else schema.empty(0))
                comm.send(dest, payload, tag=TAG_STRIPE4,
                          meta=metas[dest])
            buf.clear()
            placements = []
            fill = 0
            target = buf.data[:].view(schema.dtype)
            for _ in range(P):
                msg = comm.recv_msg(tag=TAG_STRIPE4)
                if len(msg.payload) == 0:
                    continue
                node.compute_copy(msg.payload.nbytes)
                target[fill:fill + len(msg.payload)] = msg.payload
                placements.append((msg.meta["gb"], msg.meta["off"],
                                   fill, len(msg.payload)))
                fill += len(msg.payload)
            buf.size = fill * rec_bytes
            buf.tags["placements"] = placements
            ctx.convey(buf)

    def write(ctx, buf):
        if buf.size == 0:
            return buf
        records = buf.view(schema.dtype)
        for gb, off, start, count in buf.tags["placements"]:
            out_local.write((gb // P) * B + off,
                            records[start:start + count])
        return buf

    prog.add_pipeline(
        "pass4",
        [Stage.map("read", read), Stage.map("sort7", sort7),
         Stage.source_driven("stripe", stripe), Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=2 * r * rec_bytes, rounds=spp + 1)


def run_csort4(node: Node, comm: Comm, schema: RecordSchema,
               config: Optional[CsortConfig] = None) -> Csort4Report:
    """Four-pass csort SPMD main (same config type as the 3-pass)."""
    if config is None:
        config = CsortConfig()
    kernel = node.kernel
    P = comm.size

    rf_in = RecordFile(node.disk, config.input_file, schema)
    totals = comm.allgather(rf_in.n_records)
    if len(set(totals)) != 1:
        raise ColumnsortShapeError(
            f"csort needs evenly distributed input; per-node sizes "
            f"{totals}")
    n_total = sum(totals)
    if config.s_override is not None:
        s = config.s_override
        r = n_total // s
        validate_shape(n_total, r, s, P)
        plan = ColumnsortPlan(n_total, r, s, P)
    else:
        plan = plan_columnsort(n_total, P)
    if config.out_block_records * P > plan.r:
        raise ColumnsortShapeError(
            f"stripe block of {config.out_block_records} records needs "
            f"P*block <= r = {plan.r}")

    my_blocks = [b for b in range(-(-n_total // config.out_block_records))
                 if b % P == comm.rank]
    my_records = sum(min(config.out_block_records,
                         n_total - b * config.out_block_records)
                     for b in my_blocks)
    RecordFile(node.disk, config.output_file, schema).delete()
    node.disk.storage.truncate(config.output_file,
                               my_records * schema.record_bytes)
    temp3 = config.temp2_file + "-shifted"

    times = []
    comm.barrier()
    last = kernel.now()

    prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"csort4-p1@{comm.rank}")
    _build_permute_pass(prog1, node, comm, schema, plan,
                        in_file=config.input_file, in_fragmented=False,
                        out_file=config.temp1_file, routing="transpose",
                        nbuffers=config.nbuffers, name="pass1")
    prog1.run()
    comm.barrier()
    times.append(kernel.now() - last)
    last = kernel.now()

    prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"csort4-p2@{comm.rank}")
    _build_permute_pass(prog2, node, comm, schema, plan,
                        in_file=config.temp1_file, in_fragmented=True,
                        out_file=config.temp2_file, routing="untranspose",
                        nbuffers=config.nbuffers, name="pass2")
    prog2.run()
    comm.barrier()
    times.append(kernel.now() - last)
    last = kernel.now()

    prog3 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"csort4-p3@{comm.rank}")
    _build_pass3_shift(prog3, node, comm, schema, plan,
                       in_file=config.temp2_file, out_file=temp3,
                       nbuffers=config.nbuffers)
    prog3.run()
    comm.barrier()
    times.append(kernel.now() - last)
    last = kernel.now()

    prog4 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"csort4-p4@{comm.rank}")
    _build_pass4_unshift(prog4, node, comm, schema, plan,
                         in_file=temp3, out_file=config.output_file,
                         block_records=config.out_block_records,
                         nbuffers=config.nbuffers)
    prog4.run()
    comm.barrier()
    times.append(kernel.now() - last)

    if config.cleanup_temps:
        node.disk.delete(config.temp1_file)
        node.disk.delete(config.temp2_file)
        node.disk.delete(temp3)

    return Csort4Report(rank=comm.rank, pass_times=times, plan=plan)
