"""Columnsort mathematics: shapes, permutations, and a reference sorter.

Matrix convention: records form an r x s matrix stored column-major;
"column j" is the slice of r records at column-major positions
[j*r, (j+1)*r).  Columnsort requires r >= 2(s-1)^2; our out-of-core
implementation additionally requires s % P == 0 is NOT needed (ownership
is round-robin: column j lives on node j % P) but does require r % s == 0
(so the transpose scatters each column evenly — this is also what makes
every communication step balanced) and r even (for the half-column shift).

The even steps:

* step 2 ("transpose"): entry with column-major index k moves to row-major
  index k.  With r % s == 0 this sends row i of ANY column to new column
  ``i % s`` — each column contributes exactly r/s records to every column.
* step 4 ("untranspose"): the inverse — row i of column c goes to the
  column ``(i*s + c) // r``; the records destined for each column form a
  contiguous slice of the sorted column.
* steps 6/8 (shift/unshift by r/2): realized by exchanging sorted column
  halves with the neighboring column's owner; the sorted "shifted column"
  m occupies the contiguous final positions [m*r - r/2, m*r + r/2).

Because every odd step re-sorts each column, the *order* of records within
an intermediate column is irrelevant — only the multiset routed to each
column matters.  The out-of-core passes exploit this to write one
contiguous r-record block per round ("fragmented column" layout) and read
each column back as s/P contiguous chunks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ColumnsortShapeError

__all__ = [
    "ColumnsortPlan",
    "plan_columnsort",
    "validate_shape",
    "transpose_pieces",
    "untranspose_pieces",
    "reference_columnsort",
]


@dataclasses.dataclass(frozen=True)
class ColumnsortPlan:
    """Matrix geometry for an out-of-core columnsort run."""

    n_records: int  #: N = r * s
    r: int          #: rows (records per column)
    s: int          #: columns
    n_nodes: int    #: P; column j lives on node j % P

    @property
    def cols_per_node(self) -> int:
        return self.s // self.n_nodes

    @property
    def frag_records(self) -> int:
        """Records each column contributes to each column across a
        permutation step (r/s)."""
        return self.r // self.s

    def owner(self, column: int) -> int:
        return column % self.n_nodes

    def local_round(self, column: int) -> int:
        """The round in which a column's owner processes it."""
        return column // self.n_nodes


def validate_shape(n_records: int, r: int, s: int,
                   n_nodes: int) -> None:
    """Raise :class:`ColumnsortShapeError` unless (r, s) is usable."""
    if r * s != n_records:
        raise ColumnsortShapeError(
            f"r*s = {r}*{s} = {r * s} != N = {n_records}")
    if s % n_nodes != 0:
        raise ColumnsortShapeError(
            f"s = {s} must be a multiple of P = {n_nodes}")
    if s > 1 and r % s != 0:
        raise ColumnsortShapeError(
            f"r = {r} must be a multiple of s = {s} for balanced "
            "transposition")
    if r % 2 != 0:
        raise ColumnsortShapeError(f"r = {r} must be even for the "
                                   "half-column shift")
    if r < 2 * (s - 1) ** 2:
        raise ColumnsortShapeError(
            f"columnsort requires r >= 2(s-1)^2: r = {r} < "
            f"{2 * (s - 1) ** 2} for s = {s}")


def plan_columnsort(n_records: int, n_nodes: int) -> ColumnsortPlan:
    """Choose the largest legal column count s for N records on P nodes.

    Larger s means smaller columns (less memory per buffer), so we take
    the largest s = k*P satisfying all of :func:`validate_shape`.
    """
    if n_records < 2 * n_nodes:
        raise ColumnsortShapeError(
            f"cannot columnsort {n_records} records on {n_nodes} nodes "
            "(need at least 2 records per column)")
    best = None
    s = n_nodes
    while True:
        if n_records % s == 0:
            r = n_records // s
            try:
                validate_shape(n_records, r, s, n_nodes)
                best = ColumnsortPlan(n_records, r, s, n_nodes)
            except ColumnsortShapeError:
                pass
        s += n_nodes
        # once 2(s-1)^2 exceeds N/s no larger s can work
        if 2 * (s - 1) ** 2 > n_records // s:
            break
    if best is None:
        raise ColumnsortShapeError(
            f"no legal columnsort shape for N = {n_records} on "
            f"P = {n_nodes} nodes; choose N so that some s = k*P divides "
            "N with N/s a multiple of s and N/s >= 2(s-1)^2")
    return best


# ---------------------------------------------------------------------------
# piece extraction for the communication steps
# ---------------------------------------------------------------------------


def transpose_pieces(sorted_column: np.ndarray, column: int,
                     plan: ColumnsortPlan) -> list[np.ndarray]:
    """Step-2 routing: the piece of ``sorted_column`` destined for each
    column j (row i goes to column i % s).  Returns s arrays of r/s
    records each, indexed by destination column."""
    r, s = plan.r, plan.s
    if len(sorted_column) != r:
        raise ColumnsortShapeError(
            f"column has {len(sorted_column)} records, expected {r}")
    matrix = sorted_column.reshape(r // s, s)
    return [np.ascontiguousarray(matrix[:, j]) for j in range(s)]


def untranspose_pieces(sorted_column: np.ndarray, column: int,
                       plan: ColumnsortPlan) -> list[np.ndarray]:
    """Step-4 routing: row i of column c goes to column (i*s + c) // r;
    the pieces are contiguous slices.  Returns s arrays of r/s records."""
    r, s = plan.r, plan.s
    if len(sorted_column) != r:
        raise ColumnsortShapeError(
            f"column has {len(sorted_column)} records, expected {r}")
    starts = [(j * r - column + s - 1) // s for j in range(s + 1)]
    starts[0] = 0
    starts[s] = r
    return [sorted_column[starts[j]:starts[j + 1]] for j in range(s)]


# ---------------------------------------------------------------------------
# reference in-memory columnsort (for validating the math)
# ---------------------------------------------------------------------------


def reference_columnsort(keys: np.ndarray, r: int, s: int) -> np.ndarray:
    """Leighton's eight steps, literally, on a column-major key matrix.

    Used by tests as ground truth for the step permutations; returns the
    keys in sorted (column-major) order.
    """
    validate_shape(len(keys), r, s, n_nodes=1)
    mat = np.array(keys, dtype=np.uint64).reshape(s, r).T  # column-major

    def sort_columns(m):
        return np.sort(m, axis=0)

    mat = sort_columns(mat)                       # step 1
    mat = _permute_rowmajor(mat, r, s)            # step 2
    mat = sort_columns(mat)                       # step 3
    mat = _unpermute_rowmajor(mat, r, s)          # step 4
    mat = sort_columns(mat)                       # step 5
    shifted = _shift_half(mat, r, s)              # step 6
    shifted = np.sort(shifted, axis=0)            # step 7
    mat = _unshift_half(shifted, r, s)            # step 8
    return mat.T.reshape(-1)                      # column-major order


def _permute_rowmajor(mat: np.ndarray, r: int, s: int) -> np.ndarray:
    """column-major index k -> row-major index k (step 2)."""
    flat_cm = mat.T.reshape(-1)           # entries in column-major order
    return flat_cm.reshape(r, s)          # laid down row-major


def _unpermute_rowmajor(mat: np.ndarray, r: int, s: int) -> np.ndarray:
    """row-major index k -> column-major index k (step 4)."""
    flat_rm = mat.reshape(-1)             # entries in row-major order
    return flat_rm.reshape(s, r).T        # laid down column-major


def _shift_half(mat: np.ndarray, r: int, s: int) -> np.ndarray:
    """Step 6: shift down r/2 into an r x (s+1) matrix with -inf/+inf."""
    half = r // 2
    lo = np.uint64(0)
    hi = np.uint64(np.iinfo(np.uint64).max)
    out = np.empty((r, s + 1), dtype=np.uint64)
    out[:half, 0] = lo
    out[half:, 0] = mat[:half, 0]
    for m in range(1, s):
        out[:half, m] = mat[half:, m - 1]
        out[half:, m] = mat[:half, m]
    out[:half, s] = mat[half:, s - 1]
    out[half:, s] = hi
    return out


def _unshift_half(shifted: np.ndarray, r: int, s: int) -> np.ndarray:
    """Step 8: inverse of step 6 (boundary sentinels drop out)."""
    half = r // 2
    out = np.empty((r, s), dtype=np.uint64)
    for m in range(s):
        out[:half, m] = shifted[half:, m]       # shifted col m, lower part
        out[half:, m] = shifted[:half, m + 1]   # shifted col m+1, upper
    return out
