"""csort: the out-of-core columnsort baseline (paper, Section III).

Columnsort (Leighton) sorts an r x s matrix (r >= 2(s-1)^2) into
column-major order in eight steps: odd steps sort every column, even steps
apply fixed permutations (transpose, untranspose, half-column shift and
unshift).  The three-pass out-of-core implementation groups steps as
1-2 / 3-4 / 5-8, runs one linear FG pipeline per node per pass, and uses
only *balanced* communication — its defining contrast with dsort.

* :mod:`.steps` — the pure mathematics: shape planning, the step
  permutations, fragment-layout index maps, and an in-memory reference
  columnsort used to validate everything;
* :mod:`.csort` — the FG implementation with per-pass timing.
"""

from repro.sorting.columnsort.steps import (
    ColumnsortPlan,
    plan_columnsort,
    reference_columnsort,
)
from repro.sorting.columnsort.csort import CsortConfig, CsortReport, run_csort
from repro.sorting.columnsort.csort4 import Csort4Report, run_csort4

__all__ = [
    "ColumnsortPlan",
    "plan_columnsort",
    "reference_columnsort",
    "CsortConfig",
    "CsortReport",
    "run_csort",
    "Csort4Report",
    "run_csort4",
]
