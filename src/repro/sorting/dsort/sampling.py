"""Splitter selection by oversampling, with extended keys.

The preprocessing phase picks P-1 splitters so that pass 1 can route each
record to its partition.  Following the paper (and Blelloch et al. /
Seshadri & Naughton), each node draws an oversample of its local records;
the samples are gathered, sorted, and every (oversample)-th element becomes
a splitter.

**Extended keys** (paper, Section V): to guard against heavily unbalanced
partitions when keys repeat (all-equal, Poisson), each key is extended to
the unique triple ``(key, origin node, origin position)``.  Splitters carry
their extension; a record belongs to partition ``i`` = number of splitters
whose extended key is strictly below the record's.  The extension never
becomes part of any record — it is recomputed from a record's provenance.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema

__all__ = ["Splitters", "select_splitters", "partition_ids"]


@dataclasses.dataclass(frozen=True)
class Splitters:
    """P-1 splitters with their extended-key components, sorted ascending
    by (key, node, index)."""

    keys: np.ndarray     #: uint64 splitter keys
    nodes: np.ndarray    #: origin node of each splitter sample
    indices: np.ndarray  #: origin record position of each splitter sample

    def __post_init__(self):
        if not (len(self.keys) == len(self.nodes) == len(self.indices)):
            raise SortError("splitter component lengths differ")

    @property
    def n_partitions(self) -> int:
        return len(self.keys) + 1


def _sample_chunks(n_local: int, count: int, n_chunks: int,
                   rng: np.random.Generator) -> list[tuple[int, int]]:
    """Stratified contiguous (start, length) chunks totalling ~``count``
    records.  Reading a handful of chunks instead of ``count`` scattered
    records keeps the sampling phase's seek cost negligible, as the paper
    reports it to be."""
    count = min(count, n_local)
    n_chunks = max(1, min(n_chunks, count))
    per_chunk = -(-count // n_chunks)
    chunks = []
    stratum = n_local / n_chunks
    for c in range(n_chunks):
        lo = int(c * stratum)
        hi = max(lo + 1, int((c + 1) * stratum))
        length = min(per_chunk, hi - lo)
        start = lo + int(rng.integers(0, max(1, hi - lo - length + 1)))
        chunks.append((start, length))
    return chunks


def select_splitters(node: Node, comm: Comm, schema: RecordSchema,
                     input_file: str, oversample: int = 32,
                     seed: int = 0) -> Splitters:
    """SPMD splitter selection: sample, gather, sort, pick, broadcast.

    Every rank must call this; all ranks return the same splitters.
    Sampling charges the disk for one record-sized read per sample (the
    paper reports this phase as negligible, and it is here too).
    """
    if oversample < 1:
        raise SortError(f"oversample must be >= 1, got {oversample}")
    rf = RecordFile(node.disk, input_file, schema)
    n_local = rf.n_records
    rng = np.random.default_rng(seed + 7919 * comm.rank)
    chunks = _sample_chunks(n_local, oversample * comm.size, 16, rng)
    key_parts = []
    pos_parts = []
    for start, length in chunks:
        key_parts.append(rf.read(start, length)["key"])
        pos_parts.append(np.arange(start, start + length, dtype=np.int64))
    keys = np.concatenate(key_parts)
    positions = np.concatenate(pos_parts)
    sample = {"keys": keys, "positions": positions}

    gathered = comm.gather(sample, root=0)
    if comm.rank == 0:
        all_keys = np.concatenate([g["keys"] for g in gathered])
        all_nodes = np.concatenate([
            np.full(len(g["keys"]), r, dtype=np.int64)
            for r, g in enumerate(gathered)])
        all_pos = np.concatenate([g["positions"] for g in gathered])
        # sort samples by extended key (key, node, position)
        order = np.lexsort((all_pos, all_nodes, all_keys))
        all_keys, all_nodes, all_pos = (all_keys[order], all_nodes[order],
                                        all_pos[order])
        total = len(all_keys)
        picks = [(i + 1) * total // comm.size - 1
                 for i in range(comm.size - 1)]
        picks = np.asarray(picks, dtype=np.int64)
        chosen = {
            "keys": all_keys[picks],
            "nodes": all_nodes[picks],
            "indices": all_pos[picks],
        }
    else:
        chosen = None
    chosen = comm.bcast(chosen, root=0)
    return Splitters(keys=chosen["keys"], nodes=chosen["nodes"],
                     indices=chosen["indices"])


def partition_ids(keys: np.ndarray, rank: int, positions: np.ndarray,
                  splitters: Splitters) -> np.ndarray:
    """Partition index of each record, by extended-key comparison.

    ``keys`` are the records' sort keys, ``positions`` their positions in
    this node's input file, and ``rank`` this node — together forming each
    record's unique extended key ``(key, rank, position)``.  Vectorized:
    plain keys resolve by binary search; only records whose key collides
    with a splitter key take the (at most P-1 element) extension loop.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    positions = np.asarray(positions, dtype=np.int64)
    if keys.shape != positions.shape:
        raise SortError("keys and positions must align")
    base = np.searchsorted(splitters.keys, keys, side="left")
    upper = np.searchsorted(splitters.keys, keys, side="right")
    part = base.astype(np.int64)
    collide = np.nonzero(upper > base)[0]
    if len(collide):
        b = base[collide]
        u = upper[collide]
        pos = positions[collide]
        extra = np.zeros(len(collide), dtype=np.int64)
        for bb, uu in set(zip(b.tolist(), u.tolist())):
            sel = (b == bb) & (u == uu)
            snodes = splitters.nodes[bb:uu]
            sidx = splitters.indices[bb:uu]
            p_sel = pos[sel]
            # count splitters with extension strictly below (rank, pos)
            below = ((snodes[None, :] < rank)
                     | ((snodes[None, :] == rank)
                        & (sidx[None, :] < p_sel[:, None])))
            extra[sel] = below.sum(axis=1)
        part[collide] = b + extra
    return part
