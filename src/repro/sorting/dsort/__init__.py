"""dsort: the out-of-core, distribution-based sort (paper, Section V).

Three phases:

1. **sampling** (:mod:`.sampling`) — oversampled splitter selection with
   extended keys, so even all-equal inputs partition evenly;
2. **pass 1** (:mod:`.pass1`) — partition + distribute, using disjoint
   send/receive FG pipelines per node (Figure 6); each node ends with
   sorted runs on its disk;
3. **pass 2** (:mod:`.pass2`) — merge + load-balance + stripe, using
   virtual vertical pipelines intersecting a merge stage, plus disjoint
   send/receive pipelines (Figure 7).

:func:`repro.sorting.dsort.dsort.run_dsort` orchestrates all three and
returns per-phase timings; :mod:`.linear` is the single-linear-pipeline
ablation the paper's Section VIII proposes.
"""

from repro.sorting.dsort.dsort import DsortConfig, DsortReport, run_dsort
from repro.sorting.dsort.sampling import (
    Splitters,
    partition_ids,
    select_splitters,
)
from repro.sorting.dsort.linear import run_dsort_linear
from repro.sorting.dsort.nowsort import (
    NowSortReport,
    run_nowsort,
    uniform_splitters,
)

__all__ = [
    "DsortConfig",
    "DsortReport",
    "run_dsort",
    "run_dsort_linear",
    "NowSortReport",
    "run_nowsort",
    "uniform_splitters",
    "Splitters",
    "partition_ids",
    "select_splitters",
]
