"""dsort driver: sampling, pass 1, pass 2, with per-phase timing.

:func:`run_dsort` is an SPMD per-node main — launch it with
``Cluster.run`` (or spawn it per rank yourself).  Barriers separate the
phases so the per-phase durations reported by every rank agree, matching
how the paper's Figure 8 stacks per-pass times.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.pass1 import build_pass1
from repro.sorting.dsort.pass2 import build_pass2
from repro.sorting.dsort.sampling import select_splitters

__all__ = ["DsortConfig", "DsortReport", "run_dsort"]


@dataclasses.dataclass(frozen=True)
class DsortConfig:
    """Tuning knobs for dsort (defaults sized for simulation-scale runs)."""

    #: records per pass-1 buffer; also the size of each sorted run
    block_records: int = 4096
    #: records per vertical-pipeline buffer in pass 2 (small, many runs)
    vertical_block_records: int = 1024
    #: records per output stripe block (and per horizontal buffer)
    out_block_records: int = 4096
    #: buffers per pipeline
    nbuffers: int = 4
    #: samples per node = oversample * P
    oversample: int = 32
    input_file: str = "input"
    output_file: str = "output"
    #: prefix for intermediate run files
    run_prefix: str = "dsort-run"
    #: delete run files after pass 2 (untimed cleanup)
    cleanup_runs: bool = True
    seed: int = 0

    def __post_init__(self):
        for field in ("block_records", "vertical_block_records",
                      "out_block_records", "nbuffers", "oversample"):
            if getattr(self, field) < 1:
                raise SortError(f"{field} must be >= 1")


@dataclasses.dataclass
class DsortReport:
    """Per-node result of one dsort execution (times in kernel seconds)."""

    rank: int
    sampling_time: float
    pass1_time: float
    pass2_time: float
    #: records this node held between the passes (its partition size)
    partition_records: int
    #: number of sorted runs merged in pass 2
    n_runs: int

    @property
    def total_time(self) -> float:
        return self.sampling_time + self.pass1_time + self.pass2_time


def run_dsort(node: Node, comm: Comm, schema: RecordSchema,
              config: Optional[DsortConfig] = None) -> DsortReport:
    """Sort the cluster's ``input`` files into striped ``output`` (SPMD)."""
    if config is None:
        config = DsortConfig()
    kernel = node.kernel

    comm.barrier()
    t0 = kernel.now()

    # Phase 0: splitter selection by oversampling.
    splitters = select_splitters(node, comm, schema, config.input_file,
                                 oversample=config.oversample,
                                 seed=config.seed)
    comm.barrier()
    t1 = kernel.now()

    # Pass 1: partition + distribute -> sorted runs on every node.
    state: dict = {}
    prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"dsort-p1@{comm.rank}")
    build_pass1(prog1, node, comm, schema, splitters,
                input_file=config.input_file, run_prefix=config.run_prefix,
                block_records=config.block_records,
                nbuffers=config.nbuffers, state=state)
    prog1.run()
    comm.barrier()
    t2 = kernel.now()

    # Pass 2: merge runs, load-balance, stripe the output.
    runs = state.get("runs", [])
    local_total = sum(n for _, n in runs)
    totals = comm.allgather(local_total)
    start_global = sum(totals[:comm.rank])
    # (re)create the output file at its exact final local size
    my_records = _striped_share(sum(totals), config.out_block_records,
                                comm.size, comm.rank)
    out_rf = RecordFile(node.disk, config.output_file, schema)
    out_rf.delete()
    node.disk.storage.truncate(config.output_file,
                               my_records * schema.record_bytes)
    prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"dsort-p2@{comm.rank}")
    build_pass2(prog2, node, comm, schema, runs, start_global,
                output_file=config.output_file,
                vertical_block_records=config.vertical_block_records,
                out_block_records=config.out_block_records,
                nbuffers=config.nbuffers)
    prog2.run()
    comm.barrier()
    t3 = kernel.now()

    if config.cleanup_runs:
        for run_name, _ in runs:
            node.disk.delete(run_name)

    return DsortReport(rank=comm.rank,
                       sampling_time=t1 - t0,
                       pass1_time=t2 - t1,
                       pass2_time=t3 - t2,
                       partition_records=local_total,
                       n_runs=len(runs))


def _striped_share(total_records: int, block_records: int, n_nodes: int,
                   rank: int) -> int:
    """Records node ``rank`` holds of a PDM-striped file."""
    total_blocks = math.ceil(total_records / block_records)
    share = 0
    for block in range(rank, total_blocks, n_nodes):
        share += min(block_records, total_records - block * block_records)
    return share
