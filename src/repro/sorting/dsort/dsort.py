"""dsort driver: sampling, pass 1, pass 2, with per-phase timing.

:func:`run_dsort` is an SPMD per-node main — launch it with
``Cluster.run`` (or spawn it per rank yourself).  Barriers separate the
phases so the per-phase durations reported by every rank agree, matching
how the paper's Figure 8 stacks per-pass times.

Recovery: with ``pass_retries > 0``, each pass is a cluster-wide
checkpointable unit.  After every pass the ranks agree (allgather)
whether anyone's pipelines failed; on failure every rank discards the
pass's partial artifacts (run files / output stripes), drains stale
messages, and the whole pass restarts from the previous checkpoint —
pass 1 restarts from the input, pass 2 from the sorted runs.  See
docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram
from repro.errors import PipelineFailed, SortError, SpeculationLost
from repro.pdm.blockfile import RecordFile
from repro.pdm.journal import Journal
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.pass1 import (TAG_PASS1, build_pass1,
                                       build_pass1_recover)
from repro.sorting.dsort.pass2 import (TAG_PASS2, build_pass2,
                                       build_pass2_recover, pieces_of)
from repro.sorting.dsort.sampling import select_splitters

__all__ = ["DsortConfig", "DsortReport", "run_dsort"]


@dataclasses.dataclass(frozen=True)
class DsortConfig:
    """Tuning knobs for dsort (defaults sized for simulation-scale runs)."""

    #: records per pass-1 buffer; also the size of each sorted run
    block_records: int = 4096
    #: records per vertical-pipeline buffer in pass 2 (small, many runs)
    vertical_block_records: int = 1024
    #: records per output stripe block (and per horizontal buffer)
    out_block_records: int = 4096
    #: buffers per pipeline
    nbuffers: int = 4
    #: samples per node = oversample * P
    oversample: int = 32
    input_file: str = "input"
    output_file: str = "output"
    #: prefix for intermediate run files
    run_prefix: str = "dsort-run"
    #: delete run files after pass 2 (untimed cleanup)
    cleanup_runs: bool = True
    seed: int = 0
    #: cluster-wide restarts allowed per pass (0 = fail fast); each pass
    #: is a checkpoint, so a retried pass 2 restarts from the sorted runs
    pass_retries: int = 0
    #: copies of the pass-1 receive pipeline's sort stage (it is
    #: stateless; see repro.tune and docs/TUNING.md)
    sort_replicas: int = 1
    #: prefix for FGProgram (and hence process/metric/trace) names;
    #: the multi-tenant scheduler sets a per-job prefix so concurrent
    #: jobs on one kernel stay distinguishable in every artifact
    name_prefix: str = "dsort"

    def __post_init__(self):
        for field in ("block_records", "vertical_block_records",
                      "out_block_records", "nbuffers", "oversample",
                      "sort_replicas"):
            if getattr(self, field) < 1:
                raise SortError(f"{field} must be >= 1")
        if self.pass_retries < 0:
            raise SortError("pass_retries must be >= 0")


@dataclasses.dataclass
class DsortReport:
    """Per-node result of one dsort execution (times in kernel seconds)."""

    rank: int
    sampling_time: float
    pass1_time: float
    pass2_time: float
    #: records this node held between the passes (its partition size)
    partition_records: int
    #: number of sorted runs merged in pass 2
    n_runs: int
    #: cluster-wide pass restarts this run needed (0 on a clean run)
    pass_restarts: int = 0
    #: this node crashed mid-run; the survivors finished without it
    dead: bool = False

    @property
    def total_time(self) -> float:
        return self.sampling_time + self.pass1_time + self.pass2_time


def run_dsort(node: Node, comm: Comm, schema: RecordSchema,
              config: Optional[DsortConfig] = None,
              recover=None,
              sched_point: Optional[Callable[[str], None]] = None
              ) -> DsortReport:
    """Sort the cluster's ``input`` files into striped ``output`` (SPMD).

    With ``recover`` (a :class:`~repro.recover.RecoveryManager` shared
    by all ranks) the run uses the fine-grained recovery path:
    journaled block-level checkpoints, dead-tolerant synchronization,
    speculative backup merges, and partition re-assignment after a node
    crash.  Without it the behavior is byte-identical to before
    ``repro.recover`` existed.

    ``sched_point`` (set by the multi-tenant scheduler) is called at the
    phase boundaries behind a barrier — a cooperative safe point where
    it may raise :class:`~repro.errors.JobPreempted` on every rank
    consistently; the pass-1 journals then make the re-run resume from
    the last durable block instead of restarting.
    """
    if config is None:
        config = DsortConfig()
    if recover is not None:
        return _run_dsort_recover(node, comm, schema, config, recover,
                                  sched_point)
    kernel = node.kernel

    comm.barrier()
    t0 = kernel.now()

    # Phase 0: splitter selection by oversampling.
    splitters = select_splitters(node, comm, schema, config.input_file,
                                 oversample=config.oversample,
                                 seed=config.seed)
    comm.barrier()
    t1 = kernel.now()
    if sched_point is not None:
        sched_point("after-sampling")

    # Pass 1: partition + distribute -> sorted runs on every node.
    state: dict = {}

    def run_pass1(attempt: int) -> None:
        state.clear()
        suffix = f".r{attempt}" if attempt else ""
        prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                          name=f"{config.name_prefix}-p1@{comm.rank}{suffix}")
        build_pass1(prog1, node, comm, schema, splitters,
                    input_file=config.input_file,
                    run_prefix=config.run_prefix,
                    block_records=config.block_records,
                    nbuffers=config.nbuffers, state=state,
                    sort_replicas=config.sort_replicas)
        prog1.run()

    def reset_pass1() -> None:
        _discard_runs(node, config.run_prefix)
        _drain_stale(comm, TAG_PASS1)

    p1_restarts = _attempt_pass(comm, kernel, "pass1", config.pass_retries,
                                run_pass1, reset_pass1)
    comm.barrier()
    t2 = kernel.now()
    if sched_point is not None:
        sched_point("after-pass1")

    # Pass 2: merge runs, load-balance, stripe the output.
    runs = state.get("runs", [])
    local_total = sum(n for _, n in runs)
    totals = comm.allgather(local_total)
    start_global = sum(totals[:comm.rank])
    my_records = _striped_share(sum(totals), config.out_block_records,
                                comm.size, comm.rank)
    out_rf = RecordFile(node.disk, config.output_file, schema)
    p2_state: dict = {}

    def run_pass2(attempt: int) -> None:
        p2_state.clear()
        # (re)create the output file at its exact final local size; the
        # striped writes are idempotent, so a retried pass overwrites any
        # partial stripes from the failed attempt
        out_rf.delete()
        node.disk.storage.truncate(config.output_file,
                                   my_records * schema.record_bytes)
        suffix = f".r{attempt}" if attempt else ""
        prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                          name=f"{config.name_prefix}-p2@{comm.rank}{suffix}")
        build_pass2(prog2, node, comm, schema, runs, start_global,
                    output_file=config.output_file,
                    vertical_block_records=config.vertical_block_records,
                    out_block_records=config.out_block_records,
                    nbuffers=config.nbuffers, state=p2_state)
        prog2.run()

    def reset_pass2() -> None:
        _drain_stale(comm, TAG_PASS2)

    p2_restarts = _attempt_pass(comm, kernel, "pass2", config.pass_retries,
                                run_pass2, reset_pass2)
    comm.barrier()
    t3 = kernel.now()

    if config.cleanup_runs:
        for run_name, _ in runs:
            node.disk.delete(run_name)

    return DsortReport(rank=comm.rank,
                       sampling_time=t1 - t0,
                       pass1_time=t2 - t1,
                       pass2_time=t3 - t2,
                       partition_records=local_total,
                       n_runs=len(runs),
                       pass_restarts=p1_restarts + p2_restarts)


def _attempt_pass(comm: Comm, kernel, pass_name: str, retries: int,
                  run_fn: Callable[[int], None],
                  reset_fn: Callable[[], None]) -> int:
    """Run one dsort pass SPMD, restarting it cluster-wide on failure.

    Returns the number of restarts performed.  With ``retries == 0`` the
    pass runs exactly once and a failure propagates unwrapped — no extra
    collective traffic on the fault-free path.  Otherwise the ranks
    allgather their failure status after every attempt: if anyone's
    pipelines failed, every rank resets (``reset_fn``), synchronizes, and
    reruns the pass, up to ``retries`` restarts.
    """
    if retries <= 0:
        run_fn(0)
        return 0
    for attempt in range(retries + 1):
        failure: Optional[PipelineFailed] = None
        try:
            run_fn(attempt)
        except PipelineFailed as exc:
            failure = exc
        if all(comm.allgather(failure is None)):
            return attempt
        if attempt == retries:
            if failure is not None:
                raise failure
            raise SortError(
                f"dsort {pass_name} failed on a peer node after "
                f"{retries + 1} attempts")
        if comm.rank == 0 and kernel.metrics is not None:
            kernel.metrics.counter("recovery.pass_restarts").inc()
        reset_fn()
        # no rank may start resending before every rank finished draining
        comm.barrier()
    raise AssertionError("unreachable")


def _discard_runs(node: Node, run_prefix: str) -> None:
    """Delete every run file of the failed pass-1 attempt, including ones
    written by stages that died before registering them in ``state``."""
    prefix = run_prefix + "."
    for name in list(node.disk.names()):
        if name.startswith(prefix):
            node.disk.delete(name)


def _drain_stale(comm: Comm, tag: int) -> None:
    """Consume leftover messages of a failed pass attempt.

    Called after the failure allgather, so every sender has finished
    (successfully or by teardown): anything still matching ``tag`` is
    debris from this attempt and would corrupt the rerun's matching.
    """
    while comm.iprobe(tag=tag):
        comm.recv(tag=tag)


def _striped_share(total_records: int, block_records: int, n_nodes: int,
                   rank: int) -> int:
    """Records node ``rank`` holds of a PDM-striped file."""
    total_blocks = math.ceil(total_records / block_records)
    share = 0
    for block in range(rank, total_blocks, n_nodes):
        share += min(block_records, total_records - block * block_records)
    return share


# -- fine-grained recovery path ----------------------------------------------


def _run_dsort_recover(node: Node, comm: Comm, schema: RecordSchema,
                       config: DsortConfig, mgr,
                       sched_point: Optional[Callable[[str], None]] = None
                       ) -> DsortReport:
    """dsort under a :class:`~repro.recover.RecoveryManager`.

    Same phases as the legacy path, but every collective from the end
    of pass 1 onward goes through the manager's dead-tolerant sync
    points, the passes build their checkpointing variants, and a node
    crash mid-pass-2 triggers a re-assignment epoch instead of wedging
    the cluster.  Scope: crashes are recoverable once pass 1 has
    completed (backup runs exist); a crash during sampling or pass 1
    aborts the run with a clear error, because the dead node's input
    partition only ever existed on its own disk.
    """
    from repro.recover import NodeDied

    kernel = node.kernel
    rank = comm.rank
    P = comm.size
    policy = mgr.policy
    rec_bytes = schema.record_bytes
    mgr.start()
    t0 = t1 = t2 = t3 = kernel.now()
    local_total = 0
    runs: list = []
    p1_restarts = p2_restarts = 0
    try:
        comm.barrier()
        t0 = kernel.now()
        splitters = select_splitters(node, comm, schema, config.input_file,
                                     oversample=config.oversample,
                                     seed=config.seed)
        comm.barrier()
        t1 = kernel.now()
        if sched_point is not None:
            sched_point("after-sampling")

        # -- pass 1: checkpointed runs + buddy backups --------------------
        jrn1 = Journal(node.disk, f"{config.run_prefix}.journal")
        slog = Journal(node.disk, f"{config.run_prefix}.sendlog")
        state: dict = {}

        def run_pass1(attempt: int) -> None:
            state.clear()
            durable_own: set = set()
            journaled: list = []
            if policy.checkpoint:
                for entry in jrn1.load():
                    journaled.extend(entry.get("runs", []))
            for run in journaled:
                durable_own.update((int(s), int(b)) for s, b in run["frags"])
                if run["bak"] is not None:
                    mgr.publish_backup_run(rank, run["k"], run["bak"][0],
                                           run["bak"][1], run["n"])
            mgr.publish_durable_frags(rank, durable_own)
            # every rank publishes what its journal proved durable before
            # any rank decides what it can skip re-sending
            mgr.barrier(f"p1.pub.a{attempt}", rank)
            sent_logged: set = set()
            skip_blocks: set = set()
            if policy.checkpoint:
                for entry in slog.load():
                    for b, dsts in entry.get("blocks", []):
                        sent_logged.add(int(b))
                        if all(mgr.is_dead(d)
                               or (rank, int(b)) in mgr.durable_frags(d)
                               for d in dsts):
                            skip_blocks.add(int(b))
            if attempt and journaled:
                mgr.decide("resume", rank,
                           f"pass 1 attempt {attempt}: {len(journaled)} "
                           f"runs journaled, {len(skip_blocks)} blocks "
                           "skipped")
            state["runs"] = [(run["name"], run["n"]) for run in journaled]
            state["next_run"] = (max((run["k"] for run in journaled),
                                     default=-1) + 1)
            mgr.pass_begin(f"p1.a{attempt}", TAG_PASS1,
                           {f"p{r}": r for r in range(P)}, schema)
            suffix = f".r{attempt}" if attempt else ""
            prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                              name=f"{config.name_prefix}-p1@{rank}{suffix}")
            build_pass1_recover(
                prog1, node, comm, schema, splitters,
                input_file=config.input_file,
                run_prefix=config.run_prefix,
                block_records=config.block_records,
                nbuffers=config.nbuffers, state=state, manager=mgr,
                journal=jrn1 if policy.checkpoint else None,
                sendlog=slog if policy.checkpoint else None,
                skip_blocks=frozenset(skip_blocks),
                sent_logged=sent_logged, durable_own=durable_own,
                sort_replicas=config.sort_replicas)
            prog1.run()

        def reset_pass1() -> None:
            # keep journaled runs and hosted backups; everything else on
            # this attempt's floor is debris
            journaled_names = {run[0] for run in state.get("runs", [])}
            prefix = config.run_prefix + "."
            keep = (f"{config.run_prefix}.bak", f"{config.run_prefix}.journal",
                    f"{config.run_prefix}.sendlog")
            for name in list(node.disk.names()):
                if (name.startswith(prefix) and name not in journaled_names
                        and not name.startswith(keep)):
                    node.disk.delete(name)
            _drain_stale(comm, TAG_PASS1)

        def on_retry_p1(newly_dead: list) -> None:
            if newly_dead:
                raise SortError(
                    f"node {newly_dead[0]} crashed during dsort pass 1; "
                    "its input partition is unrecoverable")

        p1_restarts, statuses = _attempt_pass_recover(
            mgr, comm, kernel, "p1", config.pass_retries, run_pass1,
            reset_pass1, on_retry_p1,
            payload_fn=lambda: sum(n for _, n in state.get("runs", [])),
            data_tag=TAG_PASS1)
        t2 = kernel.now()
        if sched_point is not None:
            sched_point("after-pass1")

        # -- pass 2: resumable merge under the current striping -----------
        runs = state.get("runs", [])
        local_total = sum(n for _, n in runs)
        # totals rode along on the pass-1 status sync, so they are known
        # for every rank — including one that dies later in pass 2
        totals = {r: int(statuses[r][1]) for r in range(P)}
        start_globals = {r: sum(totals[q] for q in range(r))
                         for r in range(P)}
        total_records = sum(totals.values())
        mlog = Journal(node.disk, f"{config.run_prefix}.mlog")
        p2_state: dict = {}

        def run_pass2(attempt: int) -> None:
            p2_state.clear()
            epoch = mgr.epoch
            owners = mgr.output_owners() or list(range(P))
            S = len(owners)
            my_records = _striped_share(total_records,
                                        config.out_block_records, S,
                                        owners.index(rank))
            # epoch-keyed piece journal: output stripes from a previous
            # epoch were laid out under a striping that no longer exists
            jname = f"{config.output_file}.p2log.e{epoch}"
            stale = [n for n in node.disk.names()
                     if n.startswith(f"{config.output_file}.p2log.")
                     and n != jname]
            for n in stale:
                node.disk.delete(n)
            jrn2 = Journal(node.disk, jname)
            durable_own: set = set()
            expected_bytes = my_records * rec_bytes
            if (policy.checkpoint and not stale and jrn2.exists
                    and node.disk.exists(config.output_file)
                    and node.disk.size(config.output_file) == expected_bytes):
                for entry in jrn2.load():
                    durable_own.update((int(b), int(o))
                                       for b, o in entry.get("ps", []))
            else:
                jrn2.delete()
                node.disk.delete(config.output_file)
            node.disk.storage.truncate(config.output_file, expected_bytes)
            mgr.publish_durable_pieces(rank, durable_own)
            mgr.barrier(f"p2.pieces.e{epoch}.a{attempt}", rank)
            durable_all = mgr.durable_pieces()

            # resume the merge at the last journaled point whose every
            # preceding piece is durable at its owner
            my_pieces = pieces_of(start_globals[rank], totals[rank],
                                  config.out_block_records)
            K = 0
            for blk, off, _ in my_pieces:
                if (blk, off) in durable_all.get(owners[blk % S], ()):
                    K += 1
                else:
                    break
            resume = {"start_piece": 0, "positions": [0] * len(runs),
                      "emitted0": 0}
            if K > 0 and mlog.exists:
                for entry in mlog.load():
                    k = entry.get("k")
                    if (k is not None and k < K
                            and len(entry.get("pos", ())) == len(runs)
                            and k + 1 > resume["start_piece"]):
                        resume = {"start_piece": k + 1,
                                  "positions": [int(p)
                                                for p in entry["pos"]],
                                  "emitted0": int(entry["e"])}

            if attempt and K > 0:
                mgr.decide("resume", rank,
                           f"pass 2 epoch {epoch} attempt {attempt}: "
                           f"{K} pieces durable, merge resumes at piece "
                           f"{resume['start_piece']}")
            speculative = (epoch == 0 and policy.speculation is not None
                           and policy.backup_runs and P > 1)
            producers = {f"p{r}": r for r in owners}
            if speculative:
                producers.update(
                    {f"b{r}": mgr.buddy(r) for r in owners
                     if totals[r] > 0 and mgr.buddy(r) != r
                     and mgr.backup_runs_of(r)})
            for d, a in mgr.adopters().items():
                if totals.get(d, 0) > 0:
                    producers[f"a{d}"] = a
            mgr.pass_begin(f"p2.e{epoch}.a{attempt}", TAG_PASS2, producers,
                           schema, speculative=speculative)
            suffix = f".r{attempt}" if attempt else ""
            prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                              name=f"{config.name_prefix}-p2@{rank}"
                                   f".e{epoch}{suffix}")
            build_pass2_recover(
                prog2, node, comm, schema, manager=mgr,
                runs=[(name, 0, n) for name, n in runs],
                totals=totals, start_globals=start_globals, owners=owners,
                producers=producers, output_file=config.output_file,
                vertical_block_records=config.vertical_block_records,
                out_block_records=config.out_block_records,
                nbuffers=config.nbuffers, state=p2_state,
                durable_all=durable_all, durable_own=durable_own,
                resume=resume, jrn2=jrn2 if policy.checkpoint else None,
                mlog=mlog if policy.checkpoint else None,
                speculative=speculative)
            prog2.run()

        def reset_pass2() -> None:
            _drain_stale(comm, TAG_PASS2)
            mgr.reset_speculation()

        def on_retry_p2(newly_dead: list) -> None:
            if newly_dead:
                mgr.enter_epoch(rank)
            mgr.check_abort()

        p2_restarts, _ = _attempt_pass_recover(
            mgr, comm, kernel, "p2", config.pass_retries, run_pass2,
            reset_pass2, on_retry_p2, data_tag=TAG_PASS2)
        t3 = kernel.now()

        if config.cleanup_runs:
            prefix = config.run_prefix + "."
            p2log_prefix = f"{config.output_file}.p2log."
            for name in list(node.disk.names()):
                if name.startswith(prefix) or name.startswith(p2log_prefix):
                    node.disk.delete(name)
    except NodeDied:
        return DsortReport(rank=rank, sampling_time=t1 - t0,
                           pass1_time=t2 - t1, pass2_time=t3 - t2,
                           partition_records=local_total, n_runs=len(runs),
                           pass_restarts=p1_restarts + p2_restarts,
                           dead=True)
    finally:
        mgr.node_done(rank)
    return DsortReport(rank=rank, sampling_time=t1 - t0,
                       pass1_time=t2 - t1, pass2_time=t3 - t2,
                       partition_records=local_total, n_runs=len(runs),
                       pass_restarts=p1_restarts + p2_restarts)


def _attempt_pass_recover(mgr, comm: Comm, kernel, pass_name: str,
                          retries: int, run_fn: Callable[[int], None],
                          reset_fn: Callable[[], None],
                          on_retry: Optional[Callable[[list], None]] = None,
                          payload_fn: Optional[Callable[[], int]] = None,
                          data_tag: Optional[int] = None):
    """Run one pass under the recovery manager's dead-tolerant sync.

    Unlike :func:`_attempt_pass` this always runs the status exchange
    (a :meth:`RecoveryManager.sync_point`, which a crashed rank cannot
    wedge), treats a pipeline failure whose causes are *all*
    :class:`~repro.errors.SpeculationLost` as success (losing a
    speculation race is the mechanism working), and reports this rank's
    own death as :class:`~repro.recover.NodeDied`.

    The crash oracle is a function of virtual time, so two ranks asking
    "did anyone just die?" a tick apart can disagree; the retry verdict
    is therefore resolved exactly once through
    :meth:`RecoveryManager.resolve` and shared by every rank.
    ``on_retry`` runs on every live rank with the newly dead ranks
    before the reset (pass 2 enters a re-assignment epoch there).
    Returns ``(restarts, final statuses)``; with ``payload_fn``, each
    rank's ``"ok"`` status carries its payload, which is how pass-1
    totals reach every survivor without a post-pass collective a dead
    rank could block.
    """
    from repro.recover import NodeDied

    rank = comm.rank
    for attempt in range(retries + 1):
        # stable for the whole attempt: epoch transitions only happen
        # behind the reset barrier below
        epoch = mgr.epoch
        if mgr.is_dead(rank):
            raise NodeDied(f"node {rank} crashed before {pass_name} "
                           f"attempt {attempt}")
        failure: Optional[Exception] = None
        try:
            run_fn(attempt)
        except PipelineFailed as exc:
            if not all(isinstance(f.cause, SpeculationLost)
                       for f in exc.failures):
                failure = exc
        if mgr.is_dead(rank):
            status: tuple = ("dead",)
        elif failure is not None:
            status = ("fail",)
        else:
            status = ("ok", payload_fn() if payload_fn is not None else 0)
        # a failed rank's receive pipeline is gone: while it waits here
        # for peers still mid-attempt, it must keep draining its own
        # mailbox, or (under bounded mailboxes) a peer's send blocks
        # forever reserving space this rank no longer frees — debris
        # anyway, the rerun resends anything that never became durable
        drain = None
        if status[0] == "fail" and data_tag is not None:
            def drain(tag=data_tag):
                _drain_stale(comm, tag)
        statuses = mgr.sync_point(
            f"{pass_name}.status.e{epoch}.a{attempt}", rank, status,
            drain=drain)
        mgr.pass_end()

        def compute_verdict(statuses=statuses):
            newly_dead = sorted(r for r in mgr.alive if mgr.is_dead(r))
            live = [r for r in mgr.alive if not mgr.is_dead(r)]
            ok = (not newly_dead
                  and all(statuses.get(r, ("missing",))[0] == "ok"
                          for r in live))
            return {"ok": ok, "newly_dead": newly_dead, "live": live}

        verdict = mgr.resolve(f"{pass_name}.verdict.e{epoch}.a{attempt}",
                              compute_verdict)
        if mgr.is_dead(rank):
            raise NodeDied(f"node {rank} crashed during {pass_name}")
        if verdict["ok"]:
            return attempt, statuses
        if attempt == retries:
            if failure is not None:
                raise failure
            raise SortError(
                f"dsort {pass_name} failed on a peer node after "
                f"{retries + 1} attempts")
        if rank == min(verdict["live"]) and kernel.metrics is not None:
            kernel.metrics.counter("recovery.pass_restarts").inc()
        if on_retry is not None:
            on_retry(verdict["newly_dead"])
        reset_fn()
        # no rank may start resending before every rank finished draining
        mgr.barrier(f"{pass_name}.reset.e{epoch}.a{attempt}", rank)
    raise AssertionError("unreachable")
