"""dsort driver: sampling, pass 1, pass 2, with per-phase timing.

:func:`run_dsort` is an SPMD per-node main — launch it with
``Cluster.run`` (or spawn it per rank yourself).  Barriers separate the
phases so the per-phase durations reported by every rank agree, matching
how the paper's Figure 8 stacks per-pass times.

Recovery: with ``pass_retries > 0``, each pass is a cluster-wide
checkpointable unit.  After every pass the ranks agree (allgather)
whether anyone's pipelines failed; on failure every rank discards the
pass's partial artifacts (run files / output stripes), drains stale
messages, and the whole pass restarts from the previous checkpoint —
pass 1 restarts from the input, pass 2 from the sorted runs.  See
docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram
from repro.errors import PipelineFailed, SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.pass1 import TAG_PASS1, build_pass1
from repro.sorting.dsort.pass2 import TAG_PASS2, build_pass2
from repro.sorting.dsort.sampling import select_splitters

__all__ = ["DsortConfig", "DsortReport", "run_dsort"]


@dataclasses.dataclass(frozen=True)
class DsortConfig:
    """Tuning knobs for dsort (defaults sized for simulation-scale runs)."""

    #: records per pass-1 buffer; also the size of each sorted run
    block_records: int = 4096
    #: records per vertical-pipeline buffer in pass 2 (small, many runs)
    vertical_block_records: int = 1024
    #: records per output stripe block (and per horizontal buffer)
    out_block_records: int = 4096
    #: buffers per pipeline
    nbuffers: int = 4
    #: samples per node = oversample * P
    oversample: int = 32
    input_file: str = "input"
    output_file: str = "output"
    #: prefix for intermediate run files
    run_prefix: str = "dsort-run"
    #: delete run files after pass 2 (untimed cleanup)
    cleanup_runs: bool = True
    seed: int = 0
    #: cluster-wide restarts allowed per pass (0 = fail fast); each pass
    #: is a checkpoint, so a retried pass 2 restarts from the sorted runs
    pass_retries: int = 0
    #: copies of the pass-1 receive pipeline's sort stage (it is
    #: stateless; see repro.tune and docs/TUNING.md)
    sort_replicas: int = 1

    def __post_init__(self):
        for field in ("block_records", "vertical_block_records",
                      "out_block_records", "nbuffers", "oversample",
                      "sort_replicas"):
            if getattr(self, field) < 1:
                raise SortError(f"{field} must be >= 1")
        if self.pass_retries < 0:
            raise SortError("pass_retries must be >= 0")


@dataclasses.dataclass
class DsortReport:
    """Per-node result of one dsort execution (times in kernel seconds)."""

    rank: int
    sampling_time: float
    pass1_time: float
    pass2_time: float
    #: records this node held between the passes (its partition size)
    partition_records: int
    #: number of sorted runs merged in pass 2
    n_runs: int
    #: cluster-wide pass restarts this run needed (0 on a clean run)
    pass_restarts: int = 0

    @property
    def total_time(self) -> float:
        return self.sampling_time + self.pass1_time + self.pass2_time


def run_dsort(node: Node, comm: Comm, schema: RecordSchema,
              config: Optional[DsortConfig] = None) -> DsortReport:
    """Sort the cluster's ``input`` files into striped ``output`` (SPMD)."""
    if config is None:
        config = DsortConfig()
    kernel = node.kernel

    comm.barrier()
    t0 = kernel.now()

    # Phase 0: splitter selection by oversampling.
    splitters = select_splitters(node, comm, schema, config.input_file,
                                 oversample=config.oversample,
                                 seed=config.seed)
    comm.barrier()
    t1 = kernel.now()

    # Pass 1: partition + distribute -> sorted runs on every node.
    state: dict = {}

    def run_pass1(attempt: int) -> None:
        state.clear()
        suffix = f".r{attempt}" if attempt else ""
        prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                          name=f"dsort-p1@{comm.rank}{suffix}")
        build_pass1(prog1, node, comm, schema, splitters,
                    input_file=config.input_file,
                    run_prefix=config.run_prefix,
                    block_records=config.block_records,
                    nbuffers=config.nbuffers, state=state,
                    sort_replicas=config.sort_replicas)
        prog1.run()

    def reset_pass1() -> None:
        _discard_runs(node, config.run_prefix)
        _drain_stale(comm, TAG_PASS1)

    p1_restarts = _attempt_pass(comm, kernel, "pass1", config.pass_retries,
                                run_pass1, reset_pass1)
    comm.barrier()
    t2 = kernel.now()

    # Pass 2: merge runs, load-balance, stripe the output.
    runs = state.get("runs", [])
    local_total = sum(n for _, n in runs)
    totals = comm.allgather(local_total)
    start_global = sum(totals[:comm.rank])
    my_records = _striped_share(sum(totals), config.out_block_records,
                                comm.size, comm.rank)
    out_rf = RecordFile(node.disk, config.output_file, schema)
    p2_state: dict = {}

    def run_pass2(attempt: int) -> None:
        p2_state.clear()
        # (re)create the output file at its exact final local size; the
        # striped writes are idempotent, so a retried pass overwrites any
        # partial stripes from the failed attempt
        out_rf.delete()
        node.disk.storage.truncate(config.output_file,
                                   my_records * schema.record_bytes)
        suffix = f".r{attempt}" if attempt else ""
        prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                          name=f"dsort-p2@{comm.rank}{suffix}")
        build_pass2(prog2, node, comm, schema, runs, start_global,
                    output_file=config.output_file,
                    vertical_block_records=config.vertical_block_records,
                    out_block_records=config.out_block_records,
                    nbuffers=config.nbuffers, state=p2_state)
        prog2.run()

    def reset_pass2() -> None:
        _drain_stale(comm, TAG_PASS2)

    p2_restarts = _attempt_pass(comm, kernel, "pass2", config.pass_retries,
                                run_pass2, reset_pass2)
    comm.barrier()
    t3 = kernel.now()

    if config.cleanup_runs:
        for run_name, _ in runs:
            node.disk.delete(run_name)

    return DsortReport(rank=comm.rank,
                       sampling_time=t1 - t0,
                       pass1_time=t2 - t1,
                       pass2_time=t3 - t2,
                       partition_records=local_total,
                       n_runs=len(runs),
                       pass_restarts=p1_restarts + p2_restarts)


def _attempt_pass(comm: Comm, kernel, pass_name: str, retries: int,
                  run_fn: Callable[[int], None],
                  reset_fn: Callable[[], None]) -> int:
    """Run one dsort pass SPMD, restarting it cluster-wide on failure.

    Returns the number of restarts performed.  With ``retries == 0`` the
    pass runs exactly once and a failure propagates unwrapped — no extra
    collective traffic on the fault-free path.  Otherwise the ranks
    allgather their failure status after every attempt: if anyone's
    pipelines failed, every rank resets (``reset_fn``), synchronizes, and
    reruns the pass, up to ``retries`` restarts.
    """
    if retries <= 0:
        run_fn(0)
        return 0
    for attempt in range(retries + 1):
        failure: Optional[PipelineFailed] = None
        try:
            run_fn(attempt)
        except PipelineFailed as exc:
            failure = exc
        if all(comm.allgather(failure is None)):
            return attempt
        if attempt == retries:
            if failure is not None:
                raise failure
            raise SortError(
                f"dsort {pass_name} failed on a peer node after "
                f"{retries + 1} attempts")
        if comm.rank == 0 and kernel.metrics is not None:
            kernel.metrics.counter("recovery.pass_restarts").inc()
        reset_fn()
        # no rank may start resending before every rank finished draining
        comm.barrier()
    raise AssertionError("unreachable")


def _discard_runs(node: Node, run_prefix: str) -> None:
    """Delete every run file of the failed pass-1 attempt, including ones
    written by stages that died before registering them in ``state``."""
    prefix = run_prefix + "."
    for name in list(node.disk.names()):
        if name.startswith(prefix):
            node.disk.delete(name)


def _drain_stale(comm: Comm, tag: int) -> None:
    """Consume leftover messages of a failed pass attempt.

    Called after the failure allgather, so every sender has finished
    (successfully or by teardown): anything still matching ``tag`` is
    debris from this attempt and would corrupt the rerun's matching.
    """
    while comm.iprobe(tag=tag):
        comm.recv(tag=tag)


def _striped_share(total_records: int, block_records: int, n_nodes: int,
                   rank: int) -> int:
    """Records node ``rank`` holds of a PDM-striped file."""
    total_blocks = math.ceil(total_records / block_records)
    share = 0
    for block in range(rank, total_blocks, n_nodes):
        share += min(block_records, total_records - block * block_records)
    return share
