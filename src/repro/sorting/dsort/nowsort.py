"""NOW-Sort-style variant (paper, Section VII related work).

NOW-Sort shares dsort's two-pass design but differs in two ways the paper
calls out: it "assumes that the splitters are known in advance and does
not output the final sorted result in PDM ordering".  This module
implements that variant on the same substrate so the trade-offs can be
measured:

* **no sampling phase** — splitters are supplied (or default to evenly
  spaced keys, NOW-Sort's uniform-input assumption);
* **pass 1** is dsort's pass 1 verbatim (partition + distribute into
  sorted runs);
* **pass 2** merges each node's runs into one *local* sorted file, with
  no load-balancing exchange and no striping.

The flip side, visible in the benchmarks: with fixed splitters the
partition sizes track the key distribution, so anything non-uniform
(std-normal, Poisson, all-equal) piles records onto a few nodes, and the
most loaded disk sets the pace.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.dsort import DsortConfig
from repro.sorting.dsort.pass1 import build_pass1
from repro.sorting.dsort.sampling import Splitters
from repro.sorting.merge import BlockMerger

__all__ = ["NowSortReport", "run_nowsort", "uniform_splitters"]


def uniform_splitters(n_partitions: int) -> Splitters:
    """Evenly spaced fixed splitters over the whole uint64 key space —
    NOW-Sort's implicit assumption that keys are uniform."""
    if n_partitions < 1:
        raise SortError("need at least one partition")
    step = 2**64 // n_partitions
    keys = np.array([(i + 1) * step for i in range(n_partitions - 1)],
                    dtype=np.uint64)
    zeros = np.zeros(n_partitions - 1, dtype=np.int64)
    return Splitters(keys=keys, nodes=zeros, indices=zeros)


@dataclasses.dataclass
class NowSortReport:
    """Per-node result of a NOW-Sort-style run."""

    rank: int
    pass1_time: float
    pass2_time: float
    partition_records: int
    n_runs: int

    @property
    def total_time(self) -> float:
        return self.pass1_time + self.pass2_time


def _build_local_merge_pass(prog: FGProgram, node: Node,
                            schema: RecordSchema, runs, output_file: str,
                            vertical_block_records: int,
                            out_block_records: int, nbuffers: int) -> None:
    """Pass 2 without striping: merge straight to a local sorted file."""
    rec_bytes = schema.record_bytes
    vB = vertical_block_records
    outB = out_block_records

    merge_stage = Stage.source_driven("merge", None)
    verticals = []
    for i, (run_name, n_run) in enumerate(runs):
        run_file = RecordFile(node.disk, run_name, schema)

        def make_read(run_file, n_run):
            def read(ctx, buf):
                start = buf.round * vB
                buf.put(run_file.read(start, min(vB, n_run - start)))
                return buf
            return read

        stage = Stage.map(f"read{i}", make_read(run_file, n_run),
                          virtual=True, virtual_group="read")
        verticals.append(prog.add_pipeline(
            f"v{i}", [stage, merge_stage], nbuffers=2,
            buffer_bytes=vB * rec_bytes, rounds=math.ceil(n_run / vB)))

    out_file = RecordFile(node.disk, output_file, schema)

    def write(ctx, buf):
        out_file.write(buf.tags["start"], buf.view(schema.dtype))
        return buf

    horizontal = prog.add_pipeline(
        "merge-out", [merge_stage, Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None)

    def merge(ctx):
        merger = BlockMerger(schema, range(len(verticals)))
        head_buf = {}

        def refill():
            for i in sorted(merger.needs()):
                if i in head_buf:
                    ctx.convey(head_buf.pop(i))
                nxt = ctx.accept(verticals[i])
                if nxt.is_caboose:
                    ctx.forward(nxt)
                    merger.finish_run(i)
                else:
                    merger.feed(i, nxt.view(schema.dtype))
                    head_buf[i] = nxt

        refill()
        emitted = 0
        while not merger.exhausted:
            out = ctx.accept(horizontal)
            records = out.data.view(schema.dtype)
            filled = 0
            while filled < outB and not merger.exhausted:
                if not merger.ready:
                    refill()
                    continue
                n = merger.merge_into(records, filled, outB - filled)
                node.compute_merge(n)
                filled += n
            if filled:
                out.size = filled * rec_bytes
                out.tags["start"] = emitted
                ctx.convey(out)
                emitted += filled
        ctx.convey_caboose(horizontal)

    merge_stage.fn = merge


def run_nowsort(node: Node, comm: Comm, schema: RecordSchema,
                config: Optional[DsortConfig] = None,
                splitters: Optional[Splitters] = None) -> NowSortReport:
    """NOW-Sort-style SPMD main: fixed splitters, local (non-PDM) output.

    After completion, node i's ``output`` file is sorted and every key on
    node i is <= every key on node i+1 — the concatenation of local files
    is the sorted sequence, but it is not striped and (for non-uniform
    keys) not balanced.
    """
    if config is None:
        config = DsortConfig()
    if splitters is None:
        splitters = uniform_splitters(comm.size)
    if splitters.n_partitions != comm.size:
        raise SortError(
            f"need {comm.size} partitions, got {splitters.n_partitions}")
    kernel = node.kernel

    comm.barrier()
    t0 = kernel.now()
    state: dict = {}
    prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"nowsort-p1@{comm.rank}")
    build_pass1(prog1, node, comm, schema, splitters,
                input_file=config.input_file, run_prefix=config.run_prefix,
                block_records=config.block_records,
                nbuffers=config.nbuffers, state=state)
    prog1.run()
    comm.barrier()
    t1 = kernel.now()

    runs = state.get("runs", [])
    RecordFile(node.disk, config.output_file, schema).delete()
    prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"nowsort-p2@{comm.rank}")
    _build_local_merge_pass(
        prog2, node, schema, runs, output_file=config.output_file,
        vertical_block_records=config.vertical_block_records,
        out_block_records=config.out_block_records,
        nbuffers=config.nbuffers)
    prog2.run()
    comm.barrier()
    t2 = kernel.now()

    if config.cleanup_runs:
        for run_name, _ in runs:
            node.disk.delete(run_name)

    local_total = sum(n for _, n in runs)
    return NowSortReport(rank=comm.rank, pass1_time=t1 - t0,
                         pass2_time=t2 - t1,
                         partition_records=local_total, n_runs=len(runs))
