"""dsort restricted to single linear pipelines: the Section-VIII ablation.

The paper closes by asking "how much faster dsort runs with multiple
pipelines on each node compared with an implementation restricted to
single, linear pipelines", noting that such a design "entails extensive
bookkeeping on the programmer's part for stages that perform interprocessor
communication, as well as the merge stage".  This module is that
implementation, so the benchmark can answer the question:

* pass 1 is ONE pipeline: ``read -> permute -> exchange -> sort -> write``.
  The exchange stage must both send and receive; since a linear stage
  conveys exactly one buffer per buffer accepted, it hoards received
  records in an internal overflow list (the bookkeeping), drains the
  network opportunistically with ``iprobe`` to avoid deadlock, and the
  read stage keeps feeding it empty "drain" buffers after the input ends;

* pass 2 is ONE pipeline: ``merge -> exchange -> write``.  With no
  vertical pipelines, the merge stage performs *synchronous* disk reads
  for every run block — no read-ahead overlap — which is exactly the cost
  the multiple-pipeline design avoids.

Output and semantics are identical to the real dsort (same splitters,
same runs, same striped output), so any timing difference is attributable
to pipeline structure alone.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.dsort import (
    DsortConfig,
    DsortReport,
    _striped_share,
)
from repro.sorting.dsort.sampling import partition_ids, select_splitters
from repro.sorting.merge import BlockMerger

__all__ = ["run_dsort_linear"]

TAG_L1 = 21
TAG_L2 = 22


def _build_linear_pass1(prog: FGProgram, node: Node, comm: Comm,
                        schema: RecordSchema, splitters, input_file: str,
                        run_prefix: str, block_records: int, nbuffers: int,
                        state: dict) -> None:
    P = comm.size
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, input_file, schema)
    n_local = rf_in.n_records
    n_blocks = math.ceil(n_local / block_records)
    hw = node.hardware
    state.setdefault("runs", [])
    state.setdefault("next_run", 0)
    flags = {"exchange_done": False}

    def read(ctx):
        pipeline = ctx.pipelines[0]
        for block in range(n_blocks):
            buf = ctx.accept()
            start = block * block_records
            count = min(block_records, n_local - start)
            buf.put(rf_in.read(start, count))
            buf.tags["start"] = start
            ctx.convey(buf)
        # keep the exchange stage fed with drain buffers until it reports
        # completion — part of the "extensive bookkeeping"
        while not flags["exchange_done"]:
            buf = ctx.accept()
            buf.clear()
            buf.tags["drain"] = True
            ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    def permute(ctx, buf):
        if buf.tags.get("drain"):
            return buf
        records = buf.view(schema.dtype)
        start = buf.tags["start"]
        positions = np.arange(start, start + len(records), dtype=np.int64)
        part = partition_ids(records["key"], comm.rank, positions,
                             splitters)
        order = np.argsort(part, kind="stable")
        node.compute(hw.sort_cost_per_key_log * len(records)
                     * max(1.0, math.log2(P))
                     + hw.copy_time(records.nbytes))
        buf.put(records[order])
        buf.tags["counts"] = np.bincount(part, minlength=P)
        return buf

    def exchange(ctx):
        overflow: deque = deque()
        ends = 0
        sent_ends = False
        blocks_sent = 0
        if n_blocks == 0:
            # no local input: our end markers are due immediately
            for dest in range(P):
                comm.send(dest, schema.empty(0), tag=TAG_L1)
            sent_ends = True

        def drain_nonblocking():
            nonlocal ends
            while comm.iprobe(tag=TAG_L1):
                _, payload = comm.recv(tag=TAG_L1)
                if len(payload) == 0:
                    ends += 1
                else:
                    overflow.append(payload)

        def pop_records(limit):
            parts = []
            have = 0
            while overflow and have < limit:
                chunk = overflow.popleft()
                if have + len(chunk) > limit:
                    take = limit - have
                    parts.append(chunk[:take])
                    overflow.appendleft(chunk[take:])
                    have = limit
                else:
                    parts.append(chunk)
                    have += len(chunk)
            if not parts:
                return schema.empty(0)
            return np.concatenate(parts) if len(parts) > 1 else parts[0]

        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                ctx.forward(buf)
                return
            if not buf.tags.get("drain"):
                records = buf.view(schema.dtype)
                counts = buf.tags["counts"]
                offsets = np.concatenate(([0], np.cumsum(counts)))
                for dest in range(P):
                    lo, hi = int(offsets[dest]), int(offsets[dest + 1])
                    if hi > lo:
                        comm.send(dest, records[lo:hi].copy(), tag=TAG_L1)
                blocks_sent += 1
                if blocks_sent == n_blocks and not sent_ends:
                    for dest in range(P):
                        comm.send(dest, schema.empty(0), tag=TAG_L1)
                    sent_ends = True
                drain_nonblocking()
            else:
                # our sends are complete; safe to block for the rest
                if ends < P and not overflow:
                    _, payload = comm.recv(tag=TAG_L1)
                    if len(payload) == 0:
                        ends += 1
                    else:
                        overflow.append(payload)
                drain_nonblocking()
            out = pop_records(block_records)
            buf.clear()
            if len(out):
                node.compute_copy(out.nbytes)
                buf.put(out)
            if ends == P and not overflow:
                flags["exchange_done"] = True
            ctx.convey(buf)

    def sort(ctx, buf):
        if buf.size == 0:
            return buf
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    def write(ctx, buf):
        if buf.size == 0:
            return buf
        records = buf.view(schema.dtype)
        run_name = f"{run_prefix}.{state['next_run']}"
        state["next_run"] += 1
        RecordFile(node.disk, run_name, schema).write(0, records)
        state["runs"].append((run_name, len(records)))
        return buf

    prog.add_pipeline(
        "linear1",
        [Stage.source_driven("read", read), Stage.map("permute", permute),
         Stage.source_driven("exchange", exchange),
         Stage.map("sort", sort), Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=block_records * rec_bytes,
        rounds=None)


def _build_linear_pass2(prog: FGProgram, node: Node, comm: Comm,
                        schema: RecordSchema, runs, start_global: int,
                        output_file: str, vertical_block_records: int,
                        out_block_records: int, nbuffers: int) -> None:
    P = comm.size
    rec_bytes = schema.record_bytes
    vB = vertical_block_records
    outB = out_block_records
    flags = {"merge_done": False}

    run_files = [(RecordFile(node.disk, name, schema), n)
                 for name, n in runs]

    def merge(ctx):
        """Merge with synchronous per-run reads (no prefetch overlap)."""
        pipeline = ctx.pipelines[0]
        merger = BlockMerger(schema, range(len(run_files)))
        consumed = [0] * len(run_files)

        def refill():
            for i in sorted(merger.needs()):
                run_file, n_run = run_files[i]
                if consumed[i] >= n_run:
                    merger.finish_run(i)
                    continue
                count = min(vB, n_run - consumed[i])
                merger.feed(i, run_file.read(consumed[i], count))
                consumed[i] += count

        refill()
        emitted = 0
        while not merger.exhausted:
            buf = ctx.accept()
            position = start_global + emitted
            block = position // outB
            offset = position % outB
            target = outB - offset
            out_records = buf.data[:target * rec_bytes].view(schema.dtype)
            filled = 0
            while filled < target and not merger.exhausted:
                if not merger.ready:
                    refill()
                    continue
                n = merger.merge_into(out_records, filled, target - filled)
                node.compute_merge(n)
                filled += n
            if filled == 0:
                # runs finished during the final refill: repurpose the
                # accepted buffer as the first drain buffer
                buf.clear()
                buf.tags["drain"] = True
                ctx.convey(buf)
                break
            buf.size = filled * rec_bytes
            buf.tags["global_block"] = block
            buf.tags["offset"] = offset
            ctx.convey(buf)
            emitted += filled
        # keep feeding drain buffers so the exchange stage can finish;
        # exchange sets merge_done once all P end markers are in and its
        # overflow is drained (our own end marker gates it, so this flag
        # cannot flip before we reach this point)
        while not flags["merge_done"]:
            buf = ctx.accept()
            buf.clear()
            buf.tags["drain"] = True
            ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    def exchange(ctx):
        ends = 0
        sent_ends = False
        overflow: deque = deque()

        def drain_nonblocking():
            nonlocal ends
            while comm.iprobe(tag=TAG_L2):
                msg = comm.recv_msg(tag=TAG_L2)
                if len(msg.payload) == 0:
                    ends += 1
                else:
                    overflow.append(msg)

        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                ctx.forward(buf)
                return
            if not buf.tags.get("drain"):
                records = buf.view(schema.dtype)
                block = buf.tags["global_block"]
                comm.send(block % P, records.copy(), tag=TAG_L2,
                          meta={"global_block": block,
                                "offset": buf.tags["offset"]})
                drain_nonblocking()
            else:
                if not sent_ends:
                    for dest in range(P):
                        comm.send(dest, schema.empty(0), tag=TAG_L2)
                    sent_ends = True
                if ends < P and not overflow:
                    msg = comm.recv_msg(tag=TAG_L2)
                    if len(msg.payload) == 0:
                        ends += 1
                    else:
                        overflow.append(msg)
                drain_nonblocking()
            buf.clear()
            if overflow:
                msg = overflow.popleft()
                node.compute_copy(msg.payload.nbytes)
                buf.put(msg.payload)
                buf.tags.update(msg.meta)
            if ends == P and not overflow:
                flags["merge_done"] = True
            ctx.convey(buf)

    out_local = RecordFile(node.disk, output_file, schema)

    def write(ctx, buf):
        if buf.size == 0:
            return buf
        records = buf.view(schema.dtype)
        local_start = ((buf.tags["global_block"] // P) * outB
                       + buf.tags["offset"])
        out_local.write(local_start, records)
        return buf

    prog.add_pipeline(
        "linear2",
        [Stage.source_driven("merge", merge),
         Stage.source_driven("exchange", exchange),
         Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None)


def run_dsort_linear(node: Node, comm: Comm, schema: RecordSchema,
                     config: Optional[DsortConfig] = None) -> DsortReport:
    """dsort with single linear pipelines per node per pass (SPMD main)."""
    if config is None:
        config = DsortConfig()
    kernel = node.kernel

    comm.barrier()
    t0 = kernel.now()
    splitters = select_splitters(node, comm, schema, config.input_file,
                                 oversample=config.oversample,
                                 seed=config.seed)
    comm.barrier()
    t1 = kernel.now()

    state: dict = {}
    prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"dsortL-p1@{comm.rank}")
    _build_linear_pass1(prog1, node, comm, schema, splitters,
                        input_file=config.input_file,
                        run_prefix=config.run_prefix,
                        block_records=config.block_records,
                        nbuffers=config.nbuffers, state=state)
    prog1.run()
    comm.barrier()
    t2 = kernel.now()

    runs = state.get("runs", [])
    local_total = sum(n for _, n in runs)
    totals = comm.allgather(local_total)
    start_global = sum(totals[:comm.rank])
    my_records = _striped_share(sum(totals), config.out_block_records,
                                comm.size, comm.rank)
    RecordFile(node.disk, config.output_file, schema).delete()
    node.disk.storage.truncate(config.output_file,
                               my_records * schema.record_bytes)
    prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"dsortL-p2@{comm.rank}")
    _build_linear_pass2(prog2, node, comm, schema, runs, start_global,
                        output_file=config.output_file,
                        vertical_block_records=config.vertical_block_records,
                        out_block_records=config.out_block_records,
                        nbuffers=config.nbuffers)
    prog2.run()
    comm.barrier()
    t3 = kernel.now()

    if config.cleanup_runs:
        for run_name, _ in runs:
            node.disk.delete(run_name)

    return DsortReport(rank=comm.rank, sampling_time=t1 - t0,
                       pass1_time=t2 - t1, pass2_time=t3 - t2,
                       partition_records=local_total, n_runs=len(runs))
