"""dsort pass 2: merging, load-balancing, and striping (paper, Figure 7).

Per node, four kinds of pipelines cooperate:

* **vertical pipelines**, one per sorted run, whose (virtual) read stages
  feed run blocks into the merge stage — hundreds of runs cost O(1)
  threads thanks to virtual stages;
* the **merge stage**, where the vertical pipelines intersect the
  horizontal one: it fills large, stripe-block-aligned output buffers by
  k-way merging;
* the **horizontal send pipeline**: each merged buffer covers exactly one
  global output block (possibly partially, at the ends of this node's
  merged range), and is sent to the block's round-robin owner;
* a disjoint **receive pipeline** that accepts blocks this node owns and
  writes them at the proper striped offsets.

Load balancing is implicit: the merged streams of the P nodes concatenate
into the global sorted order, and PDM striping deals the blocks of that
order round-robin across nodes regardless of how unbalanced the partition
sizes were.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.merge import BlockMerger

__all__ = ["build_pass2", "TAG_PASS2"]

#: message tag for pass-2 block traffic (empty payload = end marker)
TAG_PASS2 = 12


def build_pass2(prog: FGProgram, node: Node, comm: Comm,
                schema: RecordSchema, runs: list[tuple[str, int]],
                start_global: int, output_file: str,
                vertical_block_records: int, out_block_records: int,
                nbuffers: int, state: Optional[dict] = None) -> None:
    """Add pass-2's vertical, horizontal, and receive pipelines to ``prog``.

    ``runs`` lists this node's sorted runs from pass 1; ``start_global``
    is the global rank of this node's smallest record (exclusive prefix
    sum of per-node totals).  ``state`` (if given) records
    ``state['p2_ends_sent']`` so the failure hook can tell whether peers
    still need this node's end markers.
    """
    if state is None:
        state = {}
    P = comm.size
    rec_bytes = schema.record_bytes
    vB = vertical_block_records
    outB = out_block_records

    # -- vertical pipelines (virtual read stages) ---------------------------

    merge_stage = Stage.source_driven("merge", None)  # fn bound below
    verticals = []
    for i, (run_name, n_run) in enumerate(runs):
        if n_run <= 0:
            raise SortError(f"run {run_name!r} is empty")
        run_file = RecordFile(node.disk, run_name, schema)

        def make_read(run_file, n_run):
            def read(ctx, buf):
                start = buf.round * vB
                count = min(vB, n_run - start)
                buf.put(run_file.read(start, count))
                return buf
            return read

        stage = Stage.map(f"read{i}", make_read(run_file, n_run),
                          virtual=True, virtual_group="read")
        pipeline = prog.add_pipeline(
            f"v{i}", [stage, merge_stage],
            nbuffers=2, buffer_bytes=vB * rec_bytes,
            rounds=math.ceil(n_run / vB))
        verticals.append(pipeline)

    # -- horizontal pipeline: merge -> send ------------------------------------

    def send(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            records = buf.view(schema.dtype)
            block = buf.tags["global_block"]
            comm.send(block % P, records.copy(), tag=TAG_PASS2,
                      meta={"global_block": block,
                            "offset": buf.tags["offset"]})
            ctx.convey(buf)
        for dest in range(P):
            comm.send(dest, schema.empty(0), tag=TAG_PASS2)  # end marker
        state["p2_ends_sent"] = True
        ctx.forward(buf)

    def on_failure(stage, pipelines, exc):
        # A dead send stage can no longer deliver end markers, and every
        # peer's receive stage counts on them; send in its stead.  Other
        # stage failures reach `send` as a caboose and take the normal path.
        if stage.name == "send" and not state.get("p2_ends_sent"):
            state["p2_ends_sent"] = True
            for dest in range(P):
                comm.send(dest, schema.empty(0), tag=TAG_PASS2)

    prog.on_pipeline_failure = on_failure

    horizontal = prog.add_pipeline(
        "merge-out", [merge_stage, Stage.source_driven("send", send)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None)

    def merge(ctx):
        merger = BlockMerger(schema, range(len(verticals)))
        head_buf = {}

        def refill():
            for i in sorted(merger.needs()):
                if i in head_buf:
                    ctx.convey(head_buf.pop(i))  # spent buffer goes home
                nxt = ctx.accept(verticals[i])
                if nxt.is_caboose:
                    ctx.forward(nxt)
                    merger.finish_run(i)
                else:
                    merger.feed(i, nxt.view(schema.dtype))
                    head_buf[i] = nxt

        refill()  # prime one block per run
        emitted = 0
        while not merger.exhausted:
            if not merger.ready:
                # only take an output buffer once a record is available,
                # so the last buffer accepted is never abandoned unfilled
                refill()
                continue
            out = ctx.accept(horizontal)
            if out.is_caboose:
                # The horizontal pipeline was poisoned below us (send
                # failed) and its source flushed this caboose.  Raising
                # poisons the verticals too, so their sources wind down.
                raise SortError(
                    "pass-2 output pipeline failed underneath merge")
            position = start_global + emitted
            block = position // outB
            offset = position % outB
            # fill exactly to the stripe-block boundary so each conveyed
            # buffer maps to one global block
            target = outB - offset
            out_records = out.data[:target * rec_bytes].view(schema.dtype)
            filled = 0
            while filled < target and not merger.exhausted:
                if not merger.ready:
                    refill()
                    continue
                n = merger.merge_into(out_records, filled, target - filled)
                node.compute_merge(n)
                filled += n
            if filled:
                out.size = filled * rec_bytes
                out.tags["global_block"] = block
                out.tags["offset"] = offset
                ctx.convey(out)
                emitted += filled
        ctx.convey_caboose(horizontal)

    merge_stage.fn = merge

    # -- receive pipeline: accept owned blocks, write them striped ---------------

    out_local = RecordFile(node.disk, output_file, schema)

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        ends = 0
        while ends < P:
            msg = comm.recv_msg(tag=TAG_PASS2)
            if len(msg.payload) == 0:
                ends += 1
                continue
            block = msg.meta["global_block"]
            if block % P != comm.rank:
                raise SortError(
                    f"node {comm.rank} received block {block} owned by "
                    f"node {block % P}")
            buf = ctx.accept()
            if buf.is_caboose:  # pipeline poisoned by a downstream failure
                ctx.forward(buf)
                return
            node.compute_copy(msg.payload.nbytes)
            buf.put(msg.payload)
            buf.tags.update(msg.meta)
            ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    def write(ctx, buf):
        records = buf.view(schema.dtype)
        local_start = ((buf.tags["global_block"] // P) * outB
                       + buf.tags["offset"])
        out_local.write(local_start, records)
        return buf

    prog.add_pipeline(
        "recv", [Stage.source_driven("receive", receive),
                 Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None)


# -- recovery variant --------------------------------------------------------


def pieces_of(start_global: int, total: int,
              out_block_records: int) -> list[tuple[int, int, int]]:
    """Chop one node's merged range into output stripe pieces.

    Returns ``(global block, offset within block, records)`` triples in
    merge order — the deterministic unit of pass-2 checkpointing: a
    piece is durable once its owner wrote and journaled it, and a
    resumed merge restarts at the first non-durable piece.
    """
    pieces = []
    pos, end = start_global, start_global + total
    while pos < end:
        blk, off = pos // out_block_records, pos % out_block_records
        cnt = min(out_block_records - off, end - pos)
        pieces.append((blk, off, cnt))
        pos += cnt
    return pieces


def _add_merge_chain(prog: FGProgram, node: Node, comm: Comm,
                     schema: RecordSchema, manager, state: dict, *,
                     label: str, pid: str, runs: list[tuple[str, int, int]],
                     pieces: list[tuple[int, int, int]], total: int,
                     start_piece: int, positions: list[int],
                     emitted0: int, vB: int, outB: int, nbuffers: int,
                     owners: list[int], durable_all: dict,
                     gate_rank, contender, gauge_name, mlog,
                     role) -> None:
    """One merge chain: verticals over ``runs`` -> merge -> send.

    The primary chain (``label == ""``) is the classic pass-2 topology;
    recovery adds resumability (``start_piece`` / ``positions`` /
    ``emitted0`` from the merge log), and the same builder also erects
    *backup* chains (speculation: gated on :meth:`backup_wait`, racing
    the primary as contender ``"b"``) and *adopted* chains (a dead
    rank's partition range merged from its backup runs by the adopter).
    Every chain is an independent set of pipelines; a chain that loses
    its race raises :class:`~repro.errors.SpeculationLost` and drains
    through the ordinary poison/teardown path, end markers included.
    """
    from repro.errors import SpeculationLost

    P = comm.size
    S = len(owners)
    rec_bytes = schema.record_bytes
    rank = comm.rank
    ends_key = f"ends:{pid}"
    journal_every = manager.policy.journal_every

    verdict: dict = {}

    def gate_check() -> None:
        # first caller parks in backup_wait; the verdict is sticky, so
        # every later call is a cheap cache hit
        if "v" not in verdict:
            verdict["v"] = manager.backup_wait(gate_rank)
        if verdict["v"] != "activate":
            raise SpeculationLost(
                f"backup merge for rank {gate_rank} stood down")

    gated = contender == "b"

    def check_defeat() -> None:
        # called at every disk-read and merge-refill boundary: the
        # moment the other contender finishes the range, this chain's
        # stages stand down and free the disk arm — on a straggler,
        # that arm is exactly what its receive-side output writes are
        # queued behind
        if contender is None:
            return
        winner = manager.winner_of(gate_rank)
        if winner is not None and winner != contender:
            raise SpeculationLost(
                f"range of rank {gate_rank} already merged by the "
                "other contender")

    # -- verticals (skip runs the checkpoint already consumed) ------------

    merge_stage = Stage.source_driven(f"{label}merge", None)
    verticals: dict[int, object] = {}
    for i, (run_name, r0, n_run) in enumerate(runs):
        p0 = positions[i]
        if p0 >= n_run:
            continue
        run_file = RecordFile(node.disk, run_name, schema)

        def make_read(run_file, r0, n_run, p0):
            def read(ctx, buf):
                if gated:
                    gate_check()  # no disk touched before the race opens
                check_defeat()
                start = p0 + buf.round * vB
                count = min(vB, n_run - start)
                buf.put(run_file.read(r0 + start, count))
                return buf
            return read

        stage = Stage.map(f"{label}read{i}",
                          make_read(run_file, r0, n_run, p0),
                          virtual=True, virtual_group=f"{label}read")
        verticals[i] = prog.add_pipeline(
            f"{label}v{i}", [stage, merge_stage],
            nbuffers=2, buffer_bytes=vB * rec_bytes,
            rounds=math.ceil((n_run - p0) / vB), role=role)

    # -- horizontal: merge -> send ----------------------------------------

    def send(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            records = buf.view(schema.dtype)
            blk = buf.tags["global_block"]
            off = buf.tags["offset"]
            dest = owners[blk % S]
            if (not manager.is_dead(dest)
                    and (blk, off) not in durable_all.get(dest, ())):
                comm.send(dest, records.copy(), tag=TAG_PASS2,
                          meta={"global_block": blk, "offset": off})
            ctx.convey(buf)
        for dest in range(P):
            if manager.is_dead(dest):
                continue
            comm.send(dest, schema.empty(0), tag=TAG_PASS2,
                      meta={"producer": pid})
        state[ends_key] = True
        ctx.forward(buf)

    horizontal = prog.add_pipeline(
        f"{label}merge-out",
        [merge_stage, Stage.source_driven(f"{label}send", send)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None,
        role=role)
    state.setdefault("send_stages", {})[f"{label}send"] = pid

    metrics = getattr(node.kernel, "metrics", None)
    gauge = (metrics.gauge(gauge_name,
                           help="fraction of the partition range merged")
             if metrics is not None and gauge_name else None)

    def merge(ctx):
        if gated:
            gate_check()
        active = sorted(verticals)
        merger = BlockMerger(schema, active)
        head_buf: dict[int, object] = {}
        fed = {i: positions[i] for i in active}

        def refill():
            check_defeat()
            for i in sorted(merger.needs()):
                if i in head_buf:
                    ctx.convey(head_buf.pop(i))  # spent buffer goes home
                nxt = ctx.accept(verticals[i])
                if nxt.is_caboose:
                    ctx.forward(nxt)
                    # a poisoned vertical (its read stage died) flushes a
                    # caboose too; honoring it as end-of-run would merge
                    # the surviving runs into wrong-but-sorted pieces —
                    # which checkpointing would then make durable.  Only
                    # a fully-delivered run may retire.
                    if fed[i] != runs[i][2]:
                        check_defeat()
                        raise SortError(
                            f"pass-2 vertical {i} died after {fed[i]} of "
                            f"{runs[i][2]} records")
                    merger.finish_run(i)
                else:
                    block = nxt.view(schema.dtype)
                    merger.feed(i, block)
                    fed[i] += len(block)
                    head_buf[i] = nxt

        refill()
        emitted = emitted0
        for idx in range(start_piece, len(pieces)):
            check_defeat()
            blk, off, cnt = pieces[idx]
            out = ctx.accept(horizontal)
            if out.is_caboose:
                raise SortError(
                    "pass-2 output pipeline failed underneath merge")
            out_records = out.data[:cnt * rec_bytes].view(schema.dtype)
            filled = 0
            while filled < cnt:
                if not merger.ready:
                    refill()
                    continue
                n = merger.merge_into(out_records, filled, cnt - filled)
                if n == 0 and merger.exhausted:
                    check_defeat()
                    raise SortError(
                        "pass-2 merge ran dry before its range completed")
                node.compute_merge(n)
                filled += n
            out.size = cnt * rec_bytes
            out.tags["global_block"] = blk
            out.tags["offset"] = off
            ctx.convey(out)
            emitted += cnt
            if gauge is not None:
                gauge.set(emitted / max(total, 1))
            if mlog is not None and (idx == len(pieces) - 1
                                     or (idx + 1 - start_piece)
                                     % journal_every == 0):
                consumed = [fed[i] - merger.head_remaining(i)
                            if i in fed else positions[i]
                            for i in range(len(runs))]
                mlog.append({"k": idx, "e": emitted, "pos": consumed})
        # totals are exact, so past the last piece only cabooses remain;
        # accept them so the vertical pipelines can finish
        while not merger.exhausted:
            if not merger.needs():
                raise SortError(
                    "pass-2 merge has records beyond its range")
            refill()
        ctx.convey_caboose(horizontal)
        if contender is not None:
            manager.range_complete(gate_rank, contender)

    merge_stage.fn = merge


def build_pass2_recover(prog: FGProgram, node: Node, comm: Comm,
                        schema: RecordSchema, *, manager,
                        runs: list[tuple[str, int, int]], totals: dict,
                        start_globals: dict, owners: list[int],
                        producers: dict, output_file: str,
                        vertical_block_records: int,
                        out_block_records: int, nbuffers: int,
                        state: dict, durable_all: dict, durable_own: set,
                        resume: dict, jrn2, mlog,
                        speculative: bool) -> None:
    """The recovering variant of :func:`build_pass2`.

    Erects up to three kinds of merge chains on this node — its own
    partition range (resumable from the merge log), a gated speculative
    backup of the rank it buddies for, and an adopted chain per dead
    rank whose backups live here — plus one receive pipeline that
    writes owned stripe pieces under the survivor striping ``owners``
    and journals them write-ahead (batched) for the next attempt's
    resume.  ``producers`` (identical on every rank) maps each logical
    producer id to its host rank; the receive stage finishes once every
    producer's end marker arrived, with the recovery manager's watchdog
    standing in for producers whose host died.
    """
    from repro.errors import FaultError

    P = comm.size
    S = len(owners)
    rank = comm.rank
    rec_bytes = schema.record_bytes
    vB = vertical_block_records
    outB = out_block_records
    policy = manager.policy

    def on_failure(stage, pipelines, exc):
        # a dead send stage can no longer deliver its chain's end
        # markers; send them in its stead (unless this whole node died
        # — then the watchdog compensates out-of-band)
        pid = state.get("send_stages", {}).get(stage.name)
        if pid is None or state.get(f"ends:{pid}"):
            return
        state[f"ends:{pid}"] = True
        try:
            for dest in range(P):
                if manager.is_dead(dest):
                    continue
                comm.send(dest, schema.empty(0), tag=TAG_PASS2,
                          meta={"producer": pid})
        except FaultError:
            pass  # this node is dying too; the watchdog takes over

    prog.on_pipeline_failure = on_failure

    # -- own partition range (the primary chain) --------------------------

    _add_merge_chain(
        prog, node, comm, schema, manager, state,
        label="", pid=f"p{rank}", runs=runs,
        pieces=pieces_of(start_globals[rank], totals[rank], outB),
        total=totals[rank],
        start_piece=resume["start_piece"], positions=resume["positions"],
        emitted0=resume["emitted0"], vB=vB, outB=outB, nbuffers=nbuffers,
        owners=owners, durable_all=durable_all,
        gate_rank=rank, contender="p" if speculative and totals[rank] > 0
        else None,
        gauge_name=f"recovery.progress.{rank}", mlog=mlog, role=None)

    # -- speculative backup of the rank this node buddies for -------------

    if speculative:
        for r in owners:
            if r == rank or manager.buddy(r) != rank or totals[r] <= 0:
                continue
            bruns = manager.backup_runs_of(r)
            if not bruns:
                continue
            _add_merge_chain(
                prog, node, comm, schema, manager, state,
                label=f"bak{r}.", pid=f"b{r}", runs=bruns,
                pieces=pieces_of(start_globals[r], totals[r], outB),
                total=totals[r], start_piece=0,
                positions=[0] * len(bruns), emitted0=0,
                # whole-run reads: the backups live in contiguous
                # segment files, so recovery reads pay one seek per run
                vB=max(n for _, _, n in bruns), outB=outB,
                nbuffers=nbuffers,
                owners=owners, durable_all=durable_all,
                gate_rank=r, contender="b",
                gauge_name=f"recovery.progress.bak.{r}", mlog=None,
                role="backup")

    # -- adopted ranges of dead ranks whose backups live here --------------

    for d, adopter in sorted(manager.adopters().items()):
        if adopter != rank or totals.get(d, 0) <= 0:
            continue
        druns = manager.backup_runs_of(d)
        _add_merge_chain(
            prog, node, comm, schema, manager, state,
            label=f"adopt{d}.", pid=f"a{d}", runs=druns,
            pieces=pieces_of(start_globals[d], totals[d], outB),
            total=totals[d], start_piece=0,
            positions=[0] * len(druns), emitted0=0,
            vB=max(n for _, _, n in druns), outB=outB, nbuffers=nbuffers,
            owners=owners, durable_all=durable_all,
            gate_rank=d, contender=None,
            gauge_name=f"recovery.progress.adopt.{d}", mlog=None,
            role="adopted")

    # -- receive pipeline: owned pieces under the survivor striping --------

    out_local = RecordFile(node.disk, output_file, schema)

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        expected = set(producers)
        ends: set = set()
        written = set(durable_own)
        while not expected <= ends:
            msg = comm.recv_msg(tag=TAG_PASS2)
            meta = msg.meta or {}
            if len(msg.payload) == 0:
                pid = meta.get("producer")
                if pid is not None:
                    ends.add(pid)
                continue
            blk = meta["global_block"]
            if owners[blk % S] != rank:
                raise SortError(
                    f"node {rank} received block {blk} owned by node "
                    f"{owners[blk % S]}")
            key = (blk, meta["offset"])
            if key in written:
                continue  # durable already, or the race's second copy
            written.add(key)
            buf = ctx.accept()
            if buf.is_caboose:  # pipeline poisoned by a downstream failure
                ctx.forward(buf)
                return
            node.compute_copy(msg.payload.nbytes)
            buf.put(msg.payload)
            buf.tags.update(msg.meta)
            ctx.convey(buf)
        # final (possibly empty) buffer flushes the write stage's
        # batched journal tail
        buf = ctx.accept()
        if buf.is_caboose:
            ctx.forward(buf)
            return
        buf.put(schema.empty(0))
        buf.tags["last"] = True
        ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    pending_pieces: list = []

    def write(ctx, buf):
        records = buf.view(schema.dtype)
        if len(records):
            blk = buf.tags["global_block"]
            local_start = (blk // S) * outB + buf.tags["offset"]
            out_local.write(local_start, records)
            if jrn2 is not None:
                pending_pieces.append([int(blk),
                                       int(buf.tags["offset"])])
        if pending_pieces and (len(pending_pieces) >= policy.journal_every
                               or buf.tags.get("last")):
            jrn2.append({"ps": list(pending_pieces)})
            pending_pieces.clear()
        return buf

    prog.add_pipeline(
        "recv", [Stage.source_driven("receive", receive),
                 Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None)
