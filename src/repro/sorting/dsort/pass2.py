"""dsort pass 2: merging, load-balancing, and striping (paper, Figure 7).

Per node, four kinds of pipelines cooperate:

* **vertical pipelines**, one per sorted run, whose (virtual) read stages
  feed run blocks into the merge stage — hundreds of runs cost O(1)
  threads thanks to virtual stages;
* the **merge stage**, where the vertical pipelines intersect the
  horizontal one: it fills large, stripe-block-aligned output buffers by
  k-way merging;
* the **horizontal send pipeline**: each merged buffer covers exactly one
  global output block (possibly partially, at the ends of this node's
  merged range), and is sent to the block's round-robin owner;
* a disjoint **receive pipeline** that accepts blocks this node owns and
  writes them at the proper striped offsets.

Load balancing is implicit: the merged streams of the P nodes concatenate
into the global sorted order, and PDM striping deals the blocks of that
order round-robin across nodes regardless of how unbalanced the partition
sizes were.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.merge import BlockMerger

__all__ = ["build_pass2", "TAG_PASS2"]

#: message tag for pass-2 block traffic (empty payload = end marker)
TAG_PASS2 = 12


def build_pass2(prog: FGProgram, node: Node, comm: Comm,
                schema: RecordSchema, runs: list[tuple[str, int]],
                start_global: int, output_file: str,
                vertical_block_records: int, out_block_records: int,
                nbuffers: int, state: Optional[dict] = None) -> None:
    """Add pass-2's vertical, horizontal, and receive pipelines to ``prog``.

    ``runs`` lists this node's sorted runs from pass 1; ``start_global``
    is the global rank of this node's smallest record (exclusive prefix
    sum of per-node totals).  ``state`` (if given) records
    ``state['p2_ends_sent']`` so the failure hook can tell whether peers
    still need this node's end markers.
    """
    if state is None:
        state = {}
    P = comm.size
    rec_bytes = schema.record_bytes
    vB = vertical_block_records
    outB = out_block_records

    # -- vertical pipelines (virtual read stages) ---------------------------

    merge_stage = Stage.source_driven("merge", None)  # fn bound below
    verticals = []
    for i, (run_name, n_run) in enumerate(runs):
        if n_run <= 0:
            raise SortError(f"run {run_name!r} is empty")
        run_file = RecordFile(node.disk, run_name, schema)

        def make_read(run_file, n_run):
            def read(ctx, buf):
                start = buf.round * vB
                count = min(vB, n_run - start)
                buf.put(run_file.read(start, count))
                return buf
            return read

        stage = Stage.map(f"read{i}", make_read(run_file, n_run),
                          virtual=True, virtual_group="read")
        pipeline = prog.add_pipeline(
            f"v{i}", [stage, merge_stage],
            nbuffers=2, buffer_bytes=vB * rec_bytes,
            rounds=math.ceil(n_run / vB))
        verticals.append(pipeline)

    # -- horizontal pipeline: merge -> send ------------------------------------

    def send(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            records = buf.view(schema.dtype)
            block = buf.tags["global_block"]
            comm.send(block % P, records.copy(), tag=TAG_PASS2,
                      meta={"global_block": block,
                            "offset": buf.tags["offset"]})
            ctx.convey(buf)
        for dest in range(P):
            comm.send(dest, schema.empty(0), tag=TAG_PASS2)  # end marker
        state["p2_ends_sent"] = True
        ctx.forward(buf)

    def on_failure(stage, pipelines, exc):
        # A dead send stage can no longer deliver end markers, and every
        # peer's receive stage counts on them; send in its stead.  Other
        # stage failures reach `send` as a caboose and take the normal path.
        if stage.name == "send" and not state.get("p2_ends_sent"):
            state["p2_ends_sent"] = True
            for dest in range(P):
                comm.send(dest, schema.empty(0), tag=TAG_PASS2)

    prog.on_pipeline_failure = on_failure

    horizontal = prog.add_pipeline(
        "merge-out", [merge_stage, Stage.source_driven("send", send)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None)

    def merge(ctx):
        merger = BlockMerger(schema, range(len(verticals)))
        head_buf = {}

        def refill():
            for i in sorted(merger.needs()):
                if i in head_buf:
                    ctx.convey(head_buf.pop(i))  # spent buffer goes home
                nxt = ctx.accept(verticals[i])
                if nxt.is_caboose:
                    ctx.forward(nxt)
                    merger.finish_run(i)
                else:
                    merger.feed(i, nxt.view(schema.dtype))
                    head_buf[i] = nxt

        refill()  # prime one block per run
        emitted = 0
        while not merger.exhausted:
            if not merger.ready:
                # only take an output buffer once a record is available,
                # so the last buffer accepted is never abandoned unfilled
                refill()
                continue
            out = ctx.accept(horizontal)
            if out.is_caboose:
                # The horizontal pipeline was poisoned below us (send
                # failed) and its source flushed this caboose.  Raising
                # poisons the verticals too, so their sources wind down.
                raise SortError(
                    "pass-2 output pipeline failed underneath merge")
            position = start_global + emitted
            block = position // outB
            offset = position % outB
            # fill exactly to the stripe-block boundary so each conveyed
            # buffer maps to one global block
            target = outB - offset
            out_records = out.data[:target * rec_bytes].view(schema.dtype)
            filled = 0
            while filled < target and not merger.exhausted:
                if not merger.ready:
                    refill()
                    continue
                n = merger.merge_into(out_records, filled, target - filled)
                node.compute_merge(n)
                filled += n
            if filled:
                out.size = filled * rec_bytes
                out.tags["global_block"] = block
                out.tags["offset"] = offset
                ctx.convey(out)
                emitted += filled
        ctx.convey_caboose(horizontal)

    merge_stage.fn = merge

    # -- receive pipeline: accept owned blocks, write them striped ---------------

    out_local = RecordFile(node.disk, output_file, schema)

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        ends = 0
        while ends < P:
            msg = comm.recv_msg(tag=TAG_PASS2)
            if len(msg.payload) == 0:
                ends += 1
                continue
            block = msg.meta["global_block"]
            if block % P != comm.rank:
                raise SortError(
                    f"node {comm.rank} received block {block} owned by "
                    f"node {block % P}")
            buf = ctx.accept()
            if buf.is_caboose:  # pipeline poisoned by a downstream failure
                ctx.forward(buf)
                return
            node.compute_copy(msg.payload.nbytes)
            buf.put(msg.payload)
            buf.tags.update(msg.meta)
            ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    def write(ctx, buf):
        records = buf.view(schema.dtype)
        local_start = ((buf.tags["global_block"] // P) * outB
                       + buf.tags["offset"])
        out_local.write(local_start, records)
        return buf

    prog.add_pipeline(
        "recv", [Stage.source_driven("receive", receive),
                 Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=outB * rec_bytes, rounds=None)
