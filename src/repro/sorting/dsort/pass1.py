"""dsort pass 1: partitioning and distribution (paper, Figure 6).

Each node runs two disjoint FG pipelines:

* **send pipeline** (``read -> permute -> send``, rounds known): reads a
  block of the local input, rearranges it so records of the same partition
  are contiguous (using splitters + extended keys), and doles each
  partition's records out to its target node;
* **receive pipeline** (``receive -> sort -> write``, rounds unknown):
  packs incoming records into pipeline buffers, sorts each full buffer,
  and writes it to disk — each written buffer is one **sorted run**.

The two pipelines progress at different rates because the number of
records a node sends almost never equals the number it receives — the
unbalanced communication that motivated FG's disjoint-pipeline extension.

End-of-stream: after its caboose, every send stage sends one empty message
to every node; a receive stage that has collected all P end markers (and
drained leftovers) conveys its own caboose.

Failure compensation: if the send stage itself dies, peers would wait
forever for this node's end markers, so the program's failure hook sends
them on the dead stage's behalf (``state['p1_ends_sent']`` guards against
double-sending).  A receive stage that accepts a caboose — its pipeline
was poisoned by a downstream failure — forwards it and bows out.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.sampling import Splitters, partition_ids

__all__ = ["build_pass1", "TAG_PASS1"]

#: message tag for pass-1 record traffic (empty payload = end marker)
TAG_PASS1 = 11


def build_pass1(prog: FGProgram, node: Node, comm: Comm,
                schema: RecordSchema, splitters: Splitters,
                input_file: str, run_prefix: str,
                block_records: int, nbuffers: int,
                state: dict, sort_replicas: int = 1) -> None:
    """Add pass-1's send and receive pipelines to ``prog``.

    ``state`` collects per-node results: ``state['runs']`` becomes the
    list of ``(file name, record count)`` sorted runs written locally.
    ``sort_replicas`` runs that many interchangeable copies of the
    receive pipeline's sort stage (it is stateless, so it is the one
    pass-1 stage eligible for replication; ``write`` appends to the
    shared run list and must stay single).
    """
    P = comm.size
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, input_file, schema)
    n_local = rf_in.n_records
    n_blocks = math.ceil(n_local / block_records)
    hw = node.hardware
    state.setdefault("runs", [])
    state.setdefault("next_run", 0)

    # -- send pipeline ----------------------------------------------------

    def read(ctx, buf):
        start = buf.round * block_records
        count = min(block_records, n_local - start)
        buf.put(rf_in.read(start, count))
        buf.tags["start"] = start
        return buf

    def permute(ctx, buf):
        records = buf.view(schema.dtype)
        start = buf.tags["start"]
        positions = np.arange(start, start + len(records), dtype=np.int64)
        part = partition_ids(records["key"], comm.rank, positions,
                             splitters)
        order = np.argsort(part, kind="stable")
        # partitioning ~ binary search per record + out-of-place permute
        node.compute(hw.sort_cost_per_key_log * len(records)
                     * max(1.0, math.log2(P))
                     + hw.copy_time(records.nbytes))
        buf.put(records[order])
        buf.tags["counts"] = np.bincount(part, minlength=P)
        return buf

    def send(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            records = buf.view(schema.dtype)
            counts = buf.tags["counts"]
            offsets = np.concatenate(([0], np.cumsum(counts)))
            for dest in range(P):
                lo, hi = int(offsets[dest]), int(offsets[dest + 1])
                if hi > lo:
                    comm.send(dest, records[lo:hi].copy(), tag=TAG_PASS1)
            ctx.convey(buf)
        for dest in range(P):
            comm.send(dest, schema.empty(0), tag=TAG_PASS1)  # end marker
        state["p1_ends_sent"] = True
        ctx.forward(buf)

    def on_failure(stage, pipelines, exc):
        # Any other stage's failure still reaches `send` as a caboose and
        # the markers go out on the normal path; only a dead send stage
        # leaves peers hanging.
        if stage.name == "send" and not state.get("p1_ends_sent"):
            state["p1_ends_sent"] = True
            for dest in range(P):
                comm.send(dest, schema.empty(0), tag=TAG_PASS1)

    prog.on_pipeline_failure = on_failure

    prog.add_pipeline(
        "send",
        [Stage.map("read", read), Stage.map("permute", permute),
         Stage.source_driven("send", send)],
        nbuffers=nbuffers, buffer_bytes=block_records * rec_bytes,
        rounds=n_blocks, aux_buffers=True)

    # -- receive pipeline ---------------------------------------------------------

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        ends = 0
        leftover = None
        while True:
            parts = []
            have = 0
            if leftover is not None:
                parts.append(leftover)
                have = len(leftover)
                leftover = None
            while have < block_records and ends < P:
                _, payload = comm.recv(tag=TAG_PASS1)
                if len(payload) == 0:
                    ends += 1
                    continue
                parts.append(payload)
                have += len(payload)
            if have == 0:
                break
            records = np.concatenate(parts) if len(parts) > 1 else parts[0]
            take = min(block_records, len(records))
            leftover = records[take:] if take < len(records) else None
            buf = ctx.accept()
            if buf.is_caboose:  # pipeline poisoned by a downstream failure
                ctx.forward(buf)
                return
            node.compute_copy(take * rec_bytes)  # pack into pipeline buffer
            buf.put(records[:take])
            ctx.convey(buf)
            if ends == P and leftover is None:
                break
        ctx.convey_caboose(pipeline)

    def sort(ctx, buf):
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    def write(ctx, buf):
        records = buf.view(schema.dtype)
        run_name = f"{run_prefix}.{state['next_run']}"
        state["next_run"] += 1
        RecordFile(node.disk, run_name, schema).write(0, records)
        state["runs"].append((run_name, len(records)))
        return buf

    prog.add_pipeline(
        "recv",
        [Stage.source_driven("receive", receive), Stage.map("sort", sort),
         Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=block_records * rec_bytes,
        rounds=None, aux_buffers=True,
        replicas={"sort": sort_replicas} if sort_replicas > 1 else None)
