"""dsort pass 1: partitioning and distribution (paper, Figure 6).

Each node runs two disjoint FG pipelines:

* **send pipeline** (``read -> permute -> send``, rounds known): reads a
  block of the local input, rearranges it so records of the same partition
  are contiguous (using splitters + extended keys), and doles each
  partition's records out to its target node;
* **receive pipeline** (``receive -> sort -> write``, rounds unknown):
  packs incoming records into pipeline buffers, sorts each full buffer,
  and writes it to disk — each written buffer is one **sorted run**.

The two pipelines progress at different rates because the number of
records a node sends almost never equals the number it receives — the
unbalanced communication that motivated FG's disjoint-pipeline extension.

End-of-stream: after its caboose, every send stage sends one empty message
to every node; a receive stage that has collected all P end markers (and
drained leftovers) conveys its own caboose.

Failure compensation: if the send stage itself dies, peers would wait
forever for this node's end markers, so the program's failure hook sends
them on the dead stage's behalf (``state['p1_ends_sent']`` guards against
double-sending).  A receive stage that accepts a caboose — its pipeline
was poisoned by a downstream failure — forwards it and bows out.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.sampling import Splitters, partition_ids

__all__ = ["build_pass1", "build_pass1_recover", "TAG_PASS1"]

#: message tag for pass-1 record traffic (empty payload = end marker)
TAG_PASS1 = 11


def build_pass1(prog: FGProgram, node: Node, comm: Comm,
                schema: RecordSchema, splitters: Splitters,
                input_file: str, run_prefix: str,
                block_records: int, nbuffers: int,
                state: dict, sort_replicas: int = 1) -> None:
    """Add pass-1's send and receive pipelines to ``prog``.

    ``state`` collects per-node results: ``state['runs']`` becomes the
    list of ``(file name, record count)`` sorted runs written locally.
    ``sort_replicas`` runs that many interchangeable copies of the
    receive pipeline's sort stage (it is stateless, so it is the one
    pass-1 stage eligible for replication; ``write`` appends to the
    shared run list and must stay single).
    """
    P = comm.size
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, input_file, schema)
    n_local = rf_in.n_records
    n_blocks = math.ceil(n_local / block_records)
    hw = node.hardware
    state.setdefault("runs", [])
    state.setdefault("next_run", 0)

    # -- send pipeline ----------------------------------------------------

    def read(ctx, buf):
        start = buf.round * block_records
        count = min(block_records, n_local - start)
        buf.put(rf_in.read(start, count))
        buf.tags["start"] = start
        return buf

    def permute(ctx, buf):
        records = buf.view(schema.dtype)
        start = buf.tags["start"]
        positions = np.arange(start, start + len(records), dtype=np.int64)
        part = partition_ids(records["key"], comm.rank, positions,
                             splitters)
        order = np.argsort(part, kind="stable")
        # partitioning ~ binary search per record + out-of-place permute
        node.compute(hw.sort_cost_per_key_log * len(records)
                     * max(1.0, math.log2(P))
                     + hw.copy_time(records.nbytes))
        buf.put(records[order])
        buf.tags["counts"] = np.bincount(part, minlength=P)
        return buf

    def send(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            records = buf.view(schema.dtype)
            counts = buf.tags["counts"]
            offsets = np.concatenate(([0], np.cumsum(counts)))
            for dest in range(P):
                lo, hi = int(offsets[dest]), int(offsets[dest + 1])
                if hi > lo:
                    comm.send(dest, records[lo:hi].copy(), tag=TAG_PASS1)
            ctx.convey(buf)
        for dest in range(P):
            comm.send(dest, schema.empty(0), tag=TAG_PASS1)  # end marker
        state["p1_ends_sent"] = True
        ctx.forward(buf)

    def on_failure(stage, pipelines, exc):
        # Any other stage's failure still reaches `send` as a caboose and
        # the markers go out on the normal path; only a dead send stage
        # leaves peers hanging.
        if stage.name == "send" and not state.get("p1_ends_sent"):
            state["p1_ends_sent"] = True
            for dest in range(P):
                comm.send(dest, schema.empty(0), tag=TAG_PASS1)

    prog.on_pipeline_failure = on_failure

    prog.add_pipeline(
        "send",
        [Stage.map("read", read), Stage.map("permute", permute),
         Stage.source_driven("send", send)],
        nbuffers=nbuffers, buffer_bytes=block_records * rec_bytes,
        rounds=n_blocks, aux_buffers=True)

    # -- receive pipeline ---------------------------------------------------------

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        ends = 0
        leftover = None
        while True:
            parts = []
            have = 0
            if leftover is not None:
                parts.append(leftover)
                have = len(leftover)
                leftover = None
            while have < block_records and ends < P:
                _, payload = comm.recv(tag=TAG_PASS1)
                if len(payload) == 0:
                    ends += 1
                    continue
                parts.append(payload)
                have += len(payload)
            if have == 0:
                break
            records = np.concatenate(parts) if len(parts) > 1 else parts[0]
            take = min(block_records, len(records))
            leftover = records[take:] if take < len(records) else None
            buf = ctx.accept()
            if buf.is_caboose:  # pipeline poisoned by a downstream failure
                ctx.forward(buf)
                return
            node.compute_copy(take * rec_bytes)  # pack into pipeline buffer
            buf.put(records[:take])
            ctx.convey(buf)
            if ends == P and leftover is None:
                break
        ctx.convey_caboose(pipeline)

    def sort(ctx, buf):
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    def write(ctx, buf):
        records = buf.view(schema.dtype)
        run_name = f"{run_prefix}.{state['next_run']}"
        state["next_run"] += 1
        RecordFile(node.disk, run_name, schema).write(0, records)
        state["runs"].append((run_name, len(records)))
        return buf

    prog.add_pipeline(
        "recv",
        [Stage.source_driven("receive", receive), Stage.map("sort", sort),
         Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=block_records * rec_bytes,
        rounds=None, aux_buffers=True,
        replicas={"sort": sort_replicas} if sort_replicas > 1 else None)


def build_pass1_recover(prog: FGProgram, node: Node, comm: Comm,
                        schema: RecordSchema, splitters: Splitters, *,
                        input_file: str, run_prefix: str,
                        block_records: int, nbuffers: int, state: dict,
                        manager, journal, sendlog,
                        skip_blocks: frozenset, sent_logged: set,
                        durable_own: set,
                        sort_replicas: int = 1) -> None:
    """The checkpointing variant of :func:`build_pass1`.

    Structurally the same two pipelines, with the recovery manager's
    block-level bookkeeping woven in:

    * every data message carries its source input block in metadata and
      every end marker names its logical producer, so a retried attempt
      can deduplicate re-sent fragments against the ``(src, block)``
      pairs its journal proved durable;
    * the send stage skips fragments every destination already holds
      durably (and destinations that are dead), and logs fully-sent
      blocks to ``sendlog`` so a retried read stage can skip re-reading
      them from disk entirely (``skip_blocks``);
    * the write stage optionally replicates each run onto the buddy
      node's disk (``RecoverPolicy.backup_runs`` — a remote-DMA-style
      write charged to the buddy's arm), then journals the run and its
      fragments write-ahead: a run is only ever *re-received* if the
      crash beat its journal entry, and then the deduplication above
      makes the retry exactly-once.

    Journal appends are batched ``RecoverPolicy.journal_every`` units
    per entry; the receive stage conveys a final (possibly empty)
    ``last``-tagged buffer so the write stage can flush its tail batch.
    """
    P = comm.size
    policy = manager.policy
    rec_bytes = schema.record_bytes
    rf_in = RecordFile(node.disk, input_file, schema)
    n_local = rf_in.n_records
    n_blocks = math.ceil(n_local / block_records)
    hw = node.hardware
    state.setdefault("runs", [])
    state.setdefault("next_run", 0)
    rank = comm.rank
    buddy = manager.buddy(rank)
    backup_disk = (manager.cluster.nodes[buddy].disk
                   if policy.backup_runs and buddy != rank else None)

    # -- send pipeline ----------------------------------------------------

    def read(ctx, buf):
        b = buf.round
        buf.tags["block"] = b
        if b in skip_blocks:
            # every fragment of this block is durable at its destination
            # (journal-proven); skip the disk read, the permute, and the
            # sends — this is the checkpoint's pass-1 saving
            buf.put(schema.empty(0))
            buf.tags["skip"] = True
            return buf
        start = b * block_records
        count = min(block_records, n_local - start)
        buf.put(rf_in.read(start, count))
        buf.tags["start"] = start
        return buf

    def permute(ctx, buf):
        if buf.tags.get("skip"):
            return buf
        records = buf.view(schema.dtype)
        start = buf.tags["start"]
        positions = np.arange(start, start + len(records), dtype=np.int64)
        part = partition_ids(records["key"], comm.rank, positions,
                             splitters)
        order = np.argsort(part, kind="stable")
        node.compute(hw.sort_cost_per_key_log * len(records)
                     * max(1.0, math.log2(P))
                     + hw.copy_time(records.nbytes))
        buf.put(records[order])
        buf.tags["counts"] = np.bincount(part, minlength=P)
        return buf

    def send(ctx):
        pending: list = []
        logged = set(sent_logged)
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            if buf.tags.get("skip"):
                ctx.convey(buf)
                continue
            b = buf.tags["block"]
            records = buf.view(schema.dtype)
            counts = buf.tags["counts"]
            offsets = np.concatenate(([0], np.cumsum(counts)))
            dsts = []
            for dest in range(P):
                lo, hi = int(offsets[dest]), int(offsets[dest + 1])
                if hi <= lo:
                    continue
                dsts.append(dest)
                if (manager.is_dead(dest)
                        or (rank, b) in manager.durable_frags(dest)):
                    continue  # durable there already, or nobody home
                comm.send(dest, records[lo:hi].copy(), tag=TAG_PASS1,
                          meta={"block": b})
            if sendlog is not None and b not in logged:
                logged.add(b)
                pending.append([b, dsts])
                if len(pending) >= policy.journal_every:
                    sendlog.append({"blocks": pending})
                    pending = []
            ctx.convey(buf)
        if pending:
            sendlog.append({"blocks": pending})
        for dest in range(P):
            if manager.is_dead(dest):
                continue
            comm.send(dest, schema.empty(0), tag=TAG_PASS1,
                      meta={"producer": f"p{rank}"})
        state["p1_ends_sent"] = True
        ctx.forward(buf)

    def on_failure(stage, pipelines, exc):
        if stage.name == "send" and not state.get("p1_ends_sent"):
            state["p1_ends_sent"] = True
            for dest in range(P):
                if manager.is_dead(dest):
                    continue
                comm.send(dest, schema.empty(0), tag=TAG_PASS1,
                          meta={"producer": f"p{rank}"})

    prog.on_pipeline_failure = on_failure

    prog.add_pipeline(
        "send",
        [Stage.map("read", read), Stage.map("permute", permute),
         Stage.source_driven("send", send)],
        nbuffers=nbuffers, buffer_bytes=block_records * rec_bytes,
        rounds=n_blocks, aux_buffers=True)

    # -- receive pipeline ---------------------------------------------------

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        expected = {f"p{r}" for r in range(P)}
        ends: set = set()
        seen = set(durable_own)
        parts: list = []  # [(key, records)] whole fragments, never split
        have = 0

        def flush(last: bool) -> bool:
            """Pack pending fragments into one buffer; False = poisoned."""
            nonlocal parts, have
            if not parts and not last:
                return True
            buf = ctx.accept()
            if buf.is_caboose:
                ctx.forward(buf)
                return False
            payloads = [p for _, p in parts]
            records = (np.concatenate(payloads) if len(payloads) > 1
                       else payloads[0] if payloads else schema.empty(0))
            node.compute_copy(len(records) * rec_bytes)
            buf.put(records)
            buf.tags["frags"] = [key for key, _ in parts]
            if last:
                buf.tags["last"] = True
            ctx.convey(buf)
            parts = []
            have = 0
            return True

        while not expected <= ends:
            msg = comm.recv_msg(tag=TAG_PASS1)
            meta = msg.meta or {}
            if len(msg.payload) == 0:
                ends.add(meta.get("producer", f"p{msg.src}"))
                continue
            key = (msg.src, meta["block"])
            if key in seen:
                continue  # journal-proven durable, or a re-sent duplicate
            seen.add(key)
            if have + len(msg.payload) > block_records:
                if not flush(last=False):
                    return
            parts.append((key, msg.payload))
            have += len(msg.payload)
        # the final buffer is tagged so the write stage can flush its
        # batched journal tail; conveyed even when empty
        if not flush(last=True):
            return
        ctx.convey_caboose(pipeline)

    def sort(ctx, buf):
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        buf.put(schema.sort(records))
        return buf

    pending_runs: list = []
    pending_bak: list = []

    def write(ctx, buf):
        records = buf.view(schema.dtype)
        if len(records):
            k = state["next_run"]
            state["next_run"] += 1
            run_name = f"{run_prefix}.{k}"
            RecordFile(node.disk, run_name, schema).write(0, records)
            if backup_disk is not None:
                pending_bak.append((k, records.copy()))
            pending_runs.append({"k": k, "name": run_name,
                                 "n": len(records), "bak": None,
                                 "frags": [[int(s), int(b)]
                                           for s, b in buf.tags["frags"]]})
            state["runs"].append((run_name, len(records)))
        if pending_runs and (len(pending_runs) >= policy.journal_every
                             or buf.tags.get("last")):
            if pending_bak:
                # replicate the batch onto the buddy's disk as ONE
                # segment file — one seek per batch, not one per run —
                # before the journal admits any of these runs exists.
                # A stale segment of the same name from a failed
                # attempt may be longer, so truncate first.
                seg = f"{run_prefix}.bakseg{rank}.{pending_bak[0][0]}"
                backup_disk.storage.truncate(seg, 0)
                RecordFile(backup_disk, seg, schema).write(
                    0, np.concatenate([r for _, r in pending_bak]))
                start = 0
                offsets = {}
                for k, recs in pending_bak:
                    offsets[k] = start
                    start += len(recs)
                for entry in pending_runs:
                    if entry["k"] in offsets:
                        entry["bak"] = [seg, offsets[entry["k"]]]
                pending_bak.clear()
            if journal is not None:
                journal.append({"runs": list(pending_runs)})
            for entry in pending_runs:
                if entry["bak"] is not None:
                    manager.publish_backup_run(rank, entry["k"],
                                               entry["bak"][0],
                                               entry["bak"][1], entry["n"])
            pending_runs.clear()
        return buf

    prog.add_pipeline(
        "recv",
        [Stage.source_driven("receive", receive), Stage.map("sort", sort),
         Stage.map("write", write)],
        nbuffers=nbuffers, buffer_bytes=block_records * rec_bytes,
        rounds=None, aux_buffers=True,
        replicas={"sort": sort_replicas} if sort_replicas > 1 else None)
