"""Output verification: the checks every sorting experiment must pass.

A sorting program is correct when its striped output (a) contains exactly
the input multiset of keys, in sorted order, (b) kept every record intact
(payload still matches its key), and (c) is laid out in PDM striping.
:func:`verify_striped_output` checks all three against the dataset
manifest and raises :class:`~repro.errors.VerificationError` with a
precise diagnosis on any mismatch.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import VerificationError
from repro.pdm.striped import StripedFile
from repro.workloads.generator import DatasetManifest

__all__ = ["verify_striped_output", "verify_partitioned_output",
           "verify_records_sorted"]


def verify_records_sorted(records: np.ndarray, what: str = "output") -> None:
    """Raise unless ``records`` is non-decreasing by key."""
    keys = records["key"]
    if len(keys) > 1:
        bad = np.nonzero(keys[:-1] > keys[1:])[0]
        if len(bad):
            i = int(bad[0])
            raise VerificationError(
                f"{what} not sorted: key[{i}]={keys[i]} > "
                f"key[{i + 1}]={keys[i + 1]}")


def verify_partitioned_output(cluster: Cluster, manifest: DatasetManifest,
                              output_name: str) -> None:
    """Check a *non-striped* sorted output (NOW-Sort style): node i's
    local file is sorted, keys on node i precede keys on node i+1, and
    the concatenation is the sorted input multiset."""
    from repro.pdm.blockfile import RecordFile

    schema = manifest.schema
    parts = []
    for rank, node in enumerate(cluster.nodes):
        local = RecordFile(node.disk, output_name, schema).read_all()
        verify_records_sorted(local, what=f"node {rank} output")
        parts.append(local)
    for rank in range(len(parts) - 1):
        left, right = parts[rank], parts[rank + 1]
        if len(left) and len(right) and left["key"][-1] > right["key"][0]:
            raise VerificationError(
                f"partition order violated between nodes {rank} and "
                f"{rank + 1}: {left['key'][-1]} > {right['key'][0]}")
    merged = np.concatenate(parts)
    if len(merged) != manifest.total_records:
        raise VerificationError(
            f"output has {len(merged)} records, expected "
            f"{manifest.total_records}")
    if not np.array_equal(merged["key"], manifest.sorted_keys):
        raise VerificationError(
            "concatenated local outputs are not the sorted input multiset")


def verify_striped_output(cluster: Cluster, manifest: DatasetManifest,
                          output_name: str, block_records: int,
                          owners: "list[int] | None" = None) -> None:
    """Check a striped output file against the dataset manifest.

    ``owners`` names the ranks the file is striped over (stripe order);
    defaults to all ranks.  After partition re-assignment the recovery
    manager passes the survivor layout here.
    """
    schema = manifest.schema
    striped = StripedFile(cluster, output_name, schema, block_records,
                          owners=owners)

    # striping first: every owner must hold exactly its round-robin share
    # (checked before reading content, so a misplaced layout is diagnosed
    # as such rather than as a read error)
    total_blocks = -(-manifest.total_records // block_records)
    for rank in sorted(set(striped.owners)):
        local = striped.locals[rank]
        owned = [b for b in range(total_blocks)
                 if striped.node_of_block(b) == rank]
        expected_records = sum(
            min(block_records, manifest.total_records - b * block_records)
            for b in owned)
        if local.n_records != expected_records:
            raise VerificationError(
                f"node {rank} holds {local.n_records} output records, "
                f"expected {expected_records} under PDM striping")

    out = striped.read_all()
    if len(out) != manifest.total_records:
        raise VerificationError(
            f"output has {len(out)} records, expected "
            f"{manifest.total_records}")

    verify_records_sorted(out)

    if not np.array_equal(out["key"], manifest.sorted_keys):
        diff = np.nonzero(out["key"] != manifest.sorted_keys)[0]
        i = int(diff[0])
        raise VerificationError(
            f"output keys are not the sorted input multiset: first "
            f"mismatch at global position {i}: got {out['key'][i]}, "
            f"expected {manifest.sorted_keys[i]}")

    if "payload" in schema.dtype.names:
        tags = schema.payload_tags(out)
        expected = out["key"] ^ np.uint64(0x9E3779B97F4A7C15)
        if not np.array_equal(tags, expected):
            bad = int(np.nonzero(tags != expected)[0][0])
            raise VerificationError(
                f"record at global position {bad} lost its payload "
                "(key and payload stamp disagree)")
