"""Out-of-core sorting on FG: dsort, csort, merging, verification.

This package implements both programs the paper evaluates:

* :mod:`repro.sorting.dsort` — the two-pass, distribution-based sort built
  on FG's multiple disjoint and intersecting pipelines (Section V);
* :mod:`repro.sorting.columnsort` — the three-pass columnsort-based
  baseline ("csort", Section III), which uses a single linear pipeline per
  node and only balanced communication;

plus the shared substrates:

* :mod:`repro.sorting.merge` — incremental k-way merging of sorted blocks
  (the compute core of dsort's merge stage);
* :mod:`repro.sorting.verify` — output checkers (sortedness, multiset
  equality, payload integrity, PDM striping).
"""

from repro.sorting.merge import BlockMerger
from repro.sorting.verify import verify_striped_output

__all__ = ["BlockMerger", "verify_striped_output"]
