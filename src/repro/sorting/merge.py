"""Incremental k-way merging of sorted record blocks.

:class:`BlockMerger` is the compute core of dsort's merge stage (paper,
Figure 5/7): it merges k sorted runs whose data arrives block by block.
The caller feeds one block per run, asks the merger to copy merged output
directly into an output array, and refills whichever run's head block
empties.  The merger never blocks — pipeline flow control stays in the FG
stage that owns it.

Merging is vectorized by *galloping*: the run with the smallest head key
copies every record strictly below the next competitor's head key in one
slice, so the per-record Python overhead is amortized over long stretches
(crucial when one run dominates, e.g. nearly-sorted inputs).
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.errors import SortError
from repro.pdm.records import RecordSchema

__all__ = ["BlockMerger"]


class BlockMerger:
    """Merge k sorted runs, pull-based, one head block per run."""

    def __init__(self, schema: RecordSchema, run_ids):
        self.schema = schema
        self._heads: dict[Hashable, tuple[np.ndarray, int]] = {}
        self._pending: set[Hashable] = set(run_ids)  # need a block
        self._finished: set[Hashable] = set()
        if len(self._pending) != len(list(run_ids)):
            raise SortError("duplicate run ids")

    # -- run feeding ---------------------------------------------------------

    def feed(self, run: Hashable, records: np.ndarray) -> None:
        """Supply the next sorted block of ``run``."""
        if run not in self._pending:
            raise SortError(f"run {run!r} does not need a block")
        if len(records) == 0:
            raise SortError(f"empty block fed for run {run!r}")
        self._pending.discard(run)
        self._heads[run] = (records, 0)

    def finish_run(self, run: Hashable) -> None:
        """Declare that ``run`` has no more blocks."""
        if run not in self._pending:
            raise SortError(
                f"run {run!r} cannot finish while it has an unconsumed head")
        self._pending.discard(run)
        self._finished.add(run)

    # -- state queries ------------------------------------------------------------

    def needs(self) -> set:
        """Runs whose next block must be fed before merging can continue."""
        return set(self._pending)

    def head_remaining(self, run: Hashable) -> int:
        """Unconsumed records in ``run``'s current head block (0 if the
        head is empty or the run finished).  The recovery checkpoint uses
        this to journal per-run consumed positions without copying."""
        if run not in self._heads:
            return 0
        records, pos = self._heads[run]
        return len(records) - pos

    @property
    def ready(self) -> bool:
        """True when merging can proceed (no run awaits a block)."""
        return not self._pending

    @property
    def exhausted(self) -> bool:
        """True when every run has finished and all heads drained."""
        return not self._pending and not self._heads

    # -- merging ---------------------------------------------------------------------

    def merge_into(self, out: np.ndarray, start: int, budget: int) -> int:
        """Copy up to ``budget`` merged records into ``out[start:]``.

        Returns the number of records copied.  Stops early when a run's
        head block empties (feed it, then call again) or when all runs are
        exhausted.  Requires :attr:`ready`.
        """
        if not self.ready:
            raise SortError(
                f"merge_into while runs {sorted(map(repr, self._pending))} "
                "await blocks")
        copied = 0
        while copied < budget and self._heads:
            run, records, pos = self._min_head()
            keys = records["key"]
            competitor = self._second_smallest_key(run)
            if competitor is None:
                take = len(records) - pos
            else:
                # all records strictly below the competitor can stream out;
                # on a tie take one record to guarantee progress
                take = int(np.searchsorted(keys[pos:], competitor,
                                           side="left"))
                take = max(take, 1)
            take = min(take, budget - copied, len(records) - pos)
            out[start + copied:start + copied + take] = \
                records[pos:pos + take]
            copied += take
            pos += take
            if pos == len(records):
                del self._heads[run]
                if run not in self._finished:
                    self._pending.add(run)
                    break  # caller must feed this run before continuing
            else:
                self._heads[run] = (records, pos)
        return copied

    def _min_head(self) -> tuple[Hashable, np.ndarray, int]:
        best = None
        for run, (records, pos) in self._heads.items():
            key = records["key"][pos]
            cand = (key, repr(run), run, records, pos)
            if best is None or cand[:2] < best[:2]:
                best = cand
        assert best is not None
        return best[2], best[3], best[4]

    def _second_smallest_key(self, exclude) -> Optional[np.uint64]:
        best = None
        for run, (records, pos) in self._heads.items():
            if run == exclude:
                continue
            key = records["key"][pos]
            if best is None or key < best:
                best = key
        return best
