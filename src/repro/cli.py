"""Command-line interface: run experiments without writing a script.

Usage::

    python -m repro sort --sorter dsort --distribution poisson
    python -m repro figure8 --record-bytes 16
    python -m repro sweep --blocks 512,1024,2048
    python -m repro overlap
    python -m repro distributions
    python -m repro analyze --trace-out trace.json
    python -m repro chaos --kill-disk-op 40 --prov-out run.prov.json
    python -m repro sched --jobs 200 --policy fair --preempt
    python -m repro replay run.prov.json

Every command builds a fresh simulated cluster with the scaled paper
hardware, runs deterministically, verifies the output, and prints the
same tables the benchmark suite saves under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FG programming environment — experiment runner")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sort = sub.add_parser(
        "sort", help="run one sorting experiment and print its breakdown")
    p_sort.add_argument("--sorter", default="dsort",
                        choices=["dsort", "csort", "dsort-linear"])
    p_sort.add_argument("--distribution", default="uniform")
    p_sort.add_argument("--nodes", type=int, default=16)
    p_sort.add_argument("--records-per-node", type=int, default=16384)
    p_sort.add_argument("--record-bytes", type=int, default=16)
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.add_argument("--prov-out", metavar="PATH",
                        help="capture a provenance record of the run "
                             "(replayable with `repro replay`)")

    p_fig = sub.add_parser(
        "figure8", help="regenerate Figure 8 (dsort vs csort table)")
    p_fig.add_argument("--record-bytes", type=int, default=16,
                       choices=[16, 64])
    p_fig.add_argument("--nodes", type=int, default=16)
    p_fig.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser(
        "sweep", help="sweep dsort's pass-1 buffer size")
    p_sweep.add_argument("--blocks", default="512,1024,2048,4096",
                         help="comma-separated block sizes in records")
    p_sweep.add_argument("--nodes", type=int, default=16)

    sub.add_parser("overlap",
                   help="pipeline-vs-serial overlap demonstration")

    sub.add_parser("distributions", help="list available key distributions")

    p_apps = sub.add_parser(
        "apps", help="run the beyond-sorting applications "
                     "(out-of-core transpose + group-by)")
    p_apps.add_argument("--nodes", type=int, default=4)
    p_apps.add_argument("--matrix-side", type=int, default=128)
    p_apps.add_argument("--kv-per-node", type=int, default=10000)
    p_apps.add_argument("--key-space", type=int, default=500)

    p_trace = sub.add_parser(
        "trace", help="run dsort with the tracer and print a Gantt chart")
    p_trace.add_argument("--nodes", type=int, default=2)
    p_trace.add_argument("--records-per-node", type=int, default=16384)
    p_trace.add_argument("--distribution", default="uniform")
    p_trace.add_argument("--width", type=int, default=100)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--trace-out", metavar="PATH",
                         help="also write a Chrome-trace JSON "
                              "(open in chrome://tracing or Perfetto)")
    p_trace.add_argument("--metrics-out", metavar="PATH",
                         help="also write a metrics-registry snapshot JSON")

    p_chaos = sub.add_parser(
        "chaos", help="run a sorter under seeded fault injection "
                      "(verified, with recovery stats)")
    p_chaos.add_argument("--sorter", choices=("dsort", "csort"),
                         default="dsort",
                         help="which sorter to chaos-test (csort has no "
                              "recovery manager: transient faults only)")
    p_chaos.add_argument("--nodes", type=int, default=3)
    p_chaos.add_argument("--records-per-node", type=int, default=None,
                         help="records per node (default 2000 for dsort, "
                              "1728 for csort)")
    p_chaos.add_argument("--seed", type=int, default=1234)
    p_chaos.add_argument("--recover", action="store_true",
                         help="dsort only: run under the fine-grained "
                              "recovery manager (block checkpoints, "
                              "backup runs, partition re-assignment)")
    p_chaos.add_argument("--speculate", action="store_true",
                         help="dsort only: also launch speculative "
                              "backup merges for stragglers "
                              "(implies --recover)")
    p_chaos.add_argument("--disk-fault-rate", type=float, default=0.02,
                         help="per-op transient disk-fault probability")
    p_chaos.add_argument("--drop-rate", type=float, default=0.01,
                         help="per-message wire-drop probability")
    p_chaos.add_argument("--straggler", type=int, default=None,
                         metavar="RANK",
                         help="slow one node down (compute + disk)")
    p_chaos.add_argument("--straggler-slowdown", type=float, default=3.0)
    p_chaos.add_argument("--kill-disk-op", type=int, default=None,
                         metavar="N",
                         help="permanent fault at disk op N on "
                              "--kill-disk-rank (forces a pass restart)")
    p_chaos.add_argument("--kill-disk-rank", type=int, default=0)
    p_chaos.add_argument("--pass-retries", type=int, default=2,
                         help="cluster-wide restarts allowed per pass")
    p_chaos.add_argument("--block-records", type=int, default=128,
                         help="pass-1 block size in records")
    p_chaos.add_argument("--check-determinism", action="store_true",
                         help="run twice and assert identical outputs, "
                              "fault timelines, and event traces")
    p_chaos.add_argument("--trace-out", metavar="PATH",
                         help="write a Chrome-trace JSON with fault "
                              "markers")
    p_chaos.add_argument("--prov-out", metavar="PATH",
                         help="capture a provenance record of the chaos "
                              "run (replayable with `repro replay`)")

    p_lint = sub.add_parser(
        "lint", help="statically lint the FG programs assembled by the "
                     "given Python files (executes each file with the "
                     "findings collector armed)")
    p_lint.add_argument("files", nargs="*", metavar="FILE",
                        help="program files to lint (e.g. examples/*.py)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit findings as JSON instead of text")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit nonzero on warnings too")
    p_lint.add_argument("--effects", action="store_true",
                        help="also report every stage's inferred "
                             "parallel-safety class (pure / read_shared "
                             "/ write_shared)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog (FG101..FG114) and "
                             "exit")

    p_tune = sub.add_parser(
        "tune", help="auto-tune a sorting benchmark: offline search "
                     "(hill/grid) or run-by-run adaptive feedback")
    p_tune.add_argument("--sorter", default="dsort",
                        choices=["dsort", "csort"])
    p_tune.add_argument("--method", default="hill",
                        choices=["hill", "grid", "adaptive"])
    p_tune.add_argument("--distribution", default="uniform")
    p_tune.add_argument("--nodes", type=int, default=4)
    p_tune.add_argument("--records-per-node", type=int, default=4096)
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--out", metavar="PATH",
                        help="write the result (best config, baseline, "
                             "trial log) as JSON")
    p_tune.add_argument("--prov-out", metavar="PATH",
                        help="re-run the winning config with provenance "
                             "capture and write its record (replayable "
                             "with `repro replay`)")
    p_tune.add_argument("--warm-start", action="store_true",
                        help="seed the hill climb at the compiled plan's "
                             "config instead of the hand-tuned default "
                             "(hill method only)")

    p_plan = sub.add_parser(
        "plan", help="compile a static execution plan for a sorting "
                     "benchmark: fusion + geometry inferred from the "
                     "hardware cost model, no cluster runs")
    p_plan.add_argument("--sorter", default="dsort",
                        choices=["dsort", "csort"])
    p_plan.add_argument("--nodes", type=int, default=4)
    p_plan.add_argument("--records-per-node", type=int, default=4096)
    p_plan.add_argument("--record-bytes", type=int, default=16)
    p_plan.add_argument("--no-fuse", action="store_true",
                        help="plan geometry only; skip stage fusion "
                             "when the plan is applied")
    p_plan.add_argument("--explain", action="store_true",
                        help="print every planning decision with its "
                             "reason")
    p_plan.add_argument("--json", action="store_true",
                        help="emit the serialized plan as JSON")
    p_plan.add_argument("--out", metavar="PATH",
                        help="write the serialized plan as JSON (load "
                             "with Plan.from_json, or pass to "
                             "run_sort(plan=...))")

    p_sched = sub.add_parser(
        "sched", help="run a multi-tenant job schedule over one shared "
                      "cluster: quotas, placement policy, preemption")
    p_sched.add_argument("--nodes", type=int, default=4)
    p_sched.add_argument("--jobs", type=int, default=40,
                         help="synthetic workload size")
    p_sched.add_argument("--tenants", default="alpha,beta",
                         help="comma-separated tenant names")
    p_sched.add_argument("--policy", default="fair",
                         choices=["fifo", "priority", "fair"])
    p_sched.add_argument("--kinds", default="blocks",
                         help="comma-separated job kinds to draw from "
                              "(blocks, dsort, csort, groupby)")
    p_sched.add_argument("--mean-interarrival", type=float, default=0.2,
                         help="mean virtual seconds between arrivals")
    p_sched.add_argument("--seed", type=int, default=0)
    p_sched.add_argument("--preempt", action="store_true",
                         help="enable priority preemption")
    p_sched.add_argument("--speculation-slots", type=int, default=0,
                         help="cross-tenant speculation budget")
    p_sched.add_argument("--trace-in", metavar="PATH",
                         help="arrival-trace JSON to run instead of a "
                              "synthetic workload")
    p_sched.add_argument("--trace-out", metavar="PATH",
                         help="Chrome-trace JSON output path")
    p_sched.add_argument("--decisions-out", metavar="PATH",
                         help="write the decision log as JSON lines")
    p_sched.add_argument("--prov-out", metavar="PATH",
                         help="capture a provenance record of the "
                              "schedule (replayable with `repro replay`)")

    p_replay = sub.add_parser(
        "replay", help="re-execute a recorded run byte-exactly and "
                       "verify its output/metrics/trace digests, or emit "
                       "a standalone replay script")
    p_replay.add_argument("record", metavar="RECORD",
                          help="provenance record JSON (from --prov-out "
                               "or run_sort(provenance=True))")
    p_replay.add_argument("--script", metavar="PATH",
                          help="write a standalone Python replay script "
                               "instead of replaying now")
    p_replay.add_argument("--json", action="store_true",
                          help="emit the replay verdict as JSON")

    p_an = sub.add_parser(
        "analyze",
        help="run the quickstart pipeline (or dsort) with full "
             "observability: bottleneck report + trace/metrics artifacts")
    p_an.add_argument("--workload", default="quickstart",
                      choices=["quickstart", "dsort"])
    p_an.add_argument("--trace-out", metavar="PATH", default="trace.json",
                      help="Chrome-trace JSON output path "
                           "(default: trace.json)")
    p_an.add_argument("--metrics-out", metavar="PATH",
                      help="metrics-registry snapshot JSON output path")
    p_an.add_argument("--rounds", type=int, default=24,
                      help="quickstart: blocks through the pipeline")
    p_an.add_argument("--nbuffers", type=int, default=4,
                      help="quickstart: buffer-pool size")
    p_an.add_argument("--nodes", type=int, default=2,
                      help="dsort: cluster size")
    p_an.add_argument("--records-per-node", type=int, default=16384,
                      help="dsort: records per node")
    p_an.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_sort(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_sort
    from repro.pdm.records import RecordSchema

    schema = RecordSchema(args.record_bytes)
    run = run_sort(args.sorter, args.distribution, schema,
                   n_nodes=args.nodes, n_per_node=args.records_per_node,
                   seed=args.seed, provenance=bool(args.prov_out))
    print(f"{run.sorter} on {run.distribution}: "
          f"{run.n_nodes} nodes x {run.n_per_node} "
          f"{run.record_bytes}-byte records "
          f"({run.total_bytes / 2**20:.1f} MiB)")
    for phase, seconds in run.phase_times.items():
        print(f"  {phase:10s} {seconds * 1e3:10.3f} ms")
    print(f"  {'total':10s} {run.total_time * 1e3:10.3f} ms")
    print(f"  output verified: {run.verified}")
    if run.partition_imbalance is not None:
        print(f"  partition max/avg: {run.partition_imbalance:.4f}")
    print(f"  disk bytes moved: {run.bytes_io} "
          f"({run.bytes_io / run.total_bytes:.2f}x data volume)")
    print(f"  wire bytes sent:  {run.bytes_wire}")
    if args.prov_out:
        run.provenance.save(args.prov_out)
        print(f"  provenance record: {args.prov_out} "
              f"(verify with `repro replay {args.prov_out}`)")
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    from repro.bench.figures import figure8_experiment
    from repro.bench.reporting import render_figure8

    results = figure8_experiment(args.record_bytes, n_nodes=args.nodes,
                                 seed=args.seed)
    print(render_figure8(results, args.record_bytes))
    worst = max(pair["dsort"].total_time / pair["csort"].total_time
                for pair in results.values())
    print(f"\nworst-case dsort/csort ratio: {worst:.4f} "
          "(paper: 0.7426-0.8506)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.figures import buffer_sweep_experiment
    from repro.bench.reporting import render_table

    blocks = [int(b) for b in args.blocks.split(",") if b]
    results = buffer_sweep_experiment(blocks, n_nodes=args.nodes)
    rows = [[block, run.total_time] for block, run in sorted(
        results.items())]
    print(render_table(["block_records", "dsort total (s)"], rows))
    return 0


def _cmd_overlap(args: argparse.Namespace) -> int:
    from repro.bench.figures import overlap_experiment

    results = overlap_experiment()
    print(f"serial:    {results['serial'] * 1e3:9.3f} ms")
    print(f"pipelined: {results['pipeline'] * 1e3:9.3f} ms")
    print(f"speedup:   {results['speedup']:9.2f}x")
    return 0


def _cmd_distributions(args: argparse.Namespace) -> int:
    from repro.workloads.distributions import (
        ADVERSARIAL_DISTRIBUTIONS,
        DISTRIBUTIONS,
        PAPER_DISTRIBUTIONS,
    )

    for name in sorted(DISTRIBUTIONS):
        marks = []
        if name in PAPER_DISTRIBUTIONS:
            marks.append("paper")
        if name in ADVERSARIAL_DISTRIBUTIONS:
            marks.append("adversarial")
        suffix = f"  [{', '.join(marks)}]" if marks else ""
        print(f"{name}{suffix}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.harness import benchmark_hardware, default_dsort_config
    from repro.cluster import Cluster
    from repro.pdm.records import RecordSchema
    from repro.sim import Tracer, VirtualTimeKernel
    from repro.sorting.dsort import run_dsort
    from repro.sorting.verify import verify_striped_output
    from repro.workloads.generator import generate_input

    schema = RecordSchema.paper_16()
    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)
    kernel.enable_metrics()
    cluster = Cluster(n_nodes=args.nodes, hardware=benchmark_hardware(),
                      kernel=kernel)
    manifest = generate_input(cluster, schema, args.records_per_node,
                              args.distribution, seed=args.seed)
    config = default_dsort_config(args.nodes * args.records_per_node,
                                  args.nodes)
    cluster.run(run_dsort, schema, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    stage_rows = [n for n in tracer.process_names()
                  if "@0" in n and ".source" not in n
                  and ".sink" not in n and "family" not in n
                  and not n.startswith("main")]
    print(f"dsort on {args.nodes} nodes, {args.distribution}: "
          f"{kernel.now() * 1e3:.2f} ms simulated; node-0 stage threads:\n")
    print(tracer.gantt(width=args.width, processes=stage_rows))
    _write_artifacts(args, tracer, kernel, processes=stage_rows)
    return 0


def _write_artifacts(args, tracer, kernel, processes=None) -> None:
    """Write --trace-out / --metrics-out artifacts if requested."""
    from repro.obs import write_chrome_trace, write_metrics_json

    if getattr(args, "trace_out", None):
        doc = write_chrome_trace(args.trace_out, tracer,
                                 metrics=kernel.metrics,
                                 processes=processes)
        print(f"\nwrote Chrome trace: {args.trace_out} "
              f"({len(doc['traceEvents'])} events; open in "
              "chrome://tracing or https://ui.perfetto.dev)")
    if getattr(args, "metrics_out", None):
        write_metrics_json(args.metrics_out, kernel.metrics)
        print(f"wrote metrics snapshot: {args.metrics_out}")


def _cmd_apps(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.apps.groupby import (
        GroupByConfig,
        KeyValueSchema,
        run_groupby,
    )
    from repro.apps.transpose import MATRIX_FILE, run_transpose
    from repro.cluster import Cluster, HardwareModel
    from repro.pdm.blockfile import RecordFile

    P = args.nodes
    n = args.matrix_side
    if n % P != 0:
        raise SystemExit(f"--matrix-side must be a multiple of "
                         f"--nodes ({P})")
    hw = HardwareModel.scaled_paper_cluster()

    cluster = Cluster(n_nodes=P, hardware=hw)
    rng = np.random.default_rng(0)
    rows = n // P
    for node in cluster.nodes:
        block = rng.random((rows, n))
        node.disk.storage.write(MATRIX_FILE, 0,
                                block.reshape(-1).view(np.uint8))
    cluster.run(run_transpose, n)
    print(f"transpose: {n}x{n} float64 on {P} nodes in "
          f"{cluster.kernel.now() * 1e3:.2f} ms simulated")

    schema = KeyValueSchema()
    cluster = Cluster(n_nodes=P, hardware=hw)
    for node in cluster.nodes:
        keys = rng.integers(0, args.key_space, size=args.kv_per_node,
                            dtype=np.uint64)
        values = rng.integers(0, 1000, size=args.kv_per_node,
                              dtype=np.uint64)
        RecordFile(node.disk, "kv-input", schema).poke(
            0, schema.make(keys, values))
    reports = cluster.run(run_groupby, GroupByConfig())
    groups = sum(r.distinct_keys for r in reports)
    print(f"group-by:  {P * args.kv_per_node} records -> {groups} groups "
          f"in {cluster.kernel.now() * 1e3:.2f} ms simulated")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs import analyze_bottleneck
    from repro.sim import Tracer, VirtualTimeKernel

    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)
    kernel.enable_metrics()

    if args.workload == "quickstart":
        stage_rows = _run_quickstart_workload(kernel, args)
        title = (f"quickstart read->compute->write pipeline "
                 f"({args.rounds} blocks, {args.nbuffers} buffers)")
    else:
        stage_rows = _run_dsort_workload(kernel, args)
        title = f"dsort on {args.nodes} nodes (node-0 stage threads)"

    print(f"{title}: {kernel.now() * 1e3:.2f} ms simulated\n")
    report = analyze_bottleneck(tracer, processes=stage_rows)
    print(report.render())
    _print_wait_profiles(kernel)
    _write_artifacts(args, tracer, kernel, processes=None)
    return 0


def _print_wait_profiles(kernel) -> None:
    """Per-stage queue-wait time series for every instrumented program
    on node 0 (multi-node workloads assemble one program per rank; rank
    0 is representative and keeps the report readable)."""
    from repro.obs import (
        instrumented_programs,
        render_stage_series,
        stage_series,
    )

    programs = instrumented_programs(kernel.metrics)
    node0 = [p for p in programs if "@" not in p or "@0" in p]
    for program in node0 or programs:
        series = stage_series(kernel.metrics, program, bins=24)
        if not series:
            continue
        print(f"\n{program} — when each stage waited for input:")
        print(render_stage_series(series))


def _run_quickstart_workload(kernel, args) -> list:
    """The README/quickstart pipeline under full observability."""
    import numpy as np

    from repro.bench.harness import benchmark_hardware
    from repro.cluster import Cluster
    from repro.core import FGProgram, Stage
    from repro.pdm.blockfile import RecordFile
    from repro.pdm.records import RecordSchema

    schema = RecordSchema.paper_16()
    block_records = 4096
    cluster = Cluster(n_nodes=1, hardware=benchmark_hardware(),
                      kernel=kernel)
    node = cluster.node(0)
    rng = np.random.default_rng(args.seed)
    keys = rng.integers(0, 2**63, size=args.rounds * block_records,
                        dtype=np.uint64)
    rf_in = RecordFile(node.disk, "in", schema)
    rf_out = RecordFile(node.disk, "out", schema)
    rf_in.poke(0, schema.from_keys(keys))
    # 1.5x a block-read so the compute stage is the unambiguous
    # bottleneck — the report should *name* it, not leave a tie
    compute_cost = 1.5 * node.hardware.disk_time(block_records
                                                 * schema.record_bytes)

    def node_main(node, comm):
        prog = FGProgram(node.kernel, env={"node": node}, name="quickstart")

        def read(ctx, buf):
            buf.put(rf_in.read(buf.round * block_records, block_records))
            return buf

        def compute(ctx, buf):
            node.compute(compute_cost)
            buf.put(schema.sort(buf.view(schema.dtype)))
            return buf

        def write(ctx, buf):
            rf_out.write(buf.round * block_records, buf.view(schema.dtype))
            return buf

        prog.add_pipeline(
            "work", [Stage.map("read", read),
                     Stage.map("compute", compute),
                     Stage.map("write", write)],
            nbuffers=args.nbuffers,
            buffer_bytes=block_records * schema.record_bytes,
            rounds=args.rounds)
        prog.run()

    cluster.run(node_main)
    return [n for n in kernel.tracer.process_names()
            if n.startswith("quickstart.")]


def _run_dsort_workload(kernel, args) -> list:
    from repro.bench.harness import benchmark_hardware, default_dsort_config
    from repro.cluster import Cluster
    from repro.pdm.records import RecordSchema
    from repro.sorting.dsort import run_dsort
    from repro.sorting.verify import verify_striped_output
    from repro.workloads.generator import generate_input

    schema = RecordSchema.paper_16()
    cluster = Cluster(n_nodes=args.nodes, hardware=benchmark_hardware(),
                      kernel=kernel)
    manifest = generate_input(cluster, schema, args.records_per_node,
                              "uniform", seed=args.seed)
    config = default_dsort_config(args.nodes * args.records_per_node,
                                  args.nodes)
    cluster.run(run_dsort, schema, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    return [n for n in kernel.tracer.process_names()
            if "@0" in n and ".source" not in n and ".sink" not in n
            and "family" not in n and not n.startswith("main")]


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import chaos_plan, run_chaos_csort, run_chaos_dsort

    if args.sorter == "csort" and (args.recover or args.speculate):
        print("error: --recover/--speculate need the dsort recovery "
              "manager; csort chaos covers the transient fault model "
              "only", file=sys.stderr)
        return 2
    recover = None
    if args.recover or args.speculate:
        from repro.recover import RecoverPolicy, SpeculationPolicy

        recover = RecoverPolicy(
            checkpoint=True, backup_runs=True, reassign=True,
            speculation=SpeculationPolicy() if args.speculate else None)

    def make_plan():
        return chaos_plan(args.seed, args.nodes,
                          disk_fault_rate=args.disk_fault_rate,
                          drop_rate=args.drop_rate,
                          straggler_rank=args.straggler,
                          straggler_slowdown=args.straggler_slowdown,
                          permanent_disk_op=args.kill_disk_op,
                          permanent_disk_rank=args.kill_disk_rank)

    def run(trace_path=None):
        if args.sorter == "csort":
            rpn = (args.records_per_node
                   if args.records_per_node is not None else 1728)
            return run_chaos_csort(n_nodes=args.nodes,
                                   records_per_node=rpn,
                                   seed=args.seed, plan=make_plan(),
                                   out_block_records=args.block_records,
                                   trace_path=trace_path)
        rpn = (args.records_per_node
               if args.records_per_node is not None else 2000)
        return run_chaos_dsort(n_nodes=args.nodes,
                               records_per_node=rpn,
                               seed=args.seed, plan=make_plan(),
                               pass_retries=args.pass_retries,
                               block_records=args.block_records,
                               vertical_block_records=max(
                                   1, args.block_records // 2),
                               out_block_records=args.block_records,
                               recover=recover,
                               trace_path=trace_path)

    report = run(trace_path=args.trace_out)
    print(report.describe())
    if args.trace_out:
        print(f"chrome trace written to {args.trace_out}")
    if args.prov_out:
        report.provenance.save(args.prov_out)
        print(f"provenance record written to {args.prov_out} "
              f"(verify with `repro replay {args.prov_out}`)")
    if args.check_determinism:
        again = run()
        identical = (report.output_digest == again.output_digest
                     and report.trace_digest == again.trace_digest
                     and report.fault_events == again.fault_events)
        print("determinism check: "
              + ("PASS (outputs, fault timelines, and event traces "
                 "identical)" if identical else "FAIL"))
        if not identical:
            return 1
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from repro.tune import adaptive_tune_sort, tune_sort

    common = dict(distribution=args.distribution, n_nodes=args.nodes,
                  n_per_node=args.records_per_node, seed=args.seed)
    if args.method == "adaptive":
        result = adaptive_tune_sort(args.sorter, **common)
    else:
        result = tune_sort(args.sorter, method=args.method,
                           warm_start=args.warm_start or None, **common)
    doc = result.to_json()

    print(f"{args.sorter} on {args.distribution}, {args.nodes} nodes x "
          f"{args.records_per_node} records ({doc['method']} search, "
          f"{doc['evaluations']} evaluated runs):")
    trials = doc.get("trials") or [
        {"config": h["config"], "score": h["score"]}
        for h in doc.get("history", [])]
    for t in trials:
        knobs = " ".join(f"{k}={v}" for k, v in t["config"].items())
        print(f"  {t['score'] * 1e3:9.3f} ms  {knobs}")
    print(f"baseline: {doc['baseline_score'] * 1e3:.3f} ms  "
          + " ".join(f"{k}={v}" for k, v in doc["baseline"].items()))
    print(f"best:     {doc['best_score'] * 1e3:.3f} ms  "
          + " ".join(f"{k}={v}" for k, v in doc["best"].items()))
    print(f"improvement: {doc['improvement']:.1%}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.prov_out:
        from repro.tune import record_best_run

        record = record_best_run(args.sorter, doc["best"],
                                 distribution=args.distribution,
                                 n_nodes=args.nodes,
                                 n_per_node=args.records_per_node,
                                 seed=args.seed)
        record.save(args.prov_out)
        print(f"provenance record of the best config written to "
              f"{args.prov_out} (verify with `repro replay "
              f"{args.prov_out}`)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.prov import ProvenanceRecord, emit_script, replay

    record = ProvenanceRecord.load(args.record)
    if args.script:
        emit_script(record, args.script)
        print(f"wrote standalone replay script: {args.script} "
              f"(run with `PYTHONPATH=src python {args.script}`)")
        return 0
    result = replay(record)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.describe())
    return 0 if result.ok else 1


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from repro.plan import plan_sort

    plan = plan_sort(args.sorter, args.nodes, args.records_per_node,
                     record_bytes=args.record_bytes,
                     fuse=not args.no_fuse)
    doc = plan.to_json()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif args.explain:
        print(plan.explain())
    else:
        knobs = " ".join(f"{k}={v}" for k, v in sorted(plan.config.items()))
        print(f"{plan.sorter} plan for {plan.n_nodes} nodes x "
              f"{plan.n_per_node} records ({plan.record_bytes} B): {knobs}")
        print(f"digest {doc['digest'][:16]}…  "
              f"(apply with run_sort(plan=...), or `repro plan --explain` "
              f"for the reasoning)")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.check.runner import lint_paths, rules_table

    if args.list_rules:
        for line in rules_table():
            print(line)
        return 0
    if not args.files:
        print("repro lint: no files given (or use --list-rules)",
              file=sys.stderr)
        return 2
    return lint_paths(args.files, as_json=args.json, strict=args.strict,
                      effects=args.effects)


def _cmd_sched(args: argparse.Namespace) -> int:
    from repro.sched import Quota, run_schedule, synthetic_trace
    from repro.sched.workload import ArrivalTrace

    tenants = [t for t in args.tenants.split(",") if t]
    if args.trace_in:
        with open(args.trace_in) as fh:
            trace = ArrivalTrace.loads(fh.read())
        tenants = trace.tenants
    else:
        trace = synthetic_trace(
            args.seed, args.jobs, tenants,
            mean_interarrival=args.mean_interarrival,
            kinds=tuple(k for k in args.kinds.split(",") if k))
    report = run_schedule(
        trace,
        n_nodes=args.nodes,
        quotas={t: Quota() for t in tenants},
        policy=args.policy,
        seed=args.seed,
        preempt=args.preempt,
        speculation_slots=args.speculation_slots,
        trace_path=args.trace_out,
        provenance=args.prov_out is not None)
    print(report.describe())
    if args.decisions_out:
        with open(args.decisions_out, "w") as fh:
            import json as _json

            for entry in report.decisions:
                fh.write(_json.dumps(entry, sort_keys=True,
                                     separators=(",", ":")) + "\n")
        print(f"decision log written to {args.decisions_out}")
    if args.trace_out:
        print(f"chrome trace written to {args.trace_out}")
    if args.prov_out:
        assert report.provenance is not None
        report.provenance.save(args.prov_out)
        print(f"provenance record written to {args.prov_out} "
              f"(replay with `python -m repro replay {args.prov_out}`)")
    return 0 if report.failed == 0 else 1


_COMMANDS = {
    "sort": _cmd_sort,
    "lint": _cmd_lint,
    "chaos": _cmd_chaos,
    "figure8": _cmd_figure8,
    "sweep": _cmd_sweep,
    "overlap": _cmd_overlap,
    "distributions": _cmd_distributions,
    "trace": _cmd_trace,
    "plan": _cmd_plan,
    "tune": _cmd_tune,
    "replay": _cmd_replay,
    "sched": _cmd_sched,
    "analyze": _cmd_analyze,
    "apps": _cmd_apps,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
