"""Record schemas: fixed-size records with a uint64 sort key.

The paper evaluates two record sizes — 16 bytes (4 gigarecords in 64 GB)
and 64 bytes (1 gigarecord) — each carrying an 8-byte sort key plus
payload.  Records are numpy structured arrays with fields ``key`` and
(optionally) ``payload``, so whole blocks sort/permute vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SortError

__all__ = ["RecordSchema"]


class RecordSchema:
    """Describes one record format (total size, 8-byte ``<u8`` key)."""

    KEY_BYTES = 8

    def __init__(self, record_bytes: int):
        if record_bytes < self.KEY_BYTES:
            raise SortError(
                f"record_bytes must be >= {self.KEY_BYTES} (the key), "
                f"got {record_bytes}")
        self.record_bytes = record_bytes
        payload = record_bytes - self.KEY_BYTES
        if payload:
            self.dtype = np.dtype([("key", "<u8"),
                                   ("payload", f"V{payload}")])
        else:
            self.dtype = np.dtype([("key", "<u8")])
        assert self.dtype.itemsize == record_bytes

    # -- common formats -----------------------------------------------------

    @classmethod
    def paper_16(cls) -> "RecordSchema":
        """16-byte records (Figure 8a)."""
        return cls(16)

    @classmethod
    def paper_64(cls) -> "RecordSchema":
        """64-byte records (Figure 8b)."""
        return cls(64)

    # -- construction / conversion ---------------------------------------------

    def empty(self, n: int) -> np.ndarray:
        """n zeroed records."""
        return np.zeros(n, dtype=self.dtype)

    def from_keys(self, keys: np.ndarray) -> np.ndarray:
        """Records with the given keys and a payload derived from the key
        (so payload integrity is checkable after sorting)."""
        keys = np.asarray(keys, dtype="<u8")
        recs = self.empty(len(keys))
        recs["key"] = keys
        if "payload" in self.dtype.names:
            # stamp the first bytes of the payload with a key-derived tag
            stamp = (keys ^ np.uint64(0x9E3779B97F4A7C15)).view("<u8")
            width = min(8, self.dtype["payload"].itemsize)
            raw = recs.view(np.uint8).reshape(len(keys), self.record_bytes)
            raw[:, self.KEY_BYTES:self.KEY_BYTES + width] = (
                stamp.view(np.uint8).reshape(len(keys), 8)[:, :width])
        return recs

    def payload_tags(self, records: np.ndarray) -> np.ndarray:
        """Recover the key-derived payload stamp written by from_keys."""
        if "payload" not in self.dtype.names:
            raise SortError("schema has no payload")
        width = min(8, self.dtype["payload"].itemsize)
        raw = np.ascontiguousarray(records).view(np.uint8)
        raw = raw.reshape(len(records), self.record_bytes)
        out = np.zeros(len(records), dtype="<u8")
        out_bytes = out.view(np.uint8).reshape(len(records), 8)
        out_bytes[:, :width] = raw[:, self.KEY_BYTES:self.KEY_BYTES + width]
        return out

    def to_bytes(self, records: np.ndarray) -> np.ndarray:
        """Raw uint8 view of a record array (zero-copy where possible)."""
        return np.ascontiguousarray(records).view(np.uint8).reshape(-1)

    def from_bytes(self, raw: np.ndarray) -> np.ndarray:
        """Interpret a uint8 array as records."""
        raw = np.ascontiguousarray(raw)
        if raw.nbytes % self.record_bytes != 0:
            raise SortError(
                f"{raw.nbytes} bytes is not a whole number of "
                f"{self.record_bytes}-byte records")
        return raw.view(self.dtype)

    def nbytes(self, nrecords: int) -> int:
        return nrecords * self.record_bytes

    def nrecords(self, nbytes: int) -> int:
        if nbytes % self.record_bytes != 0:
            raise SortError(
                f"{nbytes} bytes is not a whole number of "
                f"{self.record_bytes}-byte records")
        return nbytes // self.record_bytes

    # -- sorting helpers ------------------------------------------------------------

    def sort(self, records: np.ndarray) -> np.ndarray:
        """Stable sort by key (returns a new array)."""
        order = np.argsort(records["key"], kind="stable")
        return records[order]

    def is_sorted(self, records: np.ndarray) -> bool:
        keys = records["key"]
        return bool(np.all(keys[:-1] <= keys[1:])) if len(keys) > 1 else True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RecordSchema {self.record_bytes}B>"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RecordSchema)
                and other.record_bytes == self.record_bytes)

    def __hash__(self) -> int:
        return hash(("RecordSchema", self.record_bytes))
