"""Striped files: the Parallel Disk Model output layout.

"The records reside in fixed-size blocks, which are assigned in
round-robin order to the disks in the cluster" (paper, Section V).  Global
block ``b`` lives on node ``b % P`` at local block ``b // P``.  Both dsort
and csort write their final output through this layout, which makes their
outputs byte-comparable and lets one verifier check both.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema

__all__ = ["StripedFile"]


class StripedFile:
    """A record file striped block-round-robin across cluster disks.

    By default every node owns a stripe.  After a node crash the
    recovery manager re-stripes the output over the *survivors* only;
    pass ``owners`` (the surviving ranks, in stripe order) to address
    such a file: global block ``b`` then lives on node
    ``owners[b % len(owners)]`` at local block ``b // len(owners)``.
    """

    def __init__(self, cluster: Cluster, name: str, schema: RecordSchema,
                 block_records: int,
                 owners: Optional[Sequence[int]] = None):
        if block_records < 1:
            raise SortError("block_records must be >= 1")
        self.cluster = cluster
        self.name = name
        self.schema = schema
        self.block_records = block_records
        self.owners = (list(owners) if owners is not None
                       else list(range(cluster.n_nodes)))
        if not self.owners:
            raise SortError("striped file needs at least one owner node")
        self.locals = [RecordFile(node.disk, name, schema)
                       for node in cluster.nodes]

    # -- geometry -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.cluster.n_nodes

    @property
    def stripe_width(self) -> int:
        """Number of disks the file is striped over (== n_nodes unless a
        survivor layout was supplied)."""
        return len(self.owners)

    def node_of_block(self, global_block: int) -> int:
        return self.owners[global_block % self.stripe_width]

    def local_block(self, global_block: int) -> int:
        return global_block // self.stripe_width

    def block_of_record(self, global_record: int) -> int:
        return global_record // self.block_records

    def locate(self, global_record: int) -> tuple[int, int]:
        """(node, local record index) of a global record position."""
        block = self.block_of_record(global_record)
        within = global_record % self.block_records
        return (self.node_of_block(block),
                self.local_block(block) * self.block_records + within)

    # -- timed I/O -----------------------------------------------------------------

    def write_block(self, global_block: int, records: np.ndarray,
                    offset_records: int = 0) -> None:
        """Write ``records`` into ``global_block`` starting at
        ``offset_records`` within the block (timed, charges the owner disk)."""
        if offset_records + len(records) > self.block_records:
            raise SortError(
                f"write of {len(records)} records at offset "
                f"{offset_records} overflows block of {self.block_records}")
        node = self.node_of_block(global_block)
        local = (self.local_block(global_block) * self.block_records
                 + offset_records)
        self.locals[node].write(local, records)

    def read_block(self, global_block: int) -> np.ndarray:
        """Read one whole block (timed)."""
        node = self.node_of_block(global_block)
        local = self.local_block(global_block) * self.block_records
        return self.locals[node].read(local, self.block_records)

    # -- untimed verification helpers ---------------------------------------------------

    def total_records(self) -> int:
        # sum only the owner disks: after re-assignment a dead node may
        # still hold a stale partial file from the aborted epoch
        return sum(self.locals[rank].n_records
                   for rank in sorted(set(self.owners)))

    def read_all(self) -> np.ndarray:
        """Untimed read of all records in global (PDM) order."""
        total = self.total_records()
        out = self.schema.empty(total)
        pos = 0
        block = 0
        while pos < total:
            node = self.node_of_block(block)
            local = self.local_block(block) * self.block_records
            count = min(self.block_records, total - pos)
            out[pos:pos + count] = self.locals[node].peek(local, count)
            pos += count
            block += 1
        return out

    def delete(self) -> None:
        for f in self.locals:
            f.delete()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<StripedFile {self.name!r}: {self.total_records()} records "
                f"in {self.block_records}-record blocks over "
                f"{self.stripe_width} nodes>")
