"""Write-ahead journals: crash-durable block manifests for recovery.

A :class:`Journal` is an append-only file of JSON lines on one node's
disk.  The recovery manager journals every durable unit of pass work —
a completed run file in pass 1, a written output stripe piece in
pass 2 — *after* the data write completes, so a retried pass can load
the journal and resume from the last durable block instead of
re-running the whole pass.

Appends go through the timed disk path (they cost modeled arm time and
are subject to fault injection like any other write); loads are untimed
metadata reads, the same rule the verifier uses.  Each line carries a
CRC32 of its payload: a node crash mid-append leaves a torn tail, and
``load`` stops at the first line that fails its checksum — everything
before it is durable, everything after never happened.
"""

from __future__ import annotations

import json
import zlib
from typing import Any

import numpy as np

from repro.cluster.disk import Disk

__all__ = ["Journal"]


def _encode(entry: dict[str, Any]) -> bytes:
    body = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n".encode("utf-8")


def _decode(line: bytes) -> "dict[str, Any] | None":
    """One journal line back to its entry, or None if torn/corrupt."""
    try:
        text = line.decode("utf-8")
        crc_hex, body = text.split(" ", 1)
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != int(crc_hex, 16):
            return None
        entry = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        return None
    return entry if isinstance(entry, dict) else None


class Journal:
    """An append-only, checksummed JSON-line journal on one disk."""

    def __init__(self, disk: Disk, name: str):
        self.disk = disk
        self.name = name

    # -- timed append (inside kernel processes) -----------------------------

    def append(self, entry: dict[str, Any]) -> None:
        """Durably append one entry (timed, charges the disk arm).

        The caller must have already made the data the entry describes
        durable: the journal records *facts*, and a fact journaled before
        it is true would survive a crash the data did not.
        """
        raw = np.frombuffer(_encode(entry), dtype=np.uint8)
        self.disk.write(self.name, self.disk.size(self.name)
                        if self.exists else 0, raw)

    # -- untimed recovery reads ---------------------------------------------

    def load(self) -> list[dict[str, Any]]:
        """All durable entries, in append order.

        Stops at the first torn or corrupt line (the tail a crash left
        behind); entries before it are returned, the tail is discarded.
        """
        if not self.exists:
            return []
        size = self.disk.size(self.name)
        raw = bytes(self.disk.storage.read(self.name, 0, size))
        entries: list[dict[str, Any]] = []
        for line in raw.split(b"\n"):
            if not line:
                continue
            entry = _decode(line)
            if entry is None:
                break
            entries.append(entry)
        return entries

    @property
    def exists(self) -> bool:
        return self.disk.exists(self.name)

    def delete(self) -> None:
        """Drop the journal (untimed metadata op, like file deletes)."""
        if self.exists:
            self.disk.delete(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Journal {self.name!r} on {self.disk.name}>"
