"""Parallel Disk Model file layer: records, block files, striped files.

The sorting programs move fixed-size **records** (a sort key plus payload),
stored in **block files** on per-node disks and, for final output, in a
**striped file** whose fixed-size blocks are assigned round-robin to the
cluster's disks — the ordering defined by the Parallel Disk Model, which
both dsort and csort produce (paper, Section V).
"""

from repro.pdm.records import RecordSchema
from repro.pdm.blockfile import RecordFile
from repro.pdm.journal import Journal
from repro.pdm.striped import StripedFile

__all__ = ["RecordSchema", "RecordFile", "Journal", "StripedFile"]
