"""Record-oriented files on one disk.

:class:`RecordFile` keeps the byte arithmetic of record I/O in one place:
positions and lengths are expressed in records, the disk is charged in
bytes.  Reads and writes go through the (timed) disk device; the untimed
``peek``/``poke`` variants bypass timing for test setup and verification.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.disk import Disk
from repro.pdm.records import RecordSchema

__all__ = ["RecordFile"]


class RecordFile:
    """A named file of fixed-size records on one node's disk."""

    def __init__(self, disk: Disk, name: str, schema: RecordSchema):
        self.disk = disk
        self.name = name
        self.schema = schema

    # -- timed I/O (inside kernel processes) ---------------------------------

    def read(self, start_record: int, nrecords: int) -> np.ndarray:
        """Read ``nrecords`` records starting at record index ``start_record``."""
        raw = self.disk.read(self.name,
                             start_record * self.schema.record_bytes,
                             nrecords * self.schema.record_bytes)
        return self.schema.from_bytes(raw)

    def write(self, start_record: int, records: np.ndarray) -> None:
        """Write ``records`` at record index ``start_record``."""
        self.disk.write(self.name,
                        start_record * self.schema.record_bytes,
                        self.schema.to_bytes(records))

    def append(self, records: np.ndarray) -> int:
        """Write ``records`` at the end; returns their starting record index."""
        start = self.n_records
        self.write(start, records)
        return start

    # -- untimed helpers (setup / verification only) ------------------------------

    def peek(self, start_record: int, nrecords: int) -> np.ndarray:
        """Untimed read, bypassing the disk arm (for tests/verification)."""
        raw = self.disk.storage.read(
            self.name, start_record * self.schema.record_bytes,
            nrecords * self.schema.record_bytes)
        return self.schema.from_bytes(raw)

    def poke(self, start_record: int, records: np.ndarray) -> None:
        """Untimed write, bypassing the disk arm (for dataset setup)."""
        self.disk.storage.write(
            self.name, start_record * self.schema.record_bytes,
            self.schema.to_bytes(records))

    def read_all(self) -> np.ndarray:
        """Untimed read of the whole file (empty if the file is absent —
        a node with an empty partition never creates its output file)."""
        if not self.exists:
            return self.schema.empty(0)
        return self.peek(0, self.n_records)

    @property
    def n_records(self) -> int:
        """Current length in records."""
        return self.schema.nrecords(self.disk.size(self.name))

    @property
    def exists(self) -> bool:
        return self.disk.exists(self.name)

    def delete(self) -> None:
        self.disk.delete(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RecordFile {self.name!r}: {self.n_records} records>"
