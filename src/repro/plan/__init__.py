"""repro.plan: the static pipeline-graph compiler.

Runs between :class:`~repro.core.program.FGProgram` declaration and
``start()``: a shared graph IR (:mod:`repro.plan.ir`) that linter,
fingerprints, and tuner all consume; stage fusion
(:mod:`repro.plan.fuse`); geometry inference from the hardware cost
model (:mod:`repro.plan.geometry`); and serializable plan emission
(:mod:`repro.plan.plan`).  See docs/PLANNER.md.

This package is an import leaf: nothing here imports other ``repro``
modules at import time, so ``repro.check``, ``repro.prov``, and
``repro.tune`` can all depend on the IR without cycles.
"""

from repro.plan.fuse import fusable_runs, fuse_program
from repro.plan.geometry import (
    csort_s_candidates,
    dsort_block_candidates,
    dsort_pass_estimate,
    infer_pool_size,
)
from repro.plan.ir import PipelineIR, ProgramGraph, StageNode
from repro.plan.plan import Plan, PlanDecision, plan_sort

__all__ = [
    "PipelineIR",
    "Plan",
    "PlanDecision",
    "ProgramGraph",
    "StageNode",
    "csort_s_candidates",
    "dsort_block_candidates",
    "dsort_pass_estimate",
    "fusable_runs",
    "fuse_program",
    "infer_pool_size",
    "plan_sort",
]
