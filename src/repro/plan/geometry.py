"""Geometry inference: derive buffer geometry from the hardware model.

The hand-tuned defaults in ``repro.bench.harness`` encode folklore
("~4096-record blocks, pools of 4"); the offline tuner (PR 5) showed
that folklore leaves 17.9% (dsort) / 27.5% (csort) on the table at
benchmark scale.  This module re-derives the same knobs *analytically*
from :class:`~repro.cluster.hardware.HardwareModel` — the cost model the
simulator itself charges — so the planner can close that gap at zero
search cost.

Three rules, one per knob family:

* **Block size (dsort)** — each pass-1 block costs one read, one
  pipeline traversal, and one run write; pass 2 re-reads runs in
  vertical half-blocks and writes output stripes.  Per-operation disk
  overhead (:attr:`HardwareModel.disk_seek`) pushes blocks *up*; the
  pipeline-fill term (a deeper pipeline idles the disk for one block
  time per extra stage before overlap starts) pushes them *down*.
  :func:`dsort_pass_estimate` prices both and the planner takes the
  argmin over the same power-of-two candidate ladder the tuner searches.

* **Column count (csort)** — columnsort's shape constraint
  (``2*(s-1)^2 <= N/s``) yields few legal column counts; fewer, taller
  columns amortize per-operation overhead but leave each node too few
  columns to overlap its passes.  The planner picks the smallest legal
  ``s`` giving every node at least two columns per pass
  (``s >= 2 * n_nodes``) — one on the disk, one in the pipeline —
  falling back to the largest legal ``s`` when the shape constraint
  allows none.

* **Pool size and replicas (both sorts)** — a pipeline can only overlap
  as many buffers as it has *distinct resources* to keep busy: disk
  arm, CPU, NIC.  Pool size is therefore
  ``min(effective_depth, 3) + 1`` (the +1 keeps the source from
  starving while the deepest stage holds its buffer).  The sort stage
  is replicated only when its CPU cost per block exceeds the disk time
  that delivers the block — at the benchmark's disk-bound scale the
  model says one copy suffices, and the tuner's measurements agree.

Candidate ladders (:func:`dsort_block_candidates`,
:func:`csort_s_candidates`) are shared with ``repro.tune.sorters`` so
planner and tuner search the same space by construction.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.hardware import HardwareModel

__all__ = [
    "csort_s_candidates",
    "dsort_block_candidates",
    "dsort_pass_estimate",
    "infer_pool_size",
    "plan_csort_geometry",
    "plan_dsort_geometry",
]

#: distinct hardware resource classes a pipeline can keep busy at once
#: (disk arm, CPU, NIC) — the useful overlap width of any stage chain
RESOURCE_CLASSES = 3

#: declared stage-chain depths of the shipped sorters (send/recv
#: pipelines of dsort pass 1; the deepest csort pass, pass 3)
DSORT_PIPELINE_DEPTH = 3
CSORT_PIPELINE_DEPTH = 6

#: replication cap mirrored from the tuner's axis (repro.tune.sorters)
MAX_SORT_REPLICAS = 4


def _pow2_between(lo: int, hi: int) -> list[int]:
    out = []
    v = 1
    while v <= hi:
        if v >= lo:
            out.append(v)
        v *= 2
    return out


def dsort_block_candidates(n_nodes: int, n_per_node: int) -> tuple[int, ...]:
    """The pass-1 block-size ladder both planner and tuner consider:
    powers of two from ``max(64, n_per_node / 16)`` to ``n_per_node``,
    plus the hand-tuned default."""
    from repro.bench.harness import default_dsort_config

    n_total = n_nodes * n_per_node
    default = default_dsort_config(n_total, n_nodes)
    blocks = set(_pow2_between(max(64, n_per_node // 16), n_per_node))
    blocks.add(default.block_records)
    return tuple(sorted(blocks))


def csort_s_candidates(n_nodes: int, n_per_node: int) -> tuple[int, ...]:
    """Legal columnsort column counts both planner and tuner consider:
    multiples of the node count satisfying the height constraint
    ``2*(s-1)^2 <= N/s``, the shape validator, and run_csort's
    ``P * out_block <= r`` striping requirement."""
    from repro.bench.harness import default_csort_config
    from repro.sorting.columnsort.steps import (
        plan_columnsort,
        validate_shape,
    )

    n_total = n_nodes * n_per_node
    default = default_csort_config(n_total, n_nodes)
    plan = plan_columnsort(n_total, n_nodes)
    valid_s = []
    s = n_nodes
    while 2 * (s - 1) ** 2 <= n_total // max(s, 1):
        if n_total % s == 0:
            r = n_total // s
            try:
                validate_shape(n_total, r, s, n_nodes)
            except Exception:
                pass
            else:
                if default.out_block_records * n_nodes <= r:
                    valid_s.append(s)
        s += n_nodes
    if plan.s not in valid_s:
        valid_s.append(plan.s)
    return tuple(sorted(valid_s))


def infer_pool_size(depth: int) -> int:
    """Buffers for a pipeline of ``depth`` concurrent holders: enough to
    keep every distinct resource class busy, plus one in reserve so the
    source never starves."""
    return min(depth, RESOURCE_CLASSES) + 1


def _sort_replicas(hw: "HardwareModel", sort_records: int,
                   delivery_time: float) -> int:
    """Copies of the sort stage needed to keep up with disk delivery:
    one while CPU cost per unit stays under the disk time that delivers
    it, more (capped) once sorting becomes the bottleneck."""
    if delivery_time <= 0:
        return 1
    need = math.ceil(hw.sort_time(sort_records) / delivery_time)
    return max(1, min(MAX_SORT_REPLICAS, need))


def dsort_pass_estimate(block: int, n_nodes: int, n_per_node: int,
                        record_bytes: int, hw: "HardwareModel",
                        out_block: int) -> float:
    """Analytic per-node makespan of both dsort passes at block size
    ``block`` (seconds), under the disk-bound regime the benchmark runs
    in.

    Pass 1 is disk-serialized on each node: every block is read once
    and its run written once (``2 * ceil(per/B) * disk_time(B)``), plus
    a pipeline-fill penalty of one block-read per send-pipeline stage
    beyond the first — larger blocks idle the disk longer before
    overlap begins.  Pass 2 re-reads runs in vertical half-blocks under
    the merge's concurrent prefetch and writes output stripes, so only
    its transfer terms count.
    """
    per = n_per_node
    t_block = hw.disk_time(block * record_bytes)
    vertical = max(1, block // 2)
    pass1 = 2 * math.ceil(per / block) * t_block
    fill = (DSORT_PIPELINE_DEPTH - 1) * t_block
    pass2 = (math.ceil(per / vertical) * hw.disk_time(
                vertical * record_bytes)
             + math.ceil(per / out_block) * hw.disk_time(
                out_block * record_bytes))
    return pass1 + fill + pass2


def plan_dsort_geometry(n_nodes: int, n_per_node: int, record_bytes: int,
                        hw: "HardwareModel") -> tuple[dict, list[dict]]:
    """dsort geometry from the cost model: ``(config overrides,
    decision dicts)``."""
    from repro.bench.harness import stripe_block_records

    n_total = n_nodes * n_per_node
    out_block = stripe_block_records(n_total, n_nodes)
    candidates = dsort_block_candidates(n_nodes, n_per_node)
    costed = [(dsort_pass_estimate(b, n_nodes, n_per_node, record_bytes,
                                   hw, out_block), b)
              for b in candidates]
    est, block = min(costed)
    nbuffers = infer_pool_size(DSORT_PIPELINE_DEPTH)
    replicas = _sort_replicas(hw, block,
                              hw.disk_time(block * record_bytes))
    config = {"block_records": block, "nbuffers": nbuffers,
              "sort_replicas": replicas}
    decisions = [
        {"target": "block_records", "value": block,
         "reason": (f"argmin of the two-pass disk model over candidates "
                    f"{list(candidates)}: {est * 1e3:.3f} ms/node "
                    f"estimated (seek amortization vs pipeline fill)")},
        {"target": "buffer_bytes", "value": block * record_bytes,
         "reason": (f"{block} records x {record_bytes} B — one pass-1 "
                    "block per buffer")},
        {"target": "nbuffers", "value": nbuffers,
         "reason": (f"min(depth {DSORT_PIPELINE_DEPTH}, "
                    f"{RESOURCE_CLASSES} resource classes) + 1 reserve")},
        {"target": "sort_replicas", "value": replicas,
         "reason": (f"sort {hw.sort_time(block) * 1e3:.3f} ms/block vs "
                    f"disk {hw.disk_time(block * record_bytes) * 1e3:.3f}"
                    " ms/block: "
                    + ("disk-bound, one copy keeps up" if replicas == 1
                       else "sort-bound, replicate to match delivery"))},
        {"target": "channel_capacity", "value": None,
         "reason": ("pool-bounded already (nbuffers caps in-flight "
                    "buffers); bounding channels too risks FG108 "
                    "wait-for cycles for no extra backpressure")},
    ]
    return config, decisions


def plan_csort_geometry(n_nodes: int, n_per_node: int, record_bytes: int,
                        hw: "HardwareModel") -> tuple[dict, list[dict]]:
    """csort geometry from the cost model: ``(config overrides,
    decision dicts)``."""
    n_total = n_nodes * n_per_node
    candidates = csort_s_candidates(n_nodes, n_per_node)
    overlapping = [s for s in candidates if s >= 2 * n_nodes]
    if overlapping:
        s = min(overlapping)
        why = (f"smallest legal column count giving every node >= 2 "
               f"columns per pass (s >= 2P = {2 * n_nodes}): taller "
               "columns amortize per-op disk overhead, and two columns "
               "per node keep disk and pipeline overlapped")
    else:
        s = max(candidates)
        why = ("no legal column count reaches 2 columns/node; taking "
               "the largest legal s to maximize per-node overlap")
    r = n_total // s
    nbuffers = infer_pool_size(CSORT_PIPELINE_DEPTH)
    replicas = _sort_replicas(hw, r, hw.disk_time(r * record_bytes))
    config = {"s_override": s, "nbuffers": nbuffers,
              "sort_replicas": replicas}
    decisions = [
        {"target": "s_override", "value": s,
         "reason": f"{why}; candidates {list(candidates)}"},
        {"target": "buffer_bytes", "value": r * record_bytes,
         "reason": f"one column of r = {r} records x {record_bytes} B"},
        {"target": "nbuffers", "value": nbuffers,
         "reason": (f"min(depth {CSORT_PIPELINE_DEPTH} [pass 3], "
                    f"{RESOURCE_CLASSES} resource classes) + 1 reserve")},
        {"target": "sort_replicas", "value": replicas,
         "reason": (f"sort {hw.sort_time(r) * 1e3:.3f} ms/column vs "
                    f"disk {hw.disk_time(r * record_bytes) * 1e3:.3f} "
                    "ms/column: "
                    + ("disk-bound, one copy keeps up" if replicas == 1
                       else "sort-bound, replicate to match delivery"))},
        {"target": "channel_capacity", "value": None,
         "reason": ("pool-bounded already (nbuffers caps in-flight "
                    "buffers); bounding channels too risks FG108 "
                    "wait-for cycles for no extra backpressure")},
    ]
    return config, decisions
