"""Plan emission: the serializable output of the pipeline compiler.

:func:`plan_sort` runs geometry inference (:mod:`repro.plan.geometry`)
for one sorting benchmark and wraps the result in a :class:`Plan` — a
frozen, JSON-round-trippable value that travels three ways:

* ``run_sort(plan=...)`` applies its config overrides to the sorter's
  defaults and installs it on the run's kernel, where
  ``FGProgram.start()`` picks it up to fuse stages and stamp the program
  (so the structural fingerprint records *planned* structure);
* ``tune_sort(warm_start=plan)`` seeds the offline hill climb at the
  planned config instead of the hand-tuned default;
* the provenance record stores ``plan.to_json()``, so ``repro replay``
  re-applies the identical plan and planned runs replay byte-exactly.

:meth:`Plan.digest` hashes only the decision *outcome* (sorter, shape,
config, fuse flag) — not the prose reasons — so two planners that agree
on what to do produce the same digest.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.hardware import HardwareModel
    from repro.core.program import FGProgram

__all__ = ["Plan", "PlanDecision", "plan_sort"]


@dataclasses.dataclass(frozen=True)
class PlanDecision:
    """One planner choice: which knob, what value, and why."""

    target: str
    value: Any
    reason: str

    def to_json(self) -> dict[str, Any]:
        return {"target": self.target, "value": self.value,
                "reason": self.reason}


@dataclasses.dataclass(frozen=True)
class Plan:
    """A compiled execution plan for one sorting benchmark shape."""

    sorter: str
    n_nodes: int
    n_per_node: int
    record_bytes: int
    #: config overrides in ``run_sort(tune=...)`` field-name form
    config: dict[str, Any]
    #: fuse adjacent cheap map stages at ``FGProgram.start()``
    fuse: bool = True
    decisions: tuple[PlanDecision, ...] = ()

    def digest(self) -> str:
        """sha256 over the decision outcome (reasons excluded)."""
        from repro.prov.fingerprint import digest_json

        return digest_json({
            "sorter": self.sorter, "n_nodes": self.n_nodes,
            "n_per_node": self.n_per_node,
            "record_bytes": self.record_bytes,
            "config": dict(sorted(self.config.items())),
            "fuse": self.fuse,
        })

    def to_json(self) -> dict[str, Any]:
        return {
            "sorter": self.sorter,
            "n_nodes": self.n_nodes,
            "n_per_node": self.n_per_node,
            "record_bytes": self.record_bytes,
            "config": dict(sorted(self.config.items())),
            "fuse": self.fuse,
            "decisions": [d.to_json() for d in self.decisions],
            "digest": self.digest(),
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Plan":
        plan = cls(
            sorter=doc["sorter"], n_nodes=doc["n_nodes"],
            n_per_node=doc["n_per_node"],
            record_bytes=doc["record_bytes"],
            config=dict(doc["config"]), fuse=doc.get("fuse", True),
            decisions=tuple(
                PlanDecision(d["target"], d["value"], d["reason"])
                for d in doc.get("decisions", ())))
        want = doc.get("digest")
        if want is not None and want != plan.digest():
            from repro.errors import ReproError

            raise ReproError(
                f"plan digest mismatch: document says {want}, "
                f"reconstructed plan hashes to {plan.digest()} — the "
                "plan was edited after emission")
        return plan

    def explain(self) -> str:
        """Human-readable account of every decision."""
        head = (f"plan for {self.sorter} on {self.n_nodes} nodes x "
                f"{self.n_per_node} records/node "
                f"({self.record_bytes} B records)")
        lines = [head, f"  digest {self.digest()[:16]}…",
                 f"  stage fusion: {'on' if self.fuse else 'off'}"]
        for d in self.decisions:
            lines.append(f"  {d.target} = {d.value}")
            lines.append(f"      {d.reason}")
        return "\n".join(lines)

    # -- application -----------------------------------------------------------

    def install(self, kernel: Any) -> None:
        """Attach this plan to a kernel; every ``FGProgram.start()`` on
        that kernel will then :meth:`apply` it."""
        kernel.plan = self

    def apply(self, program: "FGProgram") -> None:
        """Compile one declared program: fuse its fusable stage runs (if
        enabled) and stamp it so its structural fingerprint carries this
        plan's digest.  Idempotent."""
        if self.fuse:
            from repro.plan.fuse import fuse_program

            fuse_program(program)
        program.applied_plan = self


def plan_sort(sorter: str, n_nodes: int, n_per_node: int,
              record_bytes: int = 16,
              hardware: Optional["HardwareModel"] = None,
              fuse: bool = True) -> Plan:
    """Compile a plan for one sorting benchmark shape.

    Pure static analysis over the hardware cost model — no cluster run,
    no search.  ``hardware`` defaults to the benchmark preset
    (:func:`repro.bench.harness.benchmark_hardware`), matching what
    ``run_sort`` will charge.
    """
    from repro.errors import ReproError
    from repro.plan.geometry import (
        plan_csort_geometry,
        plan_dsort_geometry,
    )

    if hardware is None:
        from repro.bench.harness import benchmark_hardware

        hardware = benchmark_hardware()
    if sorter in ("dsort", "dsort-linear"):
        config, decisions = plan_dsort_geometry(
            n_nodes, n_per_node, record_bytes, hardware)
    elif sorter == "csort":
        config, decisions = plan_csort_geometry(
            n_nodes, n_per_node, record_bytes, hardware)
    else:
        raise ReproError(f"no planner for sorter {sorter!r}; expected "
                         "'dsort', 'dsort-linear', or 'csort'")
    return Plan(sorter=sorter, n_nodes=n_nodes, n_per_node=n_per_node,
                record_bytes=record_bytes, config=config, fuse=fuse,
                decisions=tuple(PlanDecision(d["target"], d["value"],
                                             d["reason"])
                                for d in decisions))
