"""Stage fusion: collapse adjacent cheap map stages.

Every stage boundary costs a channel handoff — a ticketed enqueue, a
wake-up, and one more concurrent buffer holder the pool must cover.  For
a map stage that just transforms a buffer and passes it on, that
overhead buys nothing: two adjacent maps compute the same composition a
single stage would, only with an extra handoff between them.  TPIE's
pipeline compiler makes the same move before execution; here the planner
does it on the declared :class:`~repro.core.program.FGProgram` right
before ``start()``.

Fusion must never *reduce* overlap, so eligibility has two layers.

A stage is **structurally fusable** only when fusing cannot change
observable semantics:

* map style with a real ``fn`` (full-control stages own their own
  convey loop; source/sink drivers touch the pool),
* not virtual (virtual stages share one thread and an unbounded group
  queue across pipelines — fusing would change that sharing),
* not declared in the pipeline's ``replicas`` mapping, even with count
  one (replication rewires the stage onto a reorder channel +
  sequencer),
* owned by exactly one pipeline (intersecting stages are shared state),
* not conveying the caboose itself (EOS declarers interact with
  shutdown; detected through the same bytecode walk the linter uses).

A *run* of structurally fusable stages is then **profitably fusable**
only when its stages together touch at most one costed resource class
(disk, network, CPU — the same classes behind
:data:`repro.plan.geometry.RESOURCE_CLASSES`).  Keeping a disk-reading
stage separate from a sorting stage is the whole point of the pipeline:
the disk prefetches block *i+1* while the CPU sorts block *i*.  Fusing
them would serialize the two resources and cost exactly the overlap FG
exists to provide (measured: ~25% on csort).  A pure transform with no
resource signature (tagging, filtering, reshaping) fuses freely into a
neighbour of any class, and two stages on the *same* class fuse at zero
overlap cost — they were serialized on that resource anyway.

Resource signatures are read from the stage function's bytecode (the
method and global names its code can reach, closure-following like the
linter's EOS scan): ``read``/``write`` mark disk,
``send``/``recv``/``alltoall``-style names mark network, and
``compute``/``sort``-style names mark CPU.  The scan is deliberately
conservative — an unrecognized name costs nothing, and a false *heavy*
mark only forgoes a fusion, never breaks one.

A run additionally admits **at most one shared-state writer**
(:func:`repro.check.dataflow.classify_fn` == ``write_shared``): fusing
two stages that both mutate shared cells would change the order their
writes interleave with the stages between them.  A second writer starts
a new run, and lint rule FG112 flags any hand-built composition that
violates the same invariant.

Fused stages get a composed ``fn`` and a flattened ``fused_from`` tuple
recording the original names, so fusion is idempotent and the
provenance fingerprint distinguishes a fused program from its original.
The composition also carries its constituent functions as
``_fg_effect_parts``, so the effect analysis classifies a fused stage
from the union of its parts' effects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, FrozenSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram

__all__ = ["fusable_runs", "fuse_program", "resource_classes"]

#: bytecode names that mark a stage as touching the disk arm
_DISK_NAMES = frozenset({"read", "write", "disk_time", "disk"})
#: ... the network interface
_NET_NAMES = frozenset({"send", "recv", "alltoall", "sendrecv",
                        "exchange", "bcast", "gather", "scatter",
                        "wire_time"})
#: ... a meaningful slice of CPU (model-charged compute or sorting)
_CPU_NAMES = frozenset({"compute", "compute_sort", "compute_copy",
                        "sort", "sorted", "argsort", "merge",
                        "sort_time", "merge_time"})


def resource_classes(fn: Callable[..., Any]) -> FrozenSet[str]:
    """The costed resource classes ``fn``'s code can reach, as a subset
    of ``{"disk", "net", "cpu"}`` (empty = pure cheap transform)."""
    from repro.check.dataflow import reachable_names

    names = reachable_names(fn)
    classes = set()
    if names & _DISK_NAMES:
        classes.add("disk")
    if names & _NET_NAMES:
        classes.add("net")
    if names & _CPU_NAMES:
        classes.add("cpu")
    return frozenset(classes)


def _compose(f: Callable[..., Any],
             g: Callable[..., Any]) -> Callable[..., Any]:
    """Left-to-right composition with map-stage drop semantics: a stage
    returning None consumes the buffer, so the rest of the run is
    skipped for it."""

    def fused(ctx: Any, buf: Any) -> Any:
        out = f(ctx, buf)
        if out is None:
            return None
        return g(ctx, out)

    # effect-analysis stamp: a composition's body only *calls* f and g,
    # so the bytecode scan would see it as pure; record the constituent
    # functions (flattened through nested compositions) so
    # repro.check.dataflow classifies the fused stage from its parts
    parts: list[Callable[..., Any]] = []
    for part in (f, g):
        parts.extend(getattr(part, "_fg_effect_parts", None) or (part,))
    fused._fg_effect_parts = tuple(parts)  # type: ignore[attr-defined]
    return fused


def _shared_stage_ids(program: "FGProgram") -> set[int]:
    owners: dict[int, int] = {}
    for p in program.pipelines:
        seen: set[int] = set()
        for s in p.stages:
            key = id(s)
            if key in seen:
                continue
            seen.add(key)
            owners[key] = owners.get(key, 0) + 1
    return {key for key, count in owners.items() if count > 1}


def _is_structurally_fusable(stage: Any, pipeline: Any,
                             shared: set[int]) -> bool:
    from repro.check.linter import _stage_declares_eos

    if stage.style != "map" or stage.fn is None:
        return False
    if stage.virtual:
        return False
    if pipeline.replicas and stage.name in pipeline.replicas:
        return False
    if id(stage) in shared:
        return False
    if _stage_declares_eos(stage):
        return False
    return True


def _runs_of(program: "FGProgram") -> list[tuple[Any, list[Any]]]:
    """``(pipeline, [stages])`` for each maximal fusable run (length >= 2):
    consecutive structurally fusable stages whose combined resource
    signature stays within one class."""
    from repro.check.dataflow import WRITE_SHARED, classify_fn

    shared = _shared_stage_ids(program)
    runs: list[tuple[Any, list[Any]]] = []
    for p in program.pipelines:
        run: list[Any] = []
        classes: FrozenSet[str] = frozenset()
        writers = 0

        def flush(p: Any, run: list[Any]) -> None:
            if len(run) >= 2:
                runs.append((p, list(run)))

        for s in p.stages:
            if not _is_structurally_fusable(s, p, shared):
                flush(p, run)
                run, classes, writers = [], frozenset(), 0
                continue
            writes = classify_fn(s.fn) == WRITE_SHARED
            merged = classes | resource_classes(s.fn)
            if len(merged) > 1 or (writes and writers >= 1):
                # s would add a second resource class (fusing would
                # serialize two resources the pipeline overlaps) or a
                # second shared-state writer (fusing would change the
                # write interleaving — the FG112 purity guard)
                flush(p, run)
                run = [s]
                classes = resource_classes(s.fn)
                writers = 1 if writes else 0
                continue
            run.append(s)
            classes = merged
            writers += 1 if writes else 0
        flush(p, run)
    return runs


def fusable_runs(program: "FGProgram") -> list[tuple[str, tuple[str, ...]]]:
    """``(pipeline name, stage names)`` for each run
    :func:`fuse_program` would fuse, without mutating anything."""
    return [(p.name, tuple(s.name for s in run))
            for p, run in _runs_of(program)]


def fuse_program(program: "FGProgram") -> list[tuple[str, tuple[str, ...]]]:
    """Fuse every profitable run of adjacent map stages, in place.

    Returns the ``(pipeline name, original stage names)`` pairs that
    were fused.  Running it again on the result is a no-op: a fused
    stage has no fusable neighbour left, and ``fused_from`` is
    flattened rather than nested.
    """
    from repro.core.stage import Stage

    fused: list[tuple[str, tuple[str, ...]]] = []
    by_pipeline: dict[int, list[list[Any]]] = {}
    for p, run in _runs_of(program):
        by_pipeline.setdefault(id(p), []).append(run)
    for p in program.pipelines:
        runs = by_pipeline.get(id(p))
        if not runs:
            continue
        heads = {id(run[0]): run for run in runs}
        absorbed = {id(s) for run in runs for s in run[1:]}
        new_stages: list[Any] = []
        for s in p.stages:
            if id(s) in absorbed:
                continue
            run = heads.get(id(s))
            if run is None:
                new_stages.append(s)
                continue
            fn = run[0].fn
            for nxt in run[1:]:
                fn = _compose(fn, nxt.fn)
            origins: list[str] = []
            for st in run:
                origins.extend(st.fused_from or (st.name,))
            merged = Stage.map("+".join(st.name for st in run), fn)
            merged.fused_from = tuple(origins)
            new_stages.append(merged)
            fused.append((p.name, tuple(st.name for st in run)))
        p.stages[:] = new_stages
    return fused
