"""The shared pipeline-graph IR consumed by linter, planner, and prov.

Before this module existed, three subsystems each walked
:class:`~repro.core.program.FGProgram` internals on their own — the
FG101–FG109 linter, ``prov.fingerprint.program_graph``, and the tuner's
space builders — and drifted apart whenever the runtime grew a new
structural feature (PR 5's stage replication and dynamic pools being the
concrete casualties: FG101 and FG108 reasoned about a stage list that no
longer matched what the program actually spawns).

:class:`ProgramGraph` is the one walk.  It captures the *declared*
structure of a program — pipelines, stages with style / virtual-group /
replica annotations, channel capacities, buffer geometry, and the
intersecting-stage edges — plus the two pieces of structure that only
exist because of PR 5:

* the **replica-expanded depth** of a pipeline
  (:attr:`PipelineIR.effective_depth`): a stage declared with N replicas
  runs as N copies plus a sequencer, each a concurrent buffer holder;
* the **edge-wise channel model** (:meth:`PipelineIR.chain_parking`):
  each inter-stage edge knows its real capacity — the pipeline's bound,
  ``0`` for rendezvous, unbounded for virtual-group shared queues and
  the reorder channel behind a replicated stage.

Everything here is pure data over the declared program; nothing reads
runtime state except the dynamic-pool counters, which the program
accumulates precisely so that a grown pool fingerprints differently from
a declared one.  The canonical form (:meth:`ProgramGraph.canonical`) is
what ``prov.fingerprint.program_graph`` now returns.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import Pipeline
    from repro.core.program import FGProgram
    from repro.core.stage import Stage

__all__ = ["PipelineIR", "ProgramGraph", "StageNode"]


@dataclasses.dataclass(frozen=True)
class StageNode:
    """One stage as declared within one pipeline."""

    name: str
    style: str
    virtual: bool
    virtual_group: Optional[str]
    #: declared in the pipeline's ``replicas`` mapping (count 1 included:
    #: it still wires the sequencer and the unbounded reorder channel)
    replicated: bool
    replica_count: int
    #: original stage names this stage was fused from (planner output)
    fused_from: tuple[str, ...]
    #: the underlying Stage object — identity for intersection analysis,
    #: ``fn`` for the linter's bytecode rules; never part of canonical()
    stage: Any = dataclasses.field(compare=False, repr=False)
    #: parallel-safety verdict of the stage function —
    #: ``"pure"`` / ``"read_shared"`` / ``"write_shared"``
    #: (:func:`repro.check.dataflow.classify_fn`); None when the stage
    #: has no function to classify.  Part of canonical(), so the
    #: provenance fingerprint pins the verdict a parallel backend would
    #: schedule by.
    parallel_safety: Optional[str] = None

    def canonical(self) -> dict[str, Any]:
        entry: dict[str, Any] = {"name": self.name, "style": self.style}
        if self.virtual:
            entry["virtual_group"] = self.virtual_group
        if self.replicated:
            entry["replicas"] = self.replica_count
        if self.fused_from:
            entry["fused_from"] = list(self.fused_from)
        if self.parallel_safety is not None:
            entry["parallel_safety"] = self.parallel_safety
        return entry


@dataclasses.dataclass
class PipelineIR:
    """One pipeline: its stage chain, pool geometry, and channel bounds."""

    name: str
    stages: list[StageNode]
    nbuffers: int
    buffer_bytes: int
    rounds: Optional[int]
    aux_buffers: bool
    channel_capacity: Optional[int]
    #: buffers added / scheduled out of circulation since start
    #: (:meth:`FGProgram.add_buffers` / ``retire_buffers``) — dynamic-pool
    #: state that must be part of the structural identity
    pool_grown: int = 0
    pool_retired: int = 0
    #: recovery-manager annotation ("backup" / "adopted"); None for
    #: ordinary pipelines, and omitted from canonical() when None so
    #: pre-recovery fingerprints are unchanged
    role: Optional[str] = None
    #: the underlying Pipeline object (never part of canonical())
    pipeline: Any = dataclasses.field(default=None, repr=False)

    @property
    def effective_depth(self) -> int:
        """Concurrent buffer holders in the replica-expanded pipeline.

        A plain stage holds one buffer.  A stage declared with N replicas
        expands to N copies plus an order-restoring sequencer — N + 1
        holders where the declared list shows one.  FG101 sizes pools
        against this, not against ``len(stages)``.
        """
        depth = len(self.stages)
        for node in self.stages:
            if node.replicated:
                depth += node.replica_count
        return depth

    def index_of(self, stage: Any) -> int:
        """Position of the underlying stage object (by identity)."""
        for i, node in enumerate(self.stages):
            if node.stage is stage:
                return i
        raise ValueError(
            f"stage {getattr(stage, 'name', stage)!r} is not in "
            f"pipeline {self.name!r}")

    def edge_capacity(self, pos: int) -> Optional[int]:
        """Capacity of the channel feeding ``stages[pos]``; None means
        unbounded (it can absorb any number of parked buffers).

        Assembly gives a virtual stage its group's shared queue and a
        replicated stage an unbounded reorder channel toward its
        sequencer — both unbounded regardless of the pipeline's
        ``channel_capacity``, which is what the pre-IR FG108 analysis
        missed.
        """
        node = self.stages[pos]
        if node.virtual:
            return None
        if pos > 0 and self.stages[pos - 1].replicated:
            return None
        return self.channel_capacity

    def chain_parking(self, spos: int, tpos: int) -> Optional[int]:
        """Buffers the channel chain + intermediate stages between two
        stage positions can absorb, or None when any edge is unbounded.

        Walks the chain edge by edge: each bounded edge parks its
        capacity (a capacity-0 rendezvous edge parks nothing — the
        producer stays blocked *holding* its buffer), and each
        intermediate stage holds its replica-expanded count of buffers
        while working.
        """
        total = 0
        for pos in range(spos + 1, tpos + 1):
            cap = self.edge_capacity(pos)
            if cap is None:
                return None
            total += cap
            if pos < tpos:
                node = self.stages[pos]
                total += node.replica_count if node.replicated else 1
        return total

    def canonical(self) -> dict[str, Any]:
        doc = {
            "name": self.name,
            "stages": [node.canonical() for node in self.stages],
            "nbuffers": self.nbuffers,
            "buffer_bytes": self.buffer_bytes,
            "rounds": self.rounds,
            "aux_buffers": self.aux_buffers,
            "channel_capacity": self.channel_capacity,
            "pool_grown": self.pool_grown,
            "pool_retired": self.pool_retired,
        }
        if self.role is not None:
            doc["role"] = self.role
        return doc


@dataclasses.dataclass
class ProgramGraph:
    """The declared structure of one FG program, as shared IR."""

    name: str
    pipelines: list[PipelineIR]
    #: digest of the applied :class:`~repro.plan.plan.Plan` (None when
    #: the program was assembled without a planner pass)
    plan_digest: Optional[str] = None

    @classmethod
    def from_program(cls, program: "FGProgram") -> "ProgramGraph":
        """Build the IR from a (started or not) FGProgram.

        Duck-typed on purpose: this module imports nothing from
        ``repro.core`` at runtime, so the linter, the planner, and the
        fingerprints can all depend on it without import cycles.
        """
        # lazy on purpose: dataflow lives in repro.check, which imports
        # this module — the verdict flows IR <- dataflow, rules flow
        # linter <- IR
        from repro.check.dataflow import classify_fn

        pipelines: list[PipelineIR] = []
        pool_deltas = getattr(program, "pool_deltas", None)
        for p in program.pipelines:
            nodes = [StageNode(
                name=s.name, style=s.style, virtual=s.virtual,
                virtual_group=s.virtual_group,
                replicated=p.is_replicated(s),
                replica_count=p.replica_count(s),
                fused_from=tuple(getattr(s, "fused_from", ()) or ()),
                stage=s,
                parallel_safety=classify_fn(s.fn, style=s.style))
                for s in p.stages]
            grown, retired = (0, 0) if pool_deltas is None else pool_deltas(p)
            pipelines.append(PipelineIR(
                name=p.name, stages=nodes, nbuffers=p.nbuffers,
                buffer_bytes=p.buffer_bytes, rounds=p.rounds,
                aux_buffers=p.aux_buffers,
                channel_capacity=p.channel_capacity,
                pool_grown=grown, pool_retired=retired,
                role=getattr(p, "role", None), pipeline=p))
        applied = getattr(program, "applied_plan", None)
        digest = applied.digest() if applied is not None else None
        return cls(name=program.name, pipelines=pipelines,
                   plan_digest=digest)

    def intersections(self) -> list[tuple[Any, list[PipelineIR]]]:
        """Stages shared (by identity) across pipelines — the
        intersecting-stage edges of the program graph.

        Returns ``(stage object, [owning PipelineIRs])`` pairs in
        first-appearance order, only for stages owned by more than one
        pipeline.
        """
        owners: dict[int, tuple[Any, list[PipelineIR]]] = {}
        order: list[int] = []
        for p in self.pipelines:
            for node in p.stages:
                key = id(node.stage)
                if key not in owners:
                    owners[key] = (node.stage, [])
                    order.append(key)
                if p not in owners[key][1]:
                    owners[key][1].append(p)
        return [owners[key] for key in order if len(owners[key][1]) > 1]

    def canonical(self) -> dict[str, Any]:
        """The canonical pure-data form — the single source for
        :func:`repro.prov.fingerprint.program_graph` and every structural
        digest."""
        shared = sorted(
            [[stage.name, sorted(p.name for p in pipes)]
             for stage, pipes in self.intersections()],
            key=lambda entry: (entry[0], entry[1]))
        return {
            "name": self.name,
            "pipelines": [p.canonical() for p in self.pipelines],
            "intersections": shared,
            "plan": self.plan_digest,
        }

    def fingerprint(self) -> str:
        """sha256 of :meth:`canonical` in canonical JSON."""
        from repro.prov.fingerprint import digest_json

        return digest_json(self.canonical())
