"""FG programming environment, reproduced in Python.

``repro`` is a production-style reproduction of the FG ("effigy")
programming environment: a framework that mitigates disk-I/O and
interprocessor-communication latency by structuring programs as
coarse-grained software pipelines whose stages run asynchronously and pass
fixed-size buffers through queues.  On top of FG it implements the paper's
complete evaluation stack: a simulated distributed-memory cluster, a
Parallel-Disk-Model file layer, out-of-core columnsort (csort), and
out-of-core distribution sort (dsort) using FG's multiple-pipeline
extensions.

Quick start::

    from repro import VirtualTimeKernel, Pipeline, Stage, FGProgram

See README.md for the architecture overview and examples/ for runnable
programs.
"""

from repro._version import __version__
from repro.errors import (
    FaultInjected,
    PipelineFailed,
    ReproError,
    RetryExhausted,
)
from repro.sim import (
    Channel,
    Kernel,
    Process,
    RealTimeKernel,
    Resource,
    VirtualTimeKernel,
)

__all__ = [
    "__version__",
    "ReproError",
    "FaultInjected",
    "RetryExhausted",
    "PipelineFailed",
    "Kernel",
    "Process",
    "Channel",
    "Resource",
    "VirtualTimeKernel",
    "RealTimeKernel",
]
