"""Recovery policies: what the recovery manager is allowed to do.

A :class:`RecoverPolicy` enables up to three fine-grained mechanisms,
each strictly opt-in so a run without a policy behaves byte-identically
to the pre-recovery code:

* **checkpoint** — journal every durable unit of pass work (pass-1 run
  files, pass-2 output stripe pieces) in a write-ahead manifest, so a
  retried pass resumes from the last durable block instead of starting
  over;
* **backup_runs** — replicate each pass-1 run file onto a buddy node's
  disk as it is written, the durable substrate both speculation and
  re-assignment merge from;
* **reassign** — on a node crash mid-pass-2, re-stripe the dead rank's
  output partitions across the survivors and merge its runs from the
  buddy's backups, re-running only blocks that never became durable;
* **speculation** — watch per-rank merge progress and race a backup
  merge of a straggler's partition range on its buddy's spare core
  (:class:`SpeculationPolicy`).

Both dataclasses are frozen and JSON round-trippable: the chaos harness
records the active policy in provenance ``args``, and replay rebuilds it
with :meth:`RecoverPolicy.from_json`, so recovery decisions are part of
the byte-exact replay contract.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.errors import FaultError

__all__ = ["RecoverPolicy", "SpeculationPolicy"]


@dataclasses.dataclass(frozen=True)
class SpeculationPolicy:
    """When to launch a backup merge for a straggling rank.

    The manager samples every rank's ``recovery.progress.<rank>`` gauge
    (fraction of its pass-2 partition range merged) every ``interval``
    kernel seconds.  A rank is *lagging* when its progress falls below
    ``lag_ratio`` times the median progress while the median itself has
    cleared ``min_progress`` (so nobody speculates during startup).
    After ``patience`` consecutive lagging samples the manager opens the
    rank's speculation gate and the backup merge parked on its buddy
    starts racing it; first contender to finish the range wins.
    """

    #: kernel seconds between progress samples
    interval: float = 0.05
    #: consecutive lagging samples before the backup is released
    patience: int = 2
    #: lagging means progress < lag_ratio * median(progress)
    lag_ratio: float = 0.5
    #: no speculation until the median progress reaches this fraction
    min_progress: float = 0.05

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise FaultError("speculation interval must be > 0")
        if self.patience < 1:
            raise FaultError("speculation patience must be >= 1")
        if not 0 < self.lag_ratio < 1:
            raise FaultError("speculation lag_ratio must be in (0, 1)")
        if not 0 <= self.min_progress < 1:
            raise FaultError("speculation min_progress must be in [0, 1)")

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "SpeculationPolicy":
        return cls(**doc)


@dataclasses.dataclass(frozen=True)
class RecoverPolicy:
    """Which recovery mechanisms a run may use (all off by default)."""

    #: journal runs / output pieces and resume retried passes from them
    checkpoint: bool = True
    #: replicate pass-1 runs to the buddy node (rank + 1 mod P)
    backup_runs: bool = False
    #: survive a node crash in pass 2 by re-striping over the survivors
    reassign: bool = False
    #: race backup merges against stragglers (needs backup_runs)
    speculation: Optional[SpeculationPolicy] = None
    #: polling period of the manager's control loops (kernel seconds);
    #: control polls are out-of-band and cost no modeled resources, the
    #: tick only discretizes when decisions can happen
    tick: float = 1e-3
    #: journal flush batching: durable facts are appended every this
    #: many units (runs / pieces), trading up to N-1 re-done blocks
    #: after a crash for N-fold fewer journal seeks during the run
    journal_every: int = 8

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise FaultError("recovery tick must be > 0")
        if self.journal_every < 1:
            raise FaultError("journal_every must be >= 1")
        if self.reassign and not self.backup_runs:
            raise FaultError(
                "reassign needs backup_runs: survivors can only merge a "
                "dead rank's partitions from its backup run files")
        if self.speculation is not None and not self.backup_runs:
            raise FaultError(
                "speculation needs backup_runs: the backup merge reads "
                "the straggler's runs from its buddy's disk")

    def to_json(self) -> dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["speculation"] = (self.speculation.to_json()
                              if self.speculation is not None else None)
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "RecoverPolicy":
        doc = dict(doc)
        spec = doc.pop("speculation", None)
        return cls(speculation=SpeculationPolicy.from_json(spec)
                   if spec is not None else None, **doc)
