"""The recovery manager: fine-grained fault recovery for dsort.

:class:`RecoveryManager` sits between the fault injector and the sorter
the way the injector sits between the plan and the cluster: it is a
harness-level *control plane*.  Its polls, gates, and bookkeeping move no
modeled bytes and charge no modeled seconds — every piece of **data**
recovery touches (run files, backups, journals, output stripes) still
flows through the timed disk and network models and remains subject to
fault injection.

One manager instance is shared by all ranks of a run.  It provides:

* **death detection** — the injector's crash schedule is a pure function
  of virtual time, so :meth:`is_dead` is an oracle; a watchdog process
  notices deaths the tick they happen and *compensates* in-flight passes
  by injecting end-of-stream markers through each survivor's loopback
  channel (loopback skips the NIC and cannot fault), so no receive stage
  ever blocks forever on a rank that will never send again;
* **dead-tolerant synchronization** — :meth:`sync_point` replaces the
  collectives a crashed rank would wedge (``comm.barrier`` gathers to
  rank 0); a sync point waits only for ranks that are still alive;
* **speculation** — a watcher samples per-rank merge progress gauges and
  opens a straggler's :meth:`backup_wait` gate after a policy-defined
  streak of lagging samples; :meth:`range_complete` decides the race
  (first contender wins, exactly once);
* **re-assignment epochs** — :meth:`enter_epoch` retires dead ranks,
  assigns each dead rank's partition range to its backup buddy, and
  re-stripes the output over the survivors (:meth:`output_owners`);
* **a decision log** — every recovery decision is a ``recovery.*``
  counter, a ``recover`` trace instant, and an entry in
  :meth:`decision_log`, which the chaos harness stores in provenance so
  faulted runs replay byte-exactly, decisions included.

Everything the manager does is deterministic: polls advance in fixed
ticks of virtual time, state transitions depend only on virtual time and
on the order rank processes reach their own deterministic code, and the
kernel serializes all of it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional, Sequence

from repro.errors import ReproError, SortError
from repro.recover.policy import RecoverPolicy
from repro.sim.trace import RECOVER

__all__ = ["NodeDied", "RecoveryDecision", "RecoveryManager"]


class NodeDied(ReproError):
    """Raised in a rank's top-level SPMD code once its node has crashed.

    Not a failure of the *run*: the driver catches it and returns a
    ``dead`` report for the rank while the survivors finish.
    """


@dataclasses.dataclass(frozen=True)
class RecoveryDecision:
    """One recovery decision, as recorded in provenance."""

    time: float
    kind: str
    rank: int
    detail: str = ""

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class RecoveryManager:
    """Shared control plane for one recovering dsort run."""

    def __init__(self, cluster, policy: Optional[RecoverPolicy] = None):
        self.cluster = cluster
        self.policy = policy if policy is not None else RecoverPolicy()
        self.kernel = cluster.kernel
        self.injector = cluster.injector
        n = cluster.n_nodes
        self.decisions: list[RecoveryDecision] = []
        self._resolved: dict[str, Any] = {}
        #: current epoch's participating ranks, in stripe order
        self.alive: list[int] = list(range(n))
        self.epoch = 0
        self._done: set[int] = set()
        self._sync: dict[str, dict[int, Any]] = {}
        # durable state published by ranks during resume:
        #   dst -> {(src rank, pass-1 block)} fragments dst holds durably
        self._durable_frags: dict[int, set[tuple[int, int]]] = {}
        #   owner -> {run index -> (segment file, start record, records)}
        self._backup_runs: dict[int, dict[int, tuple[str, int, int]]] = {}
        #   owner -> {(global block, offset)} output pieces already written
        self._durable_pieces: dict[int, set[tuple[int, int]]] = {}
        # in-flight pass (set by pass_begin/pass_end): the watchdog needs
        # the tag + producer->host map to compensate for deaths
        self._active: Optional[dict[str, Any]] = None
        self._compensated: set[tuple[str, int]] = set()
        # speculation state: gates opened, races decided
        self._gate: set[int] = set()
        self._winner: dict[int, str] = {}
        self._streak: dict[int, int] = {}
        self._next_watch = 0.0
        # re-assignment state
        self._adopters: dict[int, int] = {}
        self._epoch_entered: set[tuple[int, tuple[int, ...]]] = set()
        self._abort: Optional[str] = None
        self._proc = None

    # -- liveness ------------------------------------------------------------

    def is_dead(self, rank: int) -> bool:
        """Crash oracle: the injector's schedule is pure virtual time."""
        return self.injector is not None and self.injector.crashed(rank)

    def dead_ranks(self) -> list[int]:
        return [r for r in range(self.cluster.n_nodes) if self.is_dead(r)]

    def alive_now(self) -> list[int]:
        """Current epoch's ranks that are still alive, in stripe order."""
        return [r for r in self.alive if not self.is_dead(r)]

    def buddy(self, rank: int) -> int:
        """The node holding ``rank``'s backup runs (fixed at pass-1 time)."""
        return (rank + 1) % self.cluster.n_nodes

    # -- decision log --------------------------------------------------------

    def decide(self, kind: str, rank: int, detail: str = "") -> None:
        """Record one recovery decision (counter + trace instant + log)."""
        t = self.kernel.now()
        self.decisions.append(RecoveryDecision(t, kind, rank, detail))
        metrics = getattr(self.kernel, "metrics", None)
        if metrics is not None:
            metrics.counter(f"recovery.{kind}",
                            help="recovery decisions by kind").inc()
        tracer = getattr(self.kernel, "tracer", None)
        if tracer is not None:
            text = f"{kind} rank={rank}" + (f": {detail}" if detail else "")
            tracer.record(t, "recover.manager", RECOVER, text)

    def decision_log(self) -> list[dict[str, Any]]:
        return [d.to_json() for d in self.decisions]

    # -- dead-tolerant synchronization ---------------------------------------

    def sync_point(self, name: str, rank: int, value: Any,
                   drain: Optional[Callable[[], None]] = None
                   ) -> dict[int, Any]:
        """Contribute ``value`` and wait for every *live* rank's value.

        The recovery replacement for ``comm.allgather``: a crashed rank
        is dropped from the wait set the tick it dies, so survivors
        never wedge on it.  Returns the full slot (crashed ranks that
        contributed before dying included).  Deterministic: the slot
        only grows, the wait set only shrinks, and every live rank has
        contributed before any rank returns.

        ``drain`` runs once per wait iteration while the slot is still
        incomplete.  A rank whose pass attempt failed passes a mailbox
        drain here: its receive pipeline is gone, and under bounded
        mailboxes a peer mid-attempt would otherwise block forever
        reserving space this rank no longer frees.  Incomplete-slot
        iterations only — once every rank contributed, a peer may
        already have restarted, and its fresh messages must survive.
        """
        slot = self._sync.setdefault(name, {})
        slot[rank] = value
        while not all(r in slot for r in self.alive if not self.is_dead(r)):
            if drain is not None:
                drain()
            self.kernel.sleep(self.policy.tick)
        return dict(slot)

    def barrier(self, name: str, rank: int) -> None:
        """A dead-tolerant barrier (a sync point that carries no value)."""
        self.sync_point(name, rank, True)

    def resolve(self, name: str, fn) -> Any:
        """Compute-once agreement: the first caller stores ``fn()``'s
        result under ``name``; every later caller reads the stored copy.

        The crash oracle is a function of virtual time, so two ranks
        evaluating "who just died?" a tick apart can disagree — and a
        control-flow decision they disagree on (retry or not?) wedges
        the cluster.  Ranks instead resolve such decisions through this
        method right after a sync point: whoever the kernel happens to
        wake first decides for everyone, deterministically.
        """
        if name not in self._resolved:
            self._resolved[name] = fn()
        return self._resolved[name]

    # -- watchdog + speculation watcher --------------------------------------

    def start(self) -> None:
        """Spawn the manager's control process (idempotent)."""
        if self._proc is None:
            self._proc = self.kernel.spawn(self._run, name="recover.manager")

    def _run(self) -> None:
        n = self.cluster.n_nodes
        while len(self._done) < n:
            if self._active is not None:
                self._compensate_deaths()
                if self._active is not None and self._active["speculative"]:
                    self._watch_stragglers()
            self.kernel.sleep(self.policy.tick)

    def pass_begin(self, pass_id: str, tag: int, producers: dict[str, int],
                   schema, speculative: bool = False) -> None:
        """Arm the watchdog for one pass attempt (idempotent per id).

        ``producers`` maps logical producer ids (the ``producer`` field
        of end-marker metadata) to the rank hosting each one; the
        watchdog replays exactly the end markers a dead host can no
        longer send.
        """
        if self._active is not None and self._active["id"] == pass_id:
            return
        self._active = {"id": pass_id, "tag": tag,
                        "producers": dict(producers), "schema": schema,
                        "speculative": bool(speculative)}

    def pass_end(self, pass_id: Optional[str] = None) -> None:
        """Disarm the watchdog (``None`` disarms whatever is active).

        Only call this behind a cluster-wide sync: every live rank must
        have finished the attempt, or a straggler's receive stage loses
        its death compensation.
        """
        if self._active is not None and (pass_id is None
                                         or self._active["id"] == pass_id):
            self._active = None

    def _compensate_deaths(self) -> None:
        act = self._active
        assert act is not None
        for d in self.dead_ranks():
            key = (act["id"], d)
            if key in self._compensated:
                continue
            self._compensated.add(key)
            self.decide("node_dead", d, f"during {act['id']}")
            hosted = sorted(pid for pid, host in act["producers"].items()
                            if host == d)
            schema, tag = act["schema"], act["tag"]
            # unblock every survivor: markers the dead host will never
            # send, injected through each receiver's own loopback
            # channel (src == dst skips the NIC entirely — the
            # compensation path cannot itself fault or stall)
            for pid in hosted:
                for s in range(self.cluster.n_nodes):
                    if s == d or self.is_dead(s):
                        continue
                    self.cluster.comms[s].send(s, schema.empty(0), tag=tag,
                                               meta={"producer": pid})
            # and unblock the dead rank itself: survivors skip sends to
            # a dead destination, so without these its receive stage
            # would wait forever and its process would never wind down
            for pid in sorted(act["producers"]):
                self.cluster.comms[d].send(d, schema.empty(0), tag=tag,
                                           meta={"producer": pid})

    def _watch_stragglers(self) -> None:
        spec = self.policy.speculation
        metrics = getattr(self.kernel, "metrics", None)
        if spec is None or metrics is None:
            return
        now = self.kernel.now()
        if now < self._next_watch:
            return
        self._next_watch = now + spec.interval
        progress = {r: metrics.gauge(f"recovery.progress.{r}").value
                    for r in self.alive_now()}
        if not progress:
            return
        levels = sorted(progress.values())
        median = levels[len(levels) // 2]
        if median < spec.min_progress:
            return
        for r, p in sorted(progress.items()):
            if r in self._gate or r in self._winner or p >= 1.0:
                continue
            if p < spec.lag_ratio * median:
                self._streak[r] = self._streak.get(r, 0) + 1
                if self._streak[r] >= spec.patience:
                    self._gate.add(r)
                    self.decide("speculate", r,
                                f"progress {p:.2f} vs median {median:.2f}")
            else:
                self._streak[r] = 0

    # -- the speculation race ------------------------------------------------

    def backup_wait(self, rank: int) -> str:
        """Park a backup merge until its fate is known.

        Returns ``"activate"`` when the watcher opened ``rank``'s gate
        (race the primary) or ``"standdown"`` when the primary already
        won or crashed (a crash is the re-assignment mechanism's job —
        the epoch restart merges from the same backups with a clean
        survivor striping).
        """
        while True:
            if rank in self._winner or self.is_dead(rank):
                return "standdown"
            if rank in self._gate:
                return "activate"
            self.kernel.sleep(self.policy.tick)

    def range_complete(self, rank: int, contender: str) -> bool:
        """First contender to merge ``rank``'s range wins, exactly once."""
        if rank in self._winner:
            return self._winner[rank] == contender
        self._winner[rank] = contender
        who = "primary" if contender == "p" else "backup"
        self.decide("winner", rank, f"{who} finished the range first")
        return True

    def winner_of(self, rank: int) -> Optional[str]:
        return self._winner.get(rank)

    def reset_speculation(self) -> None:
        """Void all race state between pass attempts.

        Without this, a backup that won a range in an attempt that then
        failed for an unrelated reason would make the retried primary
        lose the race forever.  Safe to call between attempts only: the
        pass is not active, so the watcher cannot re-gate mid-reset.
        """
        self._winner = {}
        self._gate = set()
        self._streak = {}

    # -- durable-state registry (published during resume) --------------------

    def publish_durable_frags(self, dst: int,
                              keys: Sequence[tuple[int, int]]) -> None:
        """``dst`` holds these pass-1 ``(src, block)`` fragments durably."""
        self._durable_frags.setdefault(dst, set()).update(
            (int(s), int(b)) for s, b in keys)

    def durable_frags(self, dst: int) -> set[tuple[int, int]]:
        return self._durable_frags.get(dst, set())

    def publish_backup_run(self, owner: int, index: int, name: str,
                           start: int, records: int) -> None:
        """Run ``index`` of ``owner`` is durable in backup segment
        ``name`` at record offset ``start`` (runs are batched into
        segment files so replication costs one disk seek per batch,
        not one per run)."""
        self._backup_runs.setdefault(owner, {})[index] = (name, start,
                                                          records)

    def backup_runs_of(self, owner: int) -> list[tuple[str, int, int]]:
        """(segment file, start record, records) of ``owner``'s backed-up
        runs, in run order."""
        runs = self._backup_runs.get(owner, {})
        return [runs[k] for k in sorted(runs)]

    def publish_durable_pieces(self, owner: int,
                               pieces: Sequence[tuple[int, int]]) -> None:
        """``owner`` wrote these output ``(block, offset)`` pieces durably
        under the *current* epoch's striping."""
        self._durable_pieces.setdefault(owner, set()).update(
            (int(b), int(o)) for b, o in pieces)

    def durable_pieces(self) -> dict[int, set[tuple[int, int]]]:
        return {r: set(p) for r, p in self._durable_pieces.items()}

    # -- re-assignment epochs ------------------------------------------------

    def enter_epoch(self, rank: int) -> None:
        """Retire newly dead ranks and re-stripe over the survivors.

        Called by every surviving rank after a failed pass-2 attempt;
        the first caller performs the transition, the rest observe it
        (the dead set is empty on their recomputation).  Requires the
        ``reassign`` policy; a crash the policy cannot absorb — no
        backups, or a dead rank whose buddy also died — sets the abort
        reason every rank raises from :meth:`check_abort`.
        """
        dead = sorted(r for r in self.alive if self.is_dead(r))
        key = (self.epoch, tuple(dead))
        if key in self._epoch_entered or not dead:
            return
        self._epoch_entered.add(key)
        if not (self.policy.backup_runs and self.policy.reassign):
            self._abort = (f"node {dead[0]} crashed and the policy has no "
                           "reassign mechanism")
            return
        for d, a in self._adopters.items():
            if a in dead:
                self._abort = (f"node {a} crashed while holding node {d}'s "
                               "adopted backups; the runs are gone")
                return
        for d in dead:
            adopter = self.buddy(d)
            if self.is_dead(adopter):
                self._abort = (f"node {d} and its backup host {adopter} "
                               "both crashed; the runs are gone")
                return
            self._adopters[d] = adopter
            self.decide("reassign", d,
                        f"partitions adopted by node {adopter}")
        self.epoch += 1
        self.alive = [r for r in self.alive if r not in dead]
        # the old epoch's striping is void: winners, gates, and durable
        # pieces all referred to it
        self._durable_pieces = {}
        self._winner = {}
        self._gate = set()
        self._streak = {}

    def adopters(self) -> dict[int, int]:
        """dead rank -> surviving rank merging its partitions."""
        return dict(self._adopters)

    def check_abort(self) -> None:
        if self._abort is not None:
            raise SortError(f"recovery aborted: {self._abort}")

    def output_owners(self) -> Optional[list[int]]:
        """Stripe layout of the final output: ``None`` for the full
        cluster (no epoch change), else the survivors in stripe order."""
        return None if self.epoch == 0 else list(self.alive)

    # -- lifecycle -----------------------------------------------------------

    def node_done(self, rank: int) -> None:
        """Rank ``rank``'s SPMD main returned (or died cleanly)."""
        self._done.add(rank)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RecoveryManager epoch={self.epoch} alive={self.alive} "
                f"decisions={len(self.decisions)}>")
