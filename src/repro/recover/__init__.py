"""Fine-grained recovery: checkpoints, speculation, re-assignment.

``repro.recover`` makes a faulted dsort run finish almost as fast as a
clean one.  Where the pre-existing recovery story was coarse — a pass
that fails anywhere restarts everywhere — the
:class:`~repro.recover.manager.RecoveryManager` drives three
fine-grained, policy-gated mechanisms (:class:`RecoverPolicy`):

* **block-level checkpointing** — write-ahead journals
  (:class:`repro.pdm.Journal`) record every durable run file and output
  stripe piece; a retried pass resumes from the last durable block;
* **speculative backup execution** — a progress watcher races a backup
  merge of a straggler's partition range on its buddy's spare core;
  first to finish wins, the loser drains through the normal FG teardown;
* **partition re-assignment** — a node crash mid-pass-2 re-stripes the
  dead rank's partitions over the survivors, merging from backup runs
  and re-running only blocks that never became durable.

Every decision is a ``recovery.*`` metric, a ``recover`` trace instant,
and a provenance log entry, so chaos runs replay byte-exactly.  See
docs/ROBUSTNESS.md.
"""

from repro.recover.manager import NodeDied, RecoveryDecision, RecoveryManager
from repro.recover.policy import RecoverPolicy, SpeculationPolicy

__all__ = [
    "NodeDied",
    "RecoverPolicy",
    "RecoveryDecision",
    "RecoveryManager",
    "SpeculationPolicy",
]
