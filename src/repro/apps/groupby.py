"""Distribution-based out-of-core aggregation (a Section-VIII application).

Group-by-key with summation over a dataset too large for memory: the
other classic distribution-based computation.  The structure deliberately
reuses both of dsort's pipeline regimes:

* **pass 1** — disjoint send/receive pipelines: read local (key, value)
  records, route each record to ``hash(key) mod P``, and on the receive
  side *pre-aggregate* each buffer (combine equal keys) before sorting
  and writing it as a run — so heavy-hitter keys shrink immediately;
* **pass 2** — virtual vertical pipelines intersecting a combining merge
  stage: the k-way merge emits each distinct key once with the sum of all
  its values, writing the node-local aggregate file.

Every key hashes to exactly one node, so no cross-node combining is
needed; the concatenation of per-node outputs is the full group-by
result (keys sorted within a node).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.merge import BlockMerger

__all__ = ["KeyValueSchema", "GroupByReport", "run_groupby",
           "GroupByConfig"]

TAG_GROUPBY = 51


class KeyValueSchema(RecordSchema):
    """16-byte records of (key: u64, value: u64)."""

    def __init__(self) -> None:
        super().__init__(16)
        self.dtype = np.dtype([("key", "<u8"), ("value", "<u8")])

    def make(self, keys: np.ndarray, values: np.ndarray) -> np.ndarray:
        records = np.zeros(len(keys), dtype=self.dtype)
        records["key"] = keys
        records["value"] = values
        return records


def combine_sorted(records: np.ndarray) -> np.ndarray:
    """Collapse a key-sorted record array: one row per key, values summed
    (wrapping uint64 arithmetic, like an accumulator register would)."""
    if len(records) == 0:
        return records
    keys = records["key"]
    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    sums = np.add.reduceat(records["value"], starts)
    out = np.zeros(len(starts), dtype=records.dtype)
    out["key"] = keys[starts]
    out["value"] = sums
    return out


def _hash_keys(keys: np.ndarray, buckets: int) -> np.ndarray:
    """Cheap vectorized 64-bit mix, then mod buckets."""
    mixed = keys * np.uint64(0x9E3779B97F4A7C15)
    mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(buckets)).astype(np.int64)


@dataclasses.dataclass(frozen=True)
class GroupByConfig:
    block_records: int = 2048
    vertical_block_records: int = 512
    out_block_records: int = 2048
    nbuffers: int = 4
    input_file: str = "kv-input"
    output_file: str = "kv-groups"
    run_prefix: str = "groupby-run"
    cleanup_runs: bool = True
    #: prefix for FGProgram names; the multi-tenant scheduler sets a
    #: per-job prefix so concurrent jobs stay distinguishable
    name_prefix: str = "groupby"

    def __post_init__(self):
        for field in ("block_records", "vertical_block_records",
                      "out_block_records", "nbuffers"):
            if getattr(self, field) < 1:
                raise SortError(f"{field} must be >= 1")


@dataclasses.dataclass
class GroupByReport:
    rank: int
    pass1_time: float
    pass2_time: float
    input_records: int
    distinct_keys: int

    @property
    def total_time(self) -> float:
        return self.pass1_time + self.pass2_time


def run_groupby(node: Node, comm: Comm,
                config: Optional[GroupByConfig] = None) -> GroupByReport:
    """SPMD main: aggregate ``kv-input`` into sorted ``kv-groups``."""
    if config is None:
        config = GroupByConfig()
    schema = KeyValueSchema()
    P = comm.size
    B = config.block_records
    rec_bytes = schema.record_bytes
    kernel = node.kernel
    hw = node.hardware
    rf_in = RecordFile(node.disk, config.input_file, schema)
    n_local = rf_in.n_records
    n_blocks = math.ceil(n_local / B)
    state: dict = {"runs": [], "next_run": 0}

    comm.barrier()
    t0 = kernel.now()

    # -- pass 1: hash-partition + pre-aggregate into sorted runs ------------

    prog1 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"{config.name_prefix}-p1@{comm.rank}")

    def read(ctx, buf):
        start = buf.round * B
        buf.put(rf_in.read(start, min(B, n_local - start)))
        return buf

    def route(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            records = buf.view(schema.dtype)
            part = _hash_keys(records["key"], P)
            order = np.argsort(part, kind="stable")
            node.compute(hw.sort_cost_per_key_log * len(records)
                         * max(1.0, math.log2(P))
                         + hw.copy_time(records.nbytes))
            routed = records[order]
            counts = np.bincount(part, minlength=P)
            offsets = np.concatenate(([0], np.cumsum(counts)))
            for dest in range(P):
                lo, hi = int(offsets[dest]), int(offsets[dest + 1])
                if hi > lo:
                    comm.send(dest, routed[lo:hi].copy(), tag=TAG_GROUPBY)
            ctx.convey(buf)
        for dest in range(P):
            comm.send(dest, schema.empty(0), tag=TAG_GROUPBY)
        ctx.forward(buf)

    prog1.add_pipeline(
        "send", [Stage.map("read", read),
                 Stage.source_driven("route", route)],
        nbuffers=config.nbuffers, buffer_bytes=B * rec_bytes,
        rounds=n_blocks)

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        ends = 0
        leftover = None
        while True:
            parts = []
            have = 0
            if leftover is not None:
                parts.append(leftover)
                have = len(leftover)
                leftover = None
            while have < B and ends < P:
                _, payload = comm.recv(tag=TAG_GROUPBY)
                if len(payload) == 0:
                    ends += 1
                    continue
                parts.append(payload)
                have += len(payload)
            if have == 0:
                break
            records = np.concatenate(parts) if len(parts) > 1 else parts[0]
            take = min(B, len(records))
            leftover = records[take:] if take < len(records) else None
            buf = ctx.accept()
            node.compute_copy(take * rec_bytes)
            buf.put(records[:take])
            ctx.convey(buf)
            if ends == P and leftover is None:
                break
        ctx.convey_caboose(pipeline)

    def sort_and_combine(ctx, buf):
        records = buf.view(schema.dtype)
        node.compute_sort(len(records))
        combined = combine_sorted(schema.sort(records))
        node.compute_copy(combined.nbytes)
        buf.put(combined)
        return buf

    def write_run(ctx, buf):
        records = buf.view(schema.dtype)
        run_name = f"{config.run_prefix}.{state['next_run']}"
        state["next_run"] += 1
        RecordFile(node.disk, run_name, schema).write(0, records)
        state["runs"].append((run_name, len(records)))
        return buf

    prog1.add_pipeline(
        "recv", [Stage.source_driven("receive", receive),
                 Stage.map("combine", sort_and_combine),
                 Stage.map("write", write_run)],
        nbuffers=config.nbuffers, buffer_bytes=B * rec_bytes, rounds=None)
    prog1.run()
    comm.barrier()
    t1 = kernel.now()

    # -- pass 2: combining k-way merge of the runs ----------------------------

    runs = state["runs"]
    vB = config.vertical_block_records
    outB = config.out_block_records
    out_file = RecordFile(node.disk, config.output_file, schema)
    out_file.delete()
    distinct = {"count": 0}

    prog2 = FGProgram(kernel, env={"node": node, "comm": comm},
                      name=f"{config.name_prefix}-p2@{comm.rank}")
    merge_stage = Stage.source_driven("merge", None)
    verticals = []
    for i, (run_name, n_run) in enumerate(runs):
        run_file = RecordFile(node.disk, run_name, schema)

        def make_read(run_file, n_run):
            def read_run(ctx, buf):
                start = buf.round * vB
                buf.put(run_file.read(start, min(vB, n_run - start)))
                return buf
            return read_run

        stage = Stage.map(f"read{i}", make_read(run_file, n_run),
                          virtual=True, virtual_group="read")
        verticals.append(prog2.add_pipeline(
            f"v{i}", [stage, merge_stage], nbuffers=2,
            buffer_bytes=vB * rec_bytes, rounds=math.ceil(n_run / vB)))

    def write_out(ctx, buf):
        records = buf.view(schema.dtype)
        out_file.write(buf.tags["start"], records)
        distinct["count"] += len(records)
        return buf

    horizontal = prog2.add_pipeline(
        "out", [merge_stage, Stage.map("write", write_out)],
        nbuffers=config.nbuffers, buffer_bytes=(outB + 1) * rec_bytes,
        rounds=None)

    def merge(ctx):
        merger = BlockMerger(schema, range(len(verticals)))
        head_buf = {}

        def refill():
            for i in sorted(merger.needs()):
                if i in head_buf:
                    ctx.convey(head_buf.pop(i))
                nxt = ctx.accept(verticals[i])
                if nxt.is_caboose:
                    ctx.forward(nxt)
                    merger.finish_run(i)
                else:
                    merger.feed(i, nxt.view(schema.dtype))
                    head_buf[i] = nxt

        refill()
        emitted = 0
        carry = None  # last combined record; next chunk may extend it
        while not merger.exhausted or carry is not None:
            out = ctx.accept(horizontal)
            records = out.data.view(schema.dtype)
            filled = 0
            if carry is not None:
                records[0] = carry
                filled = 1
                carry = None
            while filled <= outB and not merger.exhausted:
                if not merger.ready:
                    refill()
                    continue
                n = merger.merge_into(records, filled, outB + 1 - filled)
                node.compute_merge(n)
                if n == 0:
                    continue
                combined = combine_sorted(records[:filled + n])
                node.compute_copy((filled + n) * rec_bytes)
                records[:len(combined)] = combined
                filled = len(combined)
            # hold back the last record: the next merged chunk may carry
            # more values of the same key
            if not merger.exhausted and filled > 0:
                carry = records[filled - 1].copy()
                filled -= 1
            if filled:
                out.size = filled * rec_bytes
                out.tags["start"] = emitted
                ctx.convey(out)
                emitted += filled
        ctx.convey_caboose(horizontal)

    merge_stage.fn = merge
    prog2.run()
    comm.barrier()
    t2 = kernel.now()

    if config.cleanup_runs:
        for run_name, _ in runs:
            node.disk.delete(run_name)

    return GroupByReport(rank=comm.rank, pass1_time=t1 - t0,
                         pass2_time=t2 - t1, input_records=n_local,
                         distinct_keys=distinct["count"])
