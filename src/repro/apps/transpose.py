"""Out-of-core matrix transpose on FG (a Section-VIII application).

An N x N float64 matrix is stored row-major across the cluster: node p
owns the row block [p*N/P, (p+1)*N/P) in its local ``matrix`` file.  The
transpose must end in the same layout (node p owns row block p of the
*transposed* matrix) without ever holding more than a few tiles in
memory.

Tile algorithm: partition the matrix into P x P blocks of shape
(N/P, N/P).  In round t, every node p reads its t-th... more precisely,
node p processes block column t of its row block: it reads block (p, j)
for all j via one contiguous-per-row tile read, then a balanced
``alltoall`` routes block (p, j) to node j, each node transposes its
received tiles in memory, and writes them at the right offsets of the
output file.  One linear FG pipeline per node — read, communicate,
transpose, write — with every exchange balanced: the csort communication
regime applied to a different problem.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.mpi import Comm
from repro.cluster.node import Node
from repro.core import FGProgram, Stage
from repro.errors import SortError

__all__ = ["TransposeReport", "run_transpose", "MATRIX_FILE",
           "OUTPUT_FILE"]

MATRIX_FILE = "matrix"
OUTPUT_FILE = "matrix-T"


@dataclasses.dataclass
class TransposeReport:
    """Per-node result of one out-of-core transpose."""

    rank: int
    elapsed: float
    tiles_processed: int


def run_transpose(node: Node, comm: Comm, n: int) -> TransposeReport:
    """Transpose the distributed N x N float64 matrix (SPMD main).

    Requires N to be a multiple of P.  Node p reads its row block from
    ``matrix`` and ends up owning row block p of the transpose in
    ``matrix-T``.
    """
    P = comm.size
    if n % P != 0:
        raise SortError(f"matrix side {n} must be a multiple of P={P}")
    rows = n // P          # rows per node = tile side
    tile_values = rows * rows
    tile_bytes = tile_values * 8
    row_bytes = n * 8
    kernel = node.kernel
    state = {"tiles": 0}

    comm.barrier()
    t0 = kernel.now()

    prog = FGProgram(kernel, env={"node": node, "comm": comm},
                     name=f"transpose@{comm.rank}")

    def read(ctx, buf):
        """Round t: read tile (p, j) with j = (t - p) mod P.

        That pairing is an involution — when p's partner is j, j's
        partner is p — so every round is a clean pairwise exchange.  The
        tile read is strided: one slice per local row."""
        j = (buf.round - comm.rank) % P
        tile = np.empty((rows, rows), dtype="<f8")
        for r in range(rows):
            raw = node.disk.read(MATRIX_FILE, r * row_bytes + j * rows * 8,
                                 rows * 8)
            tile[r] = raw.view("<f8")
        buf.put(tile.reshape(-1))
        buf.tags["block_col"] = j
        return buf

    def communicate(ctx, buf):
        """Pairwise balanced exchange: swap tile (p, j) for tile (j, p)
        with partner j (MPI_Sendrecv_replace, equal sizes both ways;
        diagonal rounds are loopback)."""
        j = buf.tags["block_col"]
        tile = buf.view("<f8")
        received = comm.sendrecv_replace(tile.copy(), j)
        node.compute_copy(tile_bytes)
        buf.put(received)
        buf.tags["from_node"] = j
        return buf

    def transpose_tile(ctx, buf):
        tile = buf.view("<f8").reshape(rows, rows)
        node.compute_copy(tile_bytes)
        buf.put(np.ascontiguousarray(tile.T).reshape(-1))
        return buf

    def write(ctx, buf):
        """Tile received from node i holds original block (i, p); its
        transpose is output block (p, i): local rows x column block i."""
        i = buf.tags["from_node"]
        tile = buf.view("<f8").reshape(rows, rows)
        for r in range(rows):
            node.disk.write(OUTPUT_FILE, r * row_bytes + i * rows * 8,
                            tile[r])
        state["tiles"] += 1
        return buf

    prog.add_pipeline(
        "transpose",
        [Stage.map("read", read), Stage.map("communicate", communicate),
         Stage.map("transpose", transpose_tile), Stage.map("write", write)],
        nbuffers=4, buffer_bytes=tile_bytes, rounds=P)
    prog.run()
    comm.barrier()

    return TransposeReport(rank=comm.rank, elapsed=kernel.now() - t0,
                           tiles_processed=state["tiles"])
