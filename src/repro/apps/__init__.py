"""Out-of-core applications beyond sorting (paper, Section VIII).

The paper closes by arguing that FG's multiple-pipeline extensions "would
be suitable for the design of out-of-core algorithms other than sorting"
and solicits candidates.  This package supplies two:

* :mod:`repro.apps.transpose` — out-of-core matrix transpose: the classic
  Parallel-Disk-Model permutation problem, a single linear pipeline with
  balanced all-to-all communication (csort's regime);
* :mod:`repro.apps.groupby` — distribution-based out-of-core aggregation
  (group-by-key, sum of values): hash partitioning with unbalanced
  communication (disjoint pipelines) followed by a combining merge of
  sorted runs (virtual + intersecting pipelines) — dsort's regime, reused
  for a non-sorting computation.
"""

from repro.apps.transpose import TransposeReport, run_transpose
from repro.apps.groupby import GroupByReport, KeyValueSchema, run_groupby

__all__ = [
    "TransposeReport",
    "run_transpose",
    "GroupByReport",
    "KeyValueSchema",
    "run_groupby",
]
