"""Experiment functions, one per paper table/figure (see DESIGN.md index)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.harness import (
    BENCH_RECORDS_16B,
    PAPER_NODES,
    SortRun,
    benchmark_hardware,
    run_sort,
)
from repro.cluster import Cluster
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.workloads.distributions import PAPER_DISTRIBUTIONS

__all__ = [
    "figure8_experiment",
    "unbalanced_experiment",
    "buffer_sweep_experiment",
    "pool_size_experiment",
    "ablation_linear_experiment",
    "overlap_experiment",
    "virtual_stage_experiment",
]


def figure8_experiment(record_bytes: int,
                       n_nodes: int = PAPER_NODES,
                       n_per_node: Optional[int] = None,
                       distributions: Sequence[str] = PAPER_DISTRIBUTIONS,
                       seed: int = 0) -> dict[str, dict[str, SortRun]]:
    """Figure 8: dsort vs csort per-pass times on the four distributions.

    As in the paper, the 16-byte and 64-byte experiments hold the byte
    volume constant (64 GB there; ``BENCH_RECORDS_16B * 16`` bytes per
    node here), so ``n_per_node`` defaults to the byte-equivalent count.
    """
    schema = RecordSchema(record_bytes)
    if n_per_node is None:
        n_per_node = BENCH_RECORDS_16B * 16 // record_bytes
    results: dict[str, dict[str, SortRun]] = {}
    for dist in distributions:
        results[dist] = {
            "dsort": run_sort("dsort", dist, schema, n_nodes=n_nodes,
                              n_per_node=n_per_node, seed=seed),
            "csort": run_sort("csort", dist, schema, n_nodes=n_nodes,
                              n_per_node=n_per_node, seed=seed),
        }
    return results


def unbalanced_experiment(n_nodes: int = PAPER_NODES,
                          n_per_node: int = BENCH_RECORDS_16B,
                          seed: int = 0) -> dict[str, dict[str, SortRun]]:
    """Section VI: inputs designed to elicit highly unbalanced pass-1
    communication (every node streams to the same hot receiver at any
    given moment); 'even under these conditions, dsort fared well'."""
    schema = RecordSchema.paper_16()
    results: dict[str, dict[str, SortRun]] = {}
    for dist in ("sorted", "reverse_sorted", "single_hot_value"):
        results[dist] = {
            "dsort": run_sort("dsort", dist, schema, n_nodes=n_nodes,
                              n_per_node=n_per_node, seed=seed),
            "csort": run_sort("csort", dist, schema, n_nodes=n_nodes,
                              n_per_node=n_per_node, seed=seed),
        }
    return results


def buffer_sweep_experiment(block_sizes: Sequence[int] = (512, 1024,
                                                          2048, 4096),
                            n_nodes: int = PAPER_NODES,
                            n_per_node: int = BENCH_RECORDS_16B,
                            seed: int = 0) -> dict[int, SortRun]:
    """Section VI: 'all results reported here are for the best choices of
    buffer sizes' — sweep dsort's pass-1 block size."""
    schema = RecordSchema.paper_16()
    return {block: run_sort("dsort", "uniform", schema, n_nodes=n_nodes,
                            n_per_node=n_per_node, block_records=block,
                            seed=seed)
            for block in block_sizes}


def pool_size_experiment(pool_sizes: Sequence[int] = (1, 2, 3, 4, 8),
                         n_blocks: int = 32,
                         block_records: int = 4096) -> dict[int, float]:
    """FG's claim that "only a small pool containing a fixed number of
    buffers needs to be allocated": sweep the pool size of a 3-stage
    pipeline.  One buffer serializes the stages; a handful restores full
    overlap; beyond that, more memory buys nothing."""
    schema = RecordSchema.paper_16()
    results: dict[int, float] = {}
    for nbuffers in pool_sizes:
        cluster = Cluster(n_nodes=1, hardware=benchmark_hardware())
        node = cluster.node(0)
        rf_in = RecordFile(node.disk, "in", schema)
        rf_out = RecordFile(node.disk, "out", schema)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**63, size=n_blocks * block_records,
                            dtype=np.uint64)
        rf_in.poke(0, schema.from_keys(keys))
        block_bytes = block_records * schema.record_bytes
        compute_seconds = node.hardware.disk_time(block_bytes)

        def main(node, comm, nbuffers=nbuffers):
            prog = FGProgram(node.kernel, env={"node": node})

            def read(ctx, buf):
                buf.put(rf_in.read(buf.round * block_records,
                                   block_records))
                return buf

            def compute(ctx, buf):
                node.compute(compute_seconds)
                return buf

            def write(ctx, buf):
                rf_out.write(buf.round * block_records,
                             buf.view(schema.dtype))
                return buf

            prog.add_pipeline(
                "p", [Stage.map("read", read),
                      Stage.map("compute", compute),
                      Stage.map("write", write)],
                nbuffers=nbuffers, buffer_bytes=block_bytes,
                rounds=n_blocks)
            prog.run()

        cluster.run(main)
        results[nbuffers] = cluster.kernel.now()
    return results


def ablation_linear_experiment(n_nodes: int = PAPER_NODES,
                               n_per_node: int = BENCH_RECORDS_16B,
                               seed: int = 0) -> dict[str, SortRun]:
    """Section VIII: dsort with multiple pipelines vs dsort restricted to
    single linear pipelines per node."""
    schema = RecordSchema.paper_16()
    return {
        "multi": run_sort("dsort", "uniform", schema, n_nodes=n_nodes,
                          n_per_node=n_per_node, seed=seed),
        "linear": run_sort("dsort-linear", "uniform", schema,
                           n_nodes=n_nodes, n_per_node=n_per_node,
                           seed=seed),
    }


def overlap_experiment(n_blocks: int = 32,
                       block_records: int = 4096) -> dict[str, float]:
    """The FG headline claim (Figures 1-2): a pipeline overlaps I/O with
    computation, so elapsed time approaches the bottleneck stage rather
    than the sum of stages.

    One node reads a block, computes on it for one block-read-equivalent,
    and writes it back — serially, then as a 3-stage FG pipeline.
    """
    schema = RecordSchema.paper_16()
    results: dict[str, float] = {}
    for mode in ("serial", "pipeline"):
        cluster = Cluster(n_nodes=1, hardware=benchmark_hardware())
        node = cluster.node(0)
        rf_in = RecordFile(node.disk, "in", schema)
        rf_out = RecordFile(node.disk, "out", schema)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**63, size=n_blocks * block_records,
                            dtype=np.uint64)
        rf_in.poke(0, schema.from_keys(keys))
        block_bytes = block_records * schema.record_bytes
        compute_seconds = node.hardware.disk_time(block_bytes)

        def serial_main(node, comm):
            for b in range(n_blocks):
                records = rf_in.read(b * block_records, block_records)
                node.compute(compute_seconds)
                rf_out.write(b * block_records, records)

        def pipeline_main(node, comm):
            prog = FGProgram(node.kernel, env={"node": node})

            def read(ctx, buf):
                buf.put(rf_in.read(buf.round * block_records,
                                   block_records))
                return buf

            def compute(ctx, buf):
                node.compute(compute_seconds)
                return buf

            def write(ctx, buf):
                rf_out.write(buf.round * block_records,
                             buf.view(schema.dtype))
                return buf

            prog.add_pipeline(
                "p", [Stage.map("read", read),
                      Stage.map("compute", compute),
                      Stage.map("write", write)],
                nbuffers=4, buffer_bytes=block_bytes, rounds=n_blocks)
            prog.run()

        main = serial_main if mode == "serial" else pipeline_main
        cluster.run(main)
        results[mode] = cluster.kernel.now()
    results["speedup"] = results["serial"] / results["pipeline"]
    return results


def virtual_stage_experiment(ks: Sequence[int] = (4, 32, 256)) -> \
        dict[int, dict[str, int]]:
    """Figure 5(b): thread count for k pipelines, with and without
    virtual stages."""
    from repro.sim import VirtualTimeKernel

    out: dict[int, dict[str, int]] = {}
    for k in ks:
        counts = {}
        for virtual in (True, False):
            kernel = VirtualTimeKernel()
            prog = FGProgram(kernel)
            for i in range(k):
                stage = Stage.map(f"acq{i}", lambda ctx, b: b,
                                  virtual=virtual, virtual_group="acquire")
                prog.add_pipeline(f"v{i}", [stage], nbuffers=1,
                                  buffer_bytes=16, rounds=2)
            kernel.spawn(prog.run, name="driver")
            kernel.run()
            counts["virtual" if virtual else "plain"] = prog.thread_count
        out[k] = counts
    return out
