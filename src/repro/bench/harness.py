"""Core experiment runner: one sorting program, one workload, one cluster.

:func:`run_sort` builds a fresh simulated cluster, generates the workload,
runs the chosen sorting program SPMD, verifies the striped output against
the manifest (every benchmark run is also a correctness check), and
returns a :class:`SortRun` with the per-phase timings the paper's Figure 8
reports plus resource accounting.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.cluster import Cluster, HardwareModel
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.pdm.records import RecordSchema
from repro.sim import Tracer, VirtualTimeKernel
from repro.sorting.columnsort import (
    CsortConfig,
    plan_columnsort,
    run_csort,
    run_csort4,
)
from repro.sorting.dsort import (
    DsortConfig,
    run_dsort,
    run_dsort_linear,
    run_nowsort,
)
from repro.sorting.verify import (
    verify_partitioned_output,
    verify_striped_output,
)
from repro.workloads.generator import generate_input

__all__ = [
    "SortRun",
    "benchmark_hardware",
    "default_dsort_config",
    "default_csort_config",
    "run_sort",
    "PAPER_NODES",
    "BENCH_RECORDS_16B",
]

#: the paper's node count (Section VI)
PAPER_NODES = 16

#: default per-node record count for 16-byte-record benchmarks; 64-byte
#: benchmarks hold the BYTE volume constant, as the paper does with its
#: fixed 64 GB dataset
BENCH_RECORDS_16B = 16384


def benchmark_hardware() -> HardwareModel:
    """The scaled paper platform used by every benchmark (see
    :meth:`HardwareModel.scaled_paper_cluster`)."""
    return HardwareModel.scaled_paper_cluster()


def stripe_block_records(n_total: int, n_nodes: int) -> int:
    """A stripe block size legal for BOTH sorts (csort needs P*B <= r)."""
    plan = plan_columnsort(n_total, n_nodes)
    return min(1024, plan.r // n_nodes)


def default_dsort_config(n_total: int, n_nodes: int,
                         block_records: Optional[int] = None) -> DsortConfig:
    out_block = stripe_block_records(n_total, n_nodes)
    per_node = n_total // n_nodes
    block = block_records if block_records is not None \
        else max(out_block, min(4096, per_node // 8 or 1))
    # oversample=64 keeps splitter noise low at simulation-scale inputs
    # (the paper's 10%-of-average balance claim is about splitter quality,
    # not input size)
    return DsortConfig(block_records=block,
                       vertical_block_records=max(1, block // 2),
                       out_block_records=out_block,
                       oversample=64)


def default_csort_config(n_total: int, n_nodes: int) -> CsortConfig:
    return CsortConfig(out_block_records=stripe_block_records(n_total,
                                                              n_nodes))


@dataclasses.dataclass
class SortRun:
    """Everything one experiment run produced."""

    sorter: str
    distribution: str
    record_bytes: int
    n_nodes: int
    n_per_node: int
    #: phase name -> seconds, in execution order (barrier-aligned, so all
    #: nodes agree; taken from rank 0)
    phase_times: dict[str, float]
    verified: bool
    #: max partition size over the average (dsort only; None for csort)
    partition_imbalance: Optional[float]
    bytes_io: int
    bytes_wire: int
    max_disk_busy: float
    #: observability capture (``run_sort(..., observe=True)``): the full
    #: execution trace and the kernel metrics registry, ready for
    #: :func:`repro.obs.write_chrome_trace` / ``write_metrics_json``
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    #: provenance capture (``run_sort(..., provenance=True)``): the
    #: run's :class:`~repro.prov.record.ProvenanceRecord`, replayable
    #: via :func:`repro.prov.replay` / ``python -m repro replay``
    provenance: Optional[object] = None

    @property
    def total_time(self) -> float:
        return sum(self.phase_times.values())

    @property
    def total_bytes(self) -> int:
        return self.record_bytes * self.n_per_node * self.n_nodes


def _apply_tune(config, tune: Optional[dict]):
    """Override config fields from a tuner-chosen dict (see run_sort)."""
    if not tune:
        return config
    known = {f.name for f in dataclasses.fields(config)}
    unknown = sorted(set(tune) - known)
    if unknown:
        raise ReproError(
            f"unknown tune field(s) {unknown} for "
            f"{type(config).__name__}; tunable fields: {sorted(known)}")
    overrides = dict(tune)
    if (isinstance(config, DsortConfig) and "block_records" in overrides
            and "vertical_block_records" not in overrides):
        overrides["vertical_block_records"] = max(
            1, overrides["block_records"] // 2)
    return dataclasses.replace(config, **overrides)


def run_sort(sorter: str, distribution: str, schema: RecordSchema,
             n_nodes: int = PAPER_NODES,
             n_per_node: int = BENCH_RECORDS_16B,
             hardware: Optional[HardwareModel] = None,
             block_records: Optional[int] = None,
             seed: int = 0, observe: bool = False,
             tune: Optional[dict] = None,
             plan: object = None,
             provenance: bool = False) -> SortRun:
    """Run one sorting experiment end to end and verify its output.

    ``observe=True`` attaches the execution tracer and a metrics registry
    to the run's kernel; the returned :class:`SortRun` then carries them
    (``.tracer`` / ``.metrics``) so callers can export a Chrome trace,
    dump a metrics snapshot, or run a bottleneck analysis — this is how
    the benchmark suite emits its trace artifacts.

    ``tune`` overrides fields of the sorter's default config by name
    (e.g. ``{"nbuffers": 6, "sort_replicas": 2}`` for either sorter,
    ``{"block_records": 2048}`` for dsort, ``{"s_override": 8}`` for
    csort) — the hook through which ``repro.tune`` applies a candidate
    configuration.  A dsort ``block_records`` override also rescales
    ``vertical_block_records`` to the default half-block unless that is
    overridden too; unknown field names raise, so tuners cannot silently
    search a no-op axis.

    ``plan`` applies a compiled execution plan
    (:class:`repro.plan.Plan`): its geometry overrides are layered
    under any explicit ``tune`` dict, and the plan is installed on the
    run's kernel so every program compiles through it at ``start()``
    (stage fusion + structural stamp).  Pass ``plan=True`` to compile
    one on the spot with :func:`repro.plan.plan_sort`.  The plan must
    match the run's sorter and shape.

    ``provenance=True`` (implies ``observe=True``) additionally captures
    a :class:`~repro.prov.record.ProvenanceRecord` on the returned run —
    args, seeds, stage-graph and code fingerprints, and sha256 digests
    of the output, metrics snapshot, and event trace — replayable
    byte-exactly via :func:`repro.prov.replay`.  Only the default
    benchmark hardware is recordable (the record stores no hardware
    model).
    """
    if provenance:
        if hardware is not None:
            raise ReproError(
                "run_sort(provenance=True) supports the default "
                "benchmark hardware only; a custom HardwareModel is not "
                "serialized into provenance records")
        observe = True
    hardware = hardware if hardware is not None else benchmark_hardware()
    n_total = n_nodes * n_per_node
    plan_obj = None
    if plan is not None and plan is not False:
        if plan is True:
            from repro.plan import plan_sort
            plan_obj = plan_sort(sorter, n_nodes, n_per_node,
                                 record_bytes=schema.record_bytes)
        else:
            plan_obj = plan
        mismatches = [
            f"{field} (plan {got!r}, run {want!r})"
            for field, got, want in [
                ("sorter", plan_obj.sorter, sorter),
                ("n_nodes", plan_obj.n_nodes, n_nodes),
                ("n_per_node", plan_obj.n_per_node, n_per_node),
                ("record_bytes", plan_obj.record_bytes,
                 schema.record_bytes)]
            if got != want]
        if mismatches:
            raise ReproError(
                "plan does not match this run: "
                + "; ".join(mismatches)
                + " — compile a plan for the shape being run")
    kernel = None
    tracer = None
    capture = None
    if observe:
        tracer = Tracer()
        kernel = VirtualTimeKernel(tracer=tracer)
        kernel.enable_metrics()
        if provenance:
            from repro.prov import ProvenanceCapture
            capture = ProvenanceCapture(kernel)
    cluster = Cluster(n_nodes=n_nodes, hardware=hardware, kernel=kernel)
    if plan_obj is not None:
        # every FGProgram.start() on this kernel now compiles through
        # the plan; geometry overrides layer UNDER any explicit tune
        # dict so a tuner can still probe around the planned point
        plan_obj.install(cluster.kernel)
        tune = {**plan_obj.config, **(tune or {})}
    manifest = generate_input(cluster, schema, n_per_node, distribution,
                              seed=seed)
    imbalance: Optional[float] = None

    if sorter in ("dsort", "dsort-linear"):
        config = _apply_tune(default_dsort_config(
            n_total, n_nodes, block_records=block_records), tune)
        main = run_dsort if sorter == "dsort" else run_dsort_linear
        reports = cluster.run(main, schema, config)
        rep = reports[0]
        phases = {"sampling": rep.sampling_time,
                  "pass1": rep.pass1_time,
                  "pass2": rep.pass2_time}
        sizes = [r.partition_records for r in reports]
        imbalance = max(sizes) / (sum(sizes) / len(sizes))
        out_block = config.out_block_records
        output_file = config.output_file
    elif sorter == "csort":
        config = _apply_tune(default_csort_config(n_total, n_nodes), tune)
        reports = cluster.run(run_csort, schema, config)
        rep = reports[0]
        phases = {"pass1": rep.pass1_time,
                  "pass2": rep.pass2_time,
                  "pass3": rep.pass3_time}
        out_block = config.out_block_records
        output_file = config.output_file
    elif sorter == "csort4":
        config = _apply_tune(default_csort_config(n_total, n_nodes), tune)
        reports = cluster.run(run_csort4, schema, config)
        rep = reports[0]
        phases = {f"pass{i + 1}": t
                  for i, t in enumerate(rep.pass_times)}
        out_block = config.out_block_records
        output_file = config.output_file
    elif sorter == "nowsort":
        config = _apply_tune(default_dsort_config(
            n_total, n_nodes, block_records=block_records), tune)
        reports = cluster.run(run_nowsort, schema, config)
        rep = reports[0]
        phases = {"pass1": rep.pass1_time, "pass2": rep.pass2_time}
        sizes = [r.partition_records for r in reports]
        imbalance = max(sizes) / (sum(sizes) / len(sizes))
        out_block = None
        output_file = config.output_file
    else:
        raise ReproError(f"unknown sorter {sorter!r}; expected 'dsort', "
                         "'csort', 'csort4', 'dsort-linear', or 'nowsort'")

    if out_block is None:
        verify_partitioned_output(cluster, manifest, output_file)
    else:
        verify_striped_output(cluster, manifest, output_file, out_block)

    record = None
    if capture is not None:
        record = _provenance_record(
            cluster, capture, schema, sorter=sorter,
            distribution=distribution, n_nodes=n_nodes,
            n_per_node=n_per_node, block_records=block_records, seed=seed,
            tune=tune, plan=plan_obj, config=config, out_block=out_block,
            output_file=output_file)

    return SortRun(sorter=sorter, distribution=distribution,
                   record_bytes=schema.record_bytes, n_nodes=n_nodes,
                   n_per_node=n_per_node, phase_times=phases,
                   verified=True, partition_imbalance=imbalance,
                   bytes_io=cluster.total_bytes_io(),
                   bytes_wire=cluster.total_bytes_sent(),
                   max_disk_busy=cluster.max_disk_busy(),
                   tracer=tracer, metrics=cluster.kernel.metrics,
                   provenance=record)


def _provenance_record(cluster, capture, schema: RecordSchema, *,
                       sorter: str, distribution: str, n_nodes: int,
                       n_per_node: int, block_records: Optional[int],
                       seed: int, tune: Optional[dict], plan,
                       config, out_block: Optional[int],
                       output_file: str):
    """Build the ProvenanceRecord of a finished run_sort execution."""
    from repro.pdm.striped import StripedFile
    from repro.prov import (
        ProvenanceRecord,
        metrics_digest,
        output_digest,
        trace_digest,
        tune_decision_log,
        version_info,
    )

    kernel = cluster.kernel
    out_sha = ""
    if out_block is not None:
        out = StripedFile(cluster, output_file, schema,
                          out_block).read_all()
        out_sha = output_digest(out.tobytes())
    return ProvenanceRecord(
        kind="sort",
        args={"sorter": sorter, "distribution": distribution,
              "record_bytes": schema.record_bytes, "n_nodes": n_nodes,
              "n_per_node": n_per_node, "block_records": block_records,
              "seed": seed, "tune": dict(tune) if tune else None,
              "plan": plan.to_json() if plan is not None else None},
        seeds={"workload": seed, "config": getattr(config, "seed", None)},
        fault_plan=None,
        tune_decisions=tune_decision_log(kernel.tracer),
        stage_graphs=dict(capture.stage_graphs),
        digests={"output": out_sha,
                 "metrics": metrics_digest(kernel.metrics.snapshot()),
                 "trace": trace_digest(kernel.tracer)},
        **version_info())
