"""Benchmark harness: experiment runners and table rendering.

Every table and figure of the paper's evaluation maps to a function here
(see DESIGN.md's experiment index); the modules under ``benchmarks/``
wrap these in pytest-benchmark entry points and print the regenerated
rows.  Results carry per-phase timings, verification status, and resource
accounting so EXPERIMENTS.md can compare paper-shape vs measured-shape.
"""

from repro.bench.harness import (
    SortRun,
    benchmark_hardware,
    default_csort_config,
    default_dsort_config,
    run_sort,
)
from repro.bench.figures import (
    ablation_linear_experiment,
    buffer_sweep_experiment,
    figure8_experiment,
    overlap_experiment,
    pool_size_experiment,
    unbalanced_experiment,
    virtual_stage_experiment,
)
from repro.bench.reporting import render_figure8, render_table

__all__ = [
    "SortRun",
    "benchmark_hardware",
    "default_dsort_config",
    "default_csort_config",
    "run_sort",
    "figure8_experiment",
    "unbalanced_experiment",
    "buffer_sweep_experiment",
    "pool_size_experiment",
    "ablation_linear_experiment",
    "overlap_experiment",
    "virtual_stage_experiment",
    "render_table",
    "render_figure8",
]
