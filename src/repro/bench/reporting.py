"""Plain-text table rendering for benchmark output.

The benchmarks print the same information the paper's Figure 8 plots:
per-pass and total times for dsort and csort across distributions, plus
the dsort/csort ratio the paper quotes as 74.26%-85.06%.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bench.harness import SortRun

__all__ = ["render_table", "render_figure8"]


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_figure8(results: Mapping[str, Mapping[str, SortRun]],
                   record_bytes: int) -> str:
    """Figure-8-style rows: one line per distribution per program."""
    headers = ["distribution", "program", "sampling", "pass1", "pass2",
               "pass3", "total", "dsort/csort"]
    rows = []
    for dist, pair in results.items():
        dsort, csort = pair["dsort"], pair["csort"]
        ratio = dsort.total_time / csort.total_time
        rows.append([dist, "dsort",
                     dsort.phase_times["sampling"],
                     dsort.phase_times["pass1"],
                     dsort.phase_times["pass2"], "-",
                     dsort.total_time, ratio])
        rows.append([dist, "csort", "-",
                     csort.phase_times["pass1"],
                     csort.phase_times["pass2"],
                     csort.phase_times["pass3"],
                     csort.total_time, ""])
    title = (f"Figure 8 ({'a' if record_bytes == 16 else 'b'}): "
             f"{record_bytes}-byte records, "
             "per-pass simulated times (seconds)")
    return title + "\n" + render_table(headers, rows)
