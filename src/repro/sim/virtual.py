"""Deterministic virtual-time kernel.

The central idea (see DESIGN.md): FG stages must be writable as plain
blocking Python functions — that is the programming model the paper sells —
yet a pure-Python reproduction cannot measure latency overlap with real
threads because of the GIL.  This kernel squares that circle by running each
process in a real OS thread while enforcing **cooperative, token-passing
scheduling**: exactly one thread executes at any moment, every blocking
primitive hands the "run token" to the scheduler, and the scheduler advances
a simulated clock to the earliest pending timed event.  Reported times are
therefore exact consequences of the configured cost models; the GIL only
affects how long the simulation takes to execute, never what it reports.

Determinism: the ready queue is FIFO, timed events are ordered by
``(time, sequence-number)``, wakers never signal threads directly (they move
processes to the ready queue under the kernel mutex), and the single run
token serializes everything.  Two runs of the same program with the same
seeds produce identical event timelines.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Any, Optional

from repro.errors import DeadlockError, KernelShutdown, KernelStateError
from repro.sim.kernel import Kernel, Process, ProcessState
from repro.sim.trace import FINISH, PARK, RESUME, SPAWN, Tracer
from repro.sim.waitfor import runtime_wait_cycle

__all__ = ["VirtualTimeKernel"]


class VirtualTimeKernel(Kernel):
    """Cooperative scheduler over a simulated clock.

    Typical use::

        kernel = VirtualTimeKernel()
        kernel.spawn(node_main, 0)
        kernel.spawn(node_main, 1)
        kernel.run()           # raises on failure or deadlock
        elapsed = kernel.now() # simulated seconds
    """

    def __init__(self, tracer: Optional["Tracer"] = None) -> None:
        super().__init__()
        self._now = 0.0
        self._ready: deque[Process] = deque()
        self._heap: list[tuple[float, int, Process]] = []
        self._seq = itertools.count()
        self._main_event = threading.Event()
        self._all_dead = threading.Event()
        #: number of context switches performed (exposed for tests/stats)
        self.switches = 0
        #: optional execution tracer (see :mod:`repro.sim.trace`)
        self.tracer = tracer

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        return self._now

    # -- blocking primitives ---------------------------------------------------

    def sleep(self, duration: float) -> None:
        """Advance this process ``duration`` simulated seconds.

        Other ready processes run during the interval — this is how latency
        overlap happens.  ``duration`` may be zero (yields the token while
        keeping the process at the front of the timeline).
        """
        if duration < 0:
            raise ValueError(f"negative sleep duration: {duration}")
        me = self.current_process()
        self.mutex.acquire()
        me.state = ProcessState.BLOCKED
        me.waiting_on = f"sleep until t={self._now + duration:.9g}"
        heapq.heappush(self._heap, (self._now + duration, next(self._seq), me))
        self._park_and_handoff_locked(me)

    def block_current(self, *, locked: bool, reason: str = "") -> Any:
        if not locked:
            raise KernelStateError("block_current requires the kernel mutex")
        me = self.current_process()
        me.state = ProcessState.BLOCKED
        me.waiting_on = reason
        self._park_and_handoff_locked(me)
        value, me.wake_value = me.wake_value, None
        return value

    def make_ready(self, proc: Process, wake_value: Any = None) -> None:
        if not proc.alive:
            # only reachable during abort unwinding, when a dying process's
            # cleanup (e.g. a resource release in a finally block) wakes a
            # waiter that already unwound; never resurrect it
            return
        proc.wake_value = wake_value
        proc.state = ProcessState.READY
        proc.waiting_on = None
        proc.wait_info = None
        self._ready.append(proc)

    # -- scheduling core -------------------------------------------------------

    def _pick_locked(self) -> Optional[Process]:
        if self._ready:
            return self._ready.popleft()
        if self._heap:
            t, _, proc = heapq.heappop(self._heap)
            # The clock never moves backwards: events are scheduled at
            # now+duration with duration >= 0.
            self._now = t
            return proc
        return None

    def _park_and_handoff_locked(self, me: Process) -> None:
        """Hand the run token to the next process and wait to be resumed.

        Caller holds the mutex and has already registered ``me`` wherever it
        waits (event heap, a channel wait queue, ...).  Releases the mutex.
        """
        me._resume_event.clear()
        self.switches += 1
        if self.tracer is not None:
            self.tracer.record(self._now, me.name, PARK,
                               me.waiting_on or "")
        nxt = self._pick_locked()
        self.mutex.release()
        if nxt is None:
            self._main_event.set()
        else:
            nxt._resume_event.set()
        me._resume_event.wait()
        if self._aborting:
            raise KernelShutdown()
        me.state = ProcessState.RUNNING
        me.waiting_on = None
        me.wait_info = None
        if self.tracer is not None:
            self.tracer.record(self._now, me.name, RESUME)

    def _handoff_locked_and_exit(self) -> None:
        """Hand the token onward without waiting (terminating process)."""
        nxt = self._pick_locked()
        self.mutex.release()
        if nxt is None:
            self._main_event.set()
        else:
            nxt._resume_event.set()

    # -- process lifecycle hooks ------------------------------------------------

    def _prepare_new_process_locked(self, proc: Process) -> None:
        # Newly spawned processes join the ready queue; their thread parks
        # in _admit until the scheduler grants them the token.
        proc.state = ProcessState.READY
        self._ready.append(proc)
        if self.tracer is not None:
            self.tracer.record(self._now, proc.name, SPAWN)

    def _admit(self, proc: Process) -> None:
        proc._resume_event.wait()
        if self._aborting:
            raise KernelShutdown()
        if self.tracer is not None:
            self.tracer.record(self._now, proc.name, RESUME)

    def _retire(self, proc: Process) -> None:
        self.mutex.acquire()
        if self.tracer is not None:
            self.tracer.record(self._now, proc.name, FINISH)
        self._live -= 1
        live = self._live
        self._record_failure_locked(proc)
        if self._aborting:
            # Abort in progress: the main thread owns scheduling; just
            # report death and exit.
            self.mutex.release()
            if live == 0:
                self._all_dead.set()
            return
        self._wake_joiners_locked(proc)
        if proc.exception is not None:
            # Stop the world promptly: return the token to the main thread,
            # which will abort every parked process.
            self.mutex.release()
            self._main_event.set()
            return
        self._handoff_locked_and_exit()

    # -- run loop ------------------------------------------------------------------

    def run(self) -> None:
        if self._started:
            raise KernelStateError("kernel already ran")
        if self.in_process():
            raise KernelStateError("run() may not be called from a process")
        self._started = True
        with self.mutex:
            for proc in self._processes:
                if proc.state is ProcessState.NEW:
                    self._start_process_locked(proc)
        while True:
            self.mutex.acquire()
            if self._failure is not None:
                self._abort_locked()  # releases mutex
                self._finished = True
                raise self._failure
            if self._live == 0:
                self.mutex.release()
                self._finished = True
                if self.metrics is not None:
                    self.metrics.counter("kernel.context_switches").inc(
                        self.switches)
                    self.metrics.gauge("kernel.simulated_seconds",
                                       unit="s").set(self._now)
                return
            self._main_event.clear()
            nxt = self._pick_locked()
            if nxt is None:
                blocked = [p for p in self._processes if p.alive]
                message = ("deadlock: all live processes are blocked and no "
                           "timed event is pending\n"
                           + self._describe_blocked(blocked))
                cycle = runtime_wait_cycle(blocked)
                if cycle is not None:
                    message += f"\n  wait-for cycle: {cycle}"
                self._abort_locked()  # releases mutex
                self._finished = True
                raise DeadlockError(message)
            self.mutex.release()
            nxt._resume_event.set()
            self._main_event.wait()

    def _abort_locked(self) -> None:
        """Unwind every parked process.  Caller holds the mutex; released."""
        self._aborting = True
        if self._live == 0:
            self._all_dead.set()
        parked = [p for p in self._processes
                  if p.alive and p._thread is not None]
        self.mutex.release()
        for proc in parked:
            proc._resume_event.set()
        # Parked processes raise KernelShutdown, unwind, and _retire; the
        # last one sets _all_dead.
        if parked:
            self._all_dead.wait()
        for proc in parked:
            if proc._thread is not None:
                proc._thread.join()
