"""Counted resources with FIFO fairness and utilization accounting.

A :class:`Resource` models a piece of hardware with bounded parallelism: a
disk arm (capacity 1), a NIC (capacity 1 per direction), a node's CPU cores
(capacity = core count).  Holding a unit while sleeping for a modeled
service time is how cost models charge for contention::

    with disk_arm.request():
        kernel.sleep(seek + nbytes / bandwidth)

Fairness is strict FIFO with head-of-line blocking: a large request at the
head of the queue is never overtaken by a smaller one behind it.  This
matches how a single disk arm or link serializes transfers and keeps the
virtual-time kernel deterministic.

Utilization accounting integrates ``in_use`` over time, so after a run
``resource.utilization(total_time)`` reports the busy fraction — the raw
material for the per-pass analyses in EXPERIMENTS.md.
"""

from __future__ import annotations

import contextlib
from collections import deque
from typing import Iterator

from repro.sim.kernel import Kernel, Process

__all__ = ["Resource"]


class Resource:
    """A counted resource acquired and released by kernel processes."""

    def __init__(self, kernel: Kernel, capacity: int = 1,
                 name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._available = capacity
        self._waiters: deque[tuple[Process, int]] = deque()
        # time-weighted busy accounting
        self._busy_integral = 0.0
        self._last_change = kernel.now()
        #: total completed acquisitions (stats)
        self.acquisitions = 0

    # -- stats -----------------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    def busy_time(self) -> float:
        """Unit-seconds of busy time integrated so far (one unit busy for
        one second contributes 1.0)."""
        now = self.kernel.now()
        return self._busy_integral + self.in_use * (now - self._last_change)

    def utilization(self, elapsed: float) -> float:
        """Average busy fraction of the whole resource over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time() / (self.capacity * elapsed)

    def _account_locked(self) -> None:
        now = self.kernel.now()
        self._busy_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def _wait_info(self) -> str:
        """Deadlock-report detail: units in use and queue length."""
        return (f"(in use {self.in_use}/{self.capacity}, "
                f"{len(self._waiters)} queued)")

    # -- acquire / release ----------------------------------------------------------

    def acquire(self, units: int = 1) -> None:
        """Take ``units`` of the resource, blocking until available (FIFO)."""
        if units < 1 or units > self.capacity:
            raise ValueError(
                f"cannot acquire {units} units of {self.name!r} "
                f"(capacity {self.capacity})")
        kernel = self.kernel
        kernel.mutex.acquire()
        if not self._waiters and self._available >= units:
            self._account_locked()
            self._available -= units
            self.acquisitions += 1
            kernel.mutex.release()
            return
        me = kernel.current_process()
        self._waiters.append((me, units))
        me.wait_info = self._wait_info
        kernel.block_current(locked=True,
                             reason=f"acquire {units}x {self.name}")
        # The releaser already performed the accounting and the decrement
        # on our behalf before waking us.

    def release(self, units: int = 1) -> None:
        """Return ``units`` to the resource and admit queued waiters in order."""
        if units < 1:
            raise ValueError("units must be >= 1")
        kernel = self.kernel
        kernel.mutex.acquire()
        if self._available + units > self.capacity:
            kernel.mutex.release()
            raise ValueError(
                f"release overflows {self.name!r}: "
                f"{self._available} + {units} > capacity {self.capacity}")
        self._account_locked()
        self._available += units
        while self._waiters and self._available >= self._waiters[0][1]:
            proc, need = self._waiters.popleft()
            self._available -= need
            self.acquisitions += 1
            kernel.make_ready(proc)
        kernel.mutex.release()

    @contextlib.contextmanager
    def request(self, units: int = 1) -> Iterator[None]:
        """``with resource.request(): ...`` — acquire/release bracket."""
        self.acquire(units)
        try:
            yield
        finally:
            self.release(units)
