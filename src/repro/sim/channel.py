"""Bounded FIFO channels, generic over both kernels.

A :class:`Channel` is the synchronization object underlying every FG buffer
queue (the queues drawn between stages in the paper's Figure 2) and the
recycling path from sink back to source.  Semantics:

* ``put`` blocks while the channel holds ``capacity`` items (``capacity=0``
  gives rendezvous semantics; ``capacity=None`` is unbounded);
* ``get`` blocks while the channel is empty;
* both ends are FIFO-fair, which the virtual-time kernel relies on for
  determinism;
* ``close`` wakes all blocked parties with :class:`ChannelClosed`; a closed
  channel drains remaining items to getters before raising.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Optional, TypeVar

from repro.errors import ChannelClosed
from repro.sim.kernel import Kernel, Process

__all__ = ["Channel"]

T = TypeVar("T")

_ITEM = "item"
_CLOSED = "closed"


class Channel(Generic[T]):
    """A FIFO queue that blocks kernel processes, not OS threads directly."""

    def __init__(self, kernel: Kernel, capacity: Optional[int] = None,
                 name: str = "channel"):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be None or >= 0")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        #: label of whoever owns this channel (an FG program sets the
        #: pipeline name); surfaced in deadlock reports
        self.owner: Optional[str] = None
        self._buf: deque[T] = deque()
        self._getq: deque[Process] = deque()
        self._putq: deque[tuple[Process, T]] = deque()
        self._closed = False
        #: total items ever delivered through this channel (stats)
        self.delivered = 0
        #: kernel-process names an FG program registers as this channel's
        #: counterparties at assembly time; the deadlock wait-for-graph
        #: analysis (:mod:`repro.sim.waitfor`) uses them to name who a
        #: blocked process is actually waiting on
        self.producers: set[str] = set()
        self.consumers: set[str] = set()
        # self-instrumentation: when the kernel carries a metrics registry
        # (kernel.enable_metrics()), record queue occupancy — with a
        # time-weighted level histogram and a sample series for the
        # Chrome-trace counter track — and items delivered.
        registry = kernel.metrics
        if registry is not None:
            self._m_occupancy = registry.gauge(
                f"channel.{name}.occupancy", record_samples=True,
                level_bounds=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0))
            self._m_delivered = registry.counter(
                f"channel.{name}.delivered")
        else:
            self._m_occupancy = None
            self._m_delivered = None

    # -- instrumentation helpers (call with the kernel mutex held) ---------

    def _note_delivered_locked(self) -> None:
        self.delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc()

    def _note_occupancy_locked(self) -> None:
        if self._m_occupancy is not None:
            self._m_occupancy.set(len(self._buf))

    def _wait_info(self) -> str:
        """Deadlock-report detail: live occupancy, capacity, and owner."""
        cap = "inf" if self.capacity is None else self.capacity
        owner = f", pipeline {self.owner}" if self.owner else ""
        return f"(occupancy {len(self._buf)}/{cap}{owner})"

    # -- queries (racy by nature; fine under the cooperative kernel) -------

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- blocking operations -------------------------------------------------

    def put(self, item: T) -> None:
        """Append ``item``, blocking while the channel is full."""
        kernel = self.kernel
        kernel.mutex.acquire()
        if self._closed:
            kernel.mutex.release()
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        race = kernel.race
        if race is not None:
            # happens-before edge: deliveries follow put order, so the
            # detector keeps a FIFO of sender clock snapshots per channel
            race.on_send(self)
        if self._getq:
            getter = self._getq.popleft()
            self._note_delivered_locked()
            if race is not None:
                race.on_handoff(self, getter.pid)
            kernel.make_ready(getter, (_ITEM, item))
            kernel.mutex.release()
            return
        if self.capacity is None or len(self._buf) < self.capacity:
            self._buf.append(item)
            self._note_occupancy_locked()
            kernel.mutex.release()
            return
        me = kernel.current_process()
        self._putq.append((me, item))
        me.wait_info = self._wait_info
        me.waiting_channel = self
        outcome = kernel.block_current(locked=True,
                                       reason=f"put -> {self.name}")
        me.waiting_channel = None
        if outcome == _CLOSED:
            raise ChannelClosed(f"channel {self.name!r} closed while putting")

    def get(self) -> T:
        """Remove and return the oldest item, blocking while empty."""
        kernel = self.kernel
        kernel.mutex.acquire()
        race = kernel.race
        if self._buf:
            item = self._buf.popleft()
            self._note_delivered_locked()
            if race is not None:
                race.on_receive(self)
            if self._putq:
                putter, pending = self._putq.popleft()
                self._buf.append(pending)
                kernel.make_ready(putter, _ITEM)
            self._note_occupancy_locked()
            kernel.mutex.release()
            return item
        if self._putq:  # capacity == 0 rendezvous
            putter, pending = self._putq.popleft()
            self._note_delivered_locked()
            if race is not None:
                race.on_receive(self)
            kernel.make_ready(putter, _ITEM)
            kernel.mutex.release()
            return pending
        if self._closed:
            kernel.mutex.release()
            raise ChannelClosed(f"get on closed, empty channel {self.name!r}")
        me = kernel.current_process()
        self._getq.append(me)
        me.wait_info = self._wait_info
        me.waiting_channel = self
        kind, payload = kernel.block_current(locked=True,
                                             reason=f"get <- {self.name}")
        me.waiting_channel = None
        if kind == _CLOSED:
            raise ChannelClosed(f"channel {self.name!r} closed while getting")
        if race is not None:
            # the putter handed us its clock snapshot via on_handoff
            race.on_resume()
        return payload

    # -- non-blocking operations ------------------------------------------------

    def try_get(self) -> tuple[bool, Optional[T]]:
        """Return ``(True, item)`` if an item was available, else ``(False, None)``."""
        kernel = self.kernel
        kernel.mutex.acquire()
        race = kernel.race
        if self._buf:
            item = self._buf.popleft()
            self._note_delivered_locked()
            if race is not None:
                race.on_receive(self)
            if self._putq:
                putter, pending = self._putq.popleft()
                self._buf.append(pending)
                kernel.make_ready(putter, _ITEM)
            self._note_occupancy_locked()
            kernel.mutex.release()
            return True, item
        if self._putq:
            putter, pending = self._putq.popleft()
            self._note_delivered_locked()
            if race is not None:
                race.on_receive(self)
            kernel.make_ready(putter, _ITEM)
            kernel.mutex.release()
            return True, pending
        kernel.mutex.release()
        return False, None

    def try_put(self, item: T) -> bool:
        """Append ``item`` if it would not block; return success."""
        kernel = self.kernel
        kernel.mutex.acquire()
        if self._closed:
            kernel.mutex.release()
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        race = kernel.race
        if self._getq:
            getter = self._getq.popleft()
            self._note_delivered_locked()
            if race is not None:
                race.on_send(self)
                race.on_handoff(self, getter.pid)
            kernel.make_ready(getter, (_ITEM, item))
            kernel.mutex.release()
            return True
        if self.capacity is None or len(self._buf) < self.capacity:
            if race is not None:
                race.on_send(self)
            self._buf.append(item)
            self._note_occupancy_locked()
            kernel.mutex.release()
            return True
        kernel.mutex.release()
        return False

    # -- shutdown ------------------------------------------------------------------

    def close(self) -> None:
        """Close the channel, waking every blocked getter and putter.

        Items already buffered remain retrievable via ``get``; once the
        buffer drains, further ``get`` calls raise :class:`ChannelClosed`.
        """
        kernel = self.kernel
        kernel.mutex.acquire()
        if self._closed:
            kernel.mutex.release()
            return
        self._closed = True
        getters, self._getq = self._getq, deque()
        putters, self._putq = self._putq, deque()
        for getter in getters:
            kernel.make_ready(getter, (_CLOSED, None))
        for putter, _pending in putters:
            kernel.make_ready(putter, _CLOSED)
        kernel.mutex.release()
