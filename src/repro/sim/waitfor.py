"""Wait-for-graph analysis shared by the kernel and the static linter.

A wait-for graph has one node per actor (a kernel process, or a stage in
the static analysis) and a directed edge ``a -> b`` meaning "``a`` cannot
make progress until ``b`` does".  A cycle in the graph is a deadlock (at
runtime) or a proof that one is reachable (statically).

Two clients:

* :class:`~repro.sim.virtual.VirtualTimeKernel` builds the graph over
  blocked processes when it detects a deadlock — edges come from each
  channel's registered producer/consumer process names — and appends the
  concrete wait cycle to the :class:`~repro.errors.DeadlockError` report.
* The FG107 lint rule (:mod:`repro.check.linter`) builds the graph over
  stages of intersecting pipelines with bounded channels and reports the
  cycle that a full channel chain would close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Process

__all__ = ["WaitForGraph", "runtime_wait_cycle"]


class WaitForGraph:
    """A small directed graph with labelled edges and cycle search."""

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}
        self._labels: dict[tuple[str, str], str] = {}

    def add_edge(self, src: str, dst: str, label: str = "") -> None:
        """Record that ``src`` waits on ``dst`` (no-op on self-edges)."""
        if src == dst:
            return
        self._edges.setdefault(src, set()).add(dst)
        self._edges.setdefault(dst, set())
        if label:
            self._labels.setdefault((src, dst), label)

    def label(self, src: str, dst: str) -> str:
        """The label recorded for edge ``src -> dst`` (may be empty)."""
        return self._labels.get((src, dst), "")

    def find_cycle(self) -> Optional[list[str]]:
        """Return one cycle as ``[a, b, ..., a]``, or None when acyclic.

        Iterative DFS with three-color marking; deterministic because
        neighbours are visited in sorted order.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self._edges}
        parent: dict[str, str] = {}
        for root in sorted(self._edges):
            if color[root] != WHITE:
                continue
            stack: list[tuple[str, Iterable[str]]] = [
                (root, iter(sorted(self._edges[root])))]
            color[root] = GRAY
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for nxt in neighbours:
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(self._edges[nxt]))))
                        advanced = True
                        break
                    if color[nxt] == GRAY:
                        cycle = [nxt]
                        cur = node
                        while cur != nxt:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.append(nxt)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def render_cycle(self, cycle: list[str]) -> str:
        """Human-readable ``a -> b -> a`` line with edge labels."""
        parts = [cycle[0]]
        for src, dst in zip(cycle, cycle[1:]):
            lbl = self.label(src, dst)
            arrow = f" -[{lbl}]-> " if lbl else " -> "
            parts.append(f"{arrow}{dst}")
        return "".join(parts)


def runtime_wait_cycle(blocked: "Iterable[Process]") -> Optional[str]:
    """Extract a concrete wait cycle from blocked kernel processes.

    Each blocked process that is parked on a channel (``waiting_channel``
    set by :class:`~repro.sim.channel.Channel`) waits on the processes
    registered as that channel's counterparties: its producers when
    blocked getting, its consumers when blocked putting on a full
    channel.  Only edges between *blocked* processes matter — a live
    runnable counterparty would break the cycle.  Returns the rendered
    cycle line, or None when the deadlock is not channel-shaped (e.g.
    unregistered channels, resources, joins).
    """
    blocked = list(blocked)
    by_name = {p.name: p for p in blocked}
    graph = WaitForGraph()
    for proc in blocked:
        channel = getattr(proc, "waiting_channel", None)
        if channel is None:
            continue
        waiting_on = proc.waiting_on or ""
        if waiting_on.startswith("get"):
            counterparties = channel.producers
            verb = "awaiting data on"
        else:
            counterparties = channel.consumers
            verb = "awaiting space in"
        for name in counterparties:
            if name in by_name and name != proc.name:
                graph.add_edge(proc.name, name,
                               f"{verb} {channel.name}")
    cycle = graph.find_cycle()
    if cycle is None:
        return None
    return graph.render_cycle(cycle)
