"""Execution-kernel substrate: virtual-time and real-time schedulers.

This package provides the concurrency substrate that the FG framework and
the cluster model are built on.  User code (FG stages, node main programs)
is written as plain blocking Python — exactly the programming model the FG
paper describes — and runs unmodified on either kernel:

* :class:`~repro.sim.virtual.VirtualTimeKernel` — a deterministic
  cooperative scheduler.  Every process is a real thread, but only one runs
  at a time; blocking primitives hand control to the scheduler, which
  advances a simulated clock to the earliest pending event.  All reported
  times are exact consequences of the hardware cost model, independent of
  the GIL, host load, or thread-scheduling order.

* :class:`~repro.sim.realtime.RealTimeKernel` — free-running threads with
  ordinary locks; time is the wall clock.  Used for correctness runs and
  examples that perform real file I/O.

On top of the kernels, :mod:`repro.sim.channel` provides bounded FIFO
channels (the buffer queues of FG) and :mod:`repro.sim.resources` provides
counted resources (disk arms, NICs, CPU cores).
"""

from repro.sim.kernel import Kernel, Process, ProcessState
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.virtual import VirtualTimeKernel
from repro.sim.realtime import RealTimeKernel
from repro.sim.channel import Channel
from repro.sim.resources import Resource

__all__ = [
    "Kernel",
    "Process",
    "ProcessState",
    "VirtualTimeKernel",
    "RealTimeKernel",
    "Channel",
    "Resource",
    "Tracer",
    "TraceEvent",
]
