"""Execution tracing: event timelines and text Gantt charts.

Attach a :class:`Tracer` to a :class:`~repro.sim.virtual.VirtualTimeKernel`
and every process records state transitions (spawn, park-with-reason,
resume, finish).  Afterwards the tracer reconstructs per-process
run/blocked intervals, computes busy fractions, and renders a monospace
Gantt chart — the tool we use to *see* FG's latency overlap instead of
inferring it from totals.

Example::

    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)
    ...run...
    print(tracer.gantt(width=72))
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

__all__ = ["TraceEvent", "Tracer"]

#: event kinds recorded by the kernel
SPAWN = "spawn"
PARK = "park"
RESUME = "resume"
FINISH = "finish"
#: instantaneous marker recorded by the fault injector (not a state
#: transition: interval reconstruction ignores it; the Chrome exporter
#: renders it as an instant event)
FAULT = "fault"
#: instantaneous marker recorded by the repro.tune controller for every
#: decision it applies (add replica / grow pool / shrink pool); same
#: rendering rules as FAULT
TUNE = "tune"
#: instantaneous marker recorded by the repro.recover manager for every
#: recovery decision (resume from checkpoint / speculate / reassign /
#: race winner); same rendering rules as FAULT
RECOVER = "recover"
#: instantaneous marker recorded by the repro.sched scheduler for every
#: scheduling decision (submit / admit / place / preempt / finish);
#: same rendering rules as FAULT — and the substrate of the scheduler's
#: byte-exact decision log
SCHED = "sched"


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One state transition of one process."""

    time: float
    process: str
    kind: str      #: spawn | park | resume | finish
    detail: str    #: for parks: what the process is waiting on


@dataclasses.dataclass(frozen=True)
class Interval:
    """A contiguous span in one state."""

    start: float
    end: float
    state: str     #: "run" | "work" | "contend" | "wait"
    detail: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def classify_park(detail: str) -> str:
    """Map a park reason to a semantic state.

    Under the virtual-time kernel a process consumes modeled time by
    *sleeping* on a cost-model timeout, so:

    * ``sleep ...``   -> "work"    (performing a timed operation)
    * ``acquire ...`` / ``reserve ...`` -> "contend" (queued on a busy
      resource: disk arm, NIC, core, bounded mailbox)
    * everything else (queue get/put, recv, join) -> "wait" (idle,
      waiting for data or completion)
    """
    if detail.startswith("sleep"):
        return "work"
    if detail.startswith("acquire") or detail.startswith("reserve"):
        return "contend"
    return "wait"


class Tracer:
    """Collects trace events and derives timelines from them."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    # -- recording (called by the kernel) -----------------------------------

    def record(self, time: float, process: str, kind: str,
               detail: str = "") -> None:
        self.events.append(TraceEvent(time, process, kind, detail))

    # -- analysis ------------------------------------------------------------

    def process_names(self) -> list[str]:
        """Processes in order of first appearance."""
        seen: dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.process, None)
        return list(seen)

    def intervals(self, process: str) -> list[Interval]:
        """State intervals of one process, in time order."""
        out: list[Interval] = []
        state: Optional[str] = None
        since = 0.0
        detail = ""
        for ev in self.events:
            if ev.process != process:
                continue
            if ev.kind == SPAWN:
                state, since, detail = "wait", ev.time, "awaiting start"
            elif ev.kind == RESUME:
                if state is not None and ev.time > since:
                    out.append(Interval(since, ev.time, state, detail))
                state, since, detail = "run", ev.time, ""
            elif ev.kind == PARK:
                if state is not None and ev.time > since:
                    out.append(Interval(since, ev.time, "run", ""))
                state, since = classify_park(ev.detail), ev.time
                detail = ev.detail
            elif ev.kind == FINISH:
                if state is not None and ev.time > since:
                    out.append(Interval(since, ev.time, state, detail))
                state = None
        return out

    def busy_time(self, process: str) -> float:
        """Time ``process`` spent doing timed work (run + work states)."""
        return sum(iv.duration for iv in self.intervals(process)
                   if iv.state in ("run", "work"))

    def span(self) -> tuple[float, float]:
        """(first, last) event times, or (0, 0) with no events."""
        if not self.events:
            return 0.0, 0.0
        times = [ev.time for ev in self.events]
        return min(times), max(times)

    def utilization_report(self) -> str:
        """One line per process: busy seconds and busy fraction of span."""
        t0, t1 = self.span()
        total = max(t1 - t0, 1e-12)
        lines = ["process".ljust(32) + "busy(s)".rjust(10)
                 + "busy%".rjust(8)]
        for name in self.process_names():
            busy = self.busy_time(name)
            lines.append(name.ljust(32)
                         + f"{busy:10.4f}" + f"{100 * busy / total:7.1f}%")
        return "\n".join(lines)

    # -- rendering ------------------------------------------------------------------

    #: Gantt cell glyph per state, in precedence order on ties
    _GLYPHS = (("work", "#"), ("run", "#"), ("contend", "+"),
               ("wait", "."))

    def gantt(self, width: int = 72,
              processes: Optional[Sequence[str]] = None) -> str:
        """Monospace Gantt: '#' doing timed work, '+' queued on a busy
        resource, '.' waiting for data, ' ' not alive.

        Each character cell covers span/width seconds and shows the state
        the process spent the most of that cell in.
        """
        if width < 8:
            raise ValueError("width must be >= 8")
        t0, t1 = self.span()
        total = t1 - t0
        if total <= 0:
            return "(no timeline: zero-duration trace)"
        names = list(processes) if processes is not None \
            else self.process_names()
        label_w = min(28, max((len(n) for n in names), default=4))
        lines = [f"{'':{label_w}} |t0={t0:.6g}s ... t1={t1:.6g}s  "
                 "('#'=work, '+'=resource queue, '.'=waiting)"]
        cell = total / width
        for name in names:
            ivs = self.intervals(name)
            row = []
            for c in range(width):
                lo = t0 + c * cell
                hi = lo + cell
                shares = {state: 0.0 for state, _ in self._GLYPHS}
                for iv in ivs:
                    overlap = min(hi, iv.end) - max(lo, iv.start)
                    if overlap > 0:
                        shares[iv.state] = shares.get(iv.state, 0.0) \
                            + overlap
                if not any(shares.values()):
                    row.append(" ")
                else:
                    best = max(self._GLYPHS,
                               key=lambda sg: shares.get(sg[0], 0.0))
                    row.append(best[1])
            label = name[:label_w]
            lines.append(f"{label:{label_w}} |{''.join(row)}|")
        return "\n".join(lines)
