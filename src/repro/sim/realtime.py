"""Real-time kernel: free-running threads, wall-clock time.

This kernel implements the same contract as
:class:`~repro.sim.virtual.VirtualTimeKernel` but lets process threads run
concurrently under the OS scheduler.  It exists for two reasons:

* correctness runs — the same FG programs execute on it unmodified, which
  checks that nothing in the library depends on cooperative scheduling; and
* realistic demonstrations — stages may perform *real* file I/O (via the
  file-backed storage backend), where Python releases the GIL and genuine
  overlap occurs, mirroring the paper's original deployment.

``time_scale`` maps modeled latencies to real sleeps: ``1.0`` sleeps the
modeled duration, ``0.0`` turns modeled latencies into pure yields (useful
in fast correctness tests).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.errors import KernelShutdown, KernelStateError
from repro.sim.kernel import Kernel, Process, ProcessState

__all__ = ["RealTimeKernel"]


class RealTimeKernel(Kernel):
    """Kernel whose clock is the wall clock and whose threads run freely."""

    def __init__(self, time_scale: float = 1.0) -> None:
        super().__init__()
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.time_scale = time_scale
        self._t0 = time.monotonic()
        self._done = threading.Condition(self.mutex)

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        return time.monotonic() - self._t0

    # -- blocking primitives ----------------------------------------------------

    def sleep(self, duration: float) -> None:
        """Sleep ``duration * time_scale`` real seconds (yield if zero)."""
        if duration < 0:
            raise ValueError(f"negative sleep duration: {duration}")
        if self._aborting:
            raise KernelShutdown()
        scaled = duration * self.time_scale
        if scaled > 0:
            time.sleep(scaled)
        else:
            # Encourage interleaving so behaviour resembles the modeled
            # asynchrony even when latencies are scaled away.
            time.sleep(0)

    def block_current(self, *, locked: bool, reason: str = "") -> Any:
        if not locked:
            raise KernelStateError("block_current requires the kernel mutex")
        me = self.current_process()
        if self._aborting:
            # the abort may have fired before we parked; clearing our
            # resume event below would wipe its wakeup, so bail out now
            self.mutex.release()
            raise KernelShutdown()
        me.state = ProcessState.BLOCKED
        me.waiting_on = reason
        me._resume_event.clear()
        self.mutex.release()
        me._resume_event.wait()
        if self._aborting:
            raise KernelShutdown()
        me.state = ProcessState.RUNNING
        me.waiting_on = None
        me.wait_info = None
        value, me.wake_value = me.wake_value, None
        return value

    def make_ready(self, proc: Process, wake_value: Any = None) -> None:
        if not proc.alive:
            return  # see VirtualTimeKernel.make_ready: abort-unwind race
        proc.wake_value = wake_value
        proc.state = ProcessState.READY
        proc.waiting_on = None
        proc.wait_info = None
        proc._resume_event.set()

    # -- process lifecycle ---------------------------------------------------------

    def _admit(self, proc: Process) -> None:
        # Real-time processes start running immediately.
        if self._aborting:
            raise KernelShutdown()

    def _retire(self, proc: Process) -> None:
        with self.mutex:
            self._live -= 1
            self._record_failure_locked(proc)
            self._wake_joiners_locked(proc)
            if proc.exception is not None and not self._aborting:
                self._begin_abort_locked()
            self._done.notify_all()

    def _begin_abort_locked(self) -> None:
        self._aborting = True
        for p in self._processes:
            if p.alive:
                p._resume_event.set()

    # -- run loop ------------------------------------------------------------------

    def run(self, timeout: Optional[float] = None) -> None:
        """Run to completion; optionally fail after ``timeout`` real seconds.

        A timeout aborts all processes and raises
        :class:`~repro.errors.KernelStateError` — the real-time kernel has
        no general deadlock detector, so the watchdog is the safety net for
        mis-assembled programs.
        """
        if self._started:
            raise KernelStateError("kernel already ran")
        if self.in_process():
            raise KernelStateError("run() may not be called from a process")
        self._started = True
        with self.mutex:
            for proc in self._processes:
                if proc.state is ProcessState.NEW:
                    self._start_process_locked(proc)
            finished = self._done.wait_for(lambda: self._live == 0,
                                           timeout=timeout)
            if not finished:
                blocked = [p for p in self._processes if p.alive]
                self._begin_abort_locked()
                self._done.wait_for(lambda: self._live == 0, timeout=5.0)
                self._finished = True
                raise KernelStateError(
                    "real-time kernel watchdog expired; live processes:\n"
                    + self._describe_blocked(blocked))
        self._finished = True
        if self._failure is not None:
            raise self._failure
