"""Abstract execution kernel: processes, parking, and the scheduling contract.

A :class:`Kernel` runs a set of :class:`Process` objects, each of which wraps
a plain Python callable executing in its own OS thread.  Processes interact
with the kernel only through blocking primitives:

* :meth:`Kernel.sleep` — consume (simulated or real) time;
* :meth:`Kernel.block_current` / :meth:`Kernel.make_ready` — park the calling
  process on a wait queue until another process wakes it (used by channels
  and resources);
* :meth:`Process.join` — wait for another process to finish.

The two concrete kernels (:class:`~repro.sim.virtual.VirtualTimeKernel` and
:class:`~repro.sim.realtime.RealTimeKernel`) implement the same contract, so
synchronization objects (channels, resources) are written once against this
interface.

Thread-safety contract: every primitive that inspects or mutates shared
kernel state does so while holding :attr:`Kernel.mutex`.  Synchronization
objects acquire the mutex themselves and call ``block_current(locked=True)``
while holding it; the kernel releases the mutex while the process is parked
and re-acquires nothing on resume (wakers transfer any data before waking).
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import (
    KernelShutdown,
    KernelStateError,
    ProcessFailed,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = ["Kernel", "Process", "ProcessState"]


class ProcessState(enum.Enum):
    """Lifecycle states of a kernel process."""

    NEW = "new"          #: created, thread not started yet
    READY = "ready"      #: eligible to run (virtual-time kernel only)
    RUNNING = "running"  #: currently executing user code
    BLOCKED = "blocked"  #: parked on a wait queue or timed event
    DONE = "done"        #: target returned normally
    FAILED = "failed"    #: target raised


class Process:
    """A schedulable unit: one user callable running in one thread.

    Processes are created with :meth:`Kernel.spawn`; user code never
    instantiates this class directly.  After the kernel finishes,
    :attr:`result` holds the callable's return value (or :attr:`exception`
    the exception that terminated it).
    """

    _ids = itertools.count()

    def __init__(self, kernel: "Kernel", target: Callable[..., Any],
                 args: tuple, kwargs: dict, name: Optional[str]):
        self.kernel = kernel
        self.target = target
        self.args = args
        self.kwargs = kwargs
        self.pid = next(Process._ids)
        self.name = name if name is not None else f"proc-{self.pid}"
        self.state = ProcessState.NEW
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        #: human-readable description of what the process is blocked on;
        #: surfaced in deadlock reports.
        self.waiting_on: Optional[str] = None
        #: optional zero-arg callable set by the synchronization object the
        #: process is parked on; resolved at deadlock-report time to append
        #: live detail (channel occupancy/capacity, owning pipeline, ...).
        self.wait_info: Optional[Callable[[], str]] = None
        #: the Channel this process is parked on (set by Channel.put/get,
        #: cleared on wake); consumed by the deadlock wait-for-graph
        #: analysis (:mod:`repro.sim.waitfor`).
        self.waiting_channel: Any = None
        #: one-slot mailbox used by wakers to hand data to a parked process
        #: (e.g. a channel item) before making it ready.
        self.wake_value: Any = None
        self._resume_event = threading.Event()
        self._joiners: list[Process] = []
        self._thread: Optional[threading.Thread] = None

    # -- introspection ----------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the process has not finished (normally or by error)."""
        return self.state not in (ProcessState.DONE, ProcessState.FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} pid={self.pid} state={self.state.value}>"

    # -- blocking API (callable from inside kernel processes) -------------

    def join(self) -> Any:
        """Block the calling process until this process finishes.

        Returns the target's return value.  Raises :class:`ProcessFailed`
        if the joined process terminated with an exception.
        """
        kernel = self.kernel
        me = kernel.current_process()
        kernel.mutex.acquire()
        if self.alive:
            self._joiners.append(me)
            # block_current releases the mutex (locking contract).
            kernel.block_current(locked=True, reason=f"join({self.name})")
        else:
            kernel.mutex.release()
        if kernel.race is not None:
            # join edge: everything the joined process did happened
            # before this point — whether it finished or failed
            kernel.race.on_join(self.pid)
        if self.exception is not None:
            raise ProcessFailed(self.name, self.exception)
        return self.result


class Kernel:
    """Base class implementing process bookkeeping shared by both kernels."""

    def __init__(self) -> None:
        #: global kernel mutex; see module docstring for the locking contract.
        self.mutex = threading.Lock()
        self._processes: list[Process] = []
        self._live = 0
        self._started = False
        self._finished = False
        self._aborting = False
        self._failure: Optional[ProcessFailed] = None
        self._tls = threading.local()
        #: optional metrics registry recording in this kernel's time;
        #: see :meth:`enable_metrics`.  Channels and FG programs
        #: instrument themselves when it is non-None.
        self.metrics: Optional["MetricsRegistry"] = None
        #: optional provenance capture (repro.prov.ProvenanceCapture);
        #: when non-None, every FG program that starts on this kernel
        #: reports its stage-graph fingerprint through its observer.
        self.provenance: Optional[Any] = None
        #: optional execution plan (repro.plan.Plan); when non-None,
        #: every FG program that starts on this kernel is compiled by
        #: it (stage fusion + plan stamp) before the lint gate runs.
        self.plan: Optional[Any] = None
        #: optional happens-before race detector
        #: (repro.check.races.RaceDetector); when non-None, channels and
        #: the cluster network thread vector clocks through every
        #: send/receive and FG programs replay their static effect sets
        #: against it.  See :meth:`enable_race_detection`.
        self.race: Optional[Any] = None

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock)."""
        raise NotImplementedError

    # -- observability -------------------------------------------------------

    def enable_metrics(self) -> "MetricsRegistry":
        """Attach (or return) a metrics registry bound to this kernel's
        clock.  Must be called before the synchronization objects and FG
        programs that should record into it are constructed — they look up
        :attr:`metrics` at creation time.
        """
        if self.metrics is None:
            from repro.obs.metrics import MetricsRegistry
            self.metrics = MetricsRegistry(self.now)
        return self.metrics

    def enable_race_detection(self, *, strict: bool = False) -> Any:
        """Attach (or return) an FGRace happens-before detector.

        Like :meth:`enable_metrics`, call before constructing the
        channels and programs that should participate — they look up
        :attr:`race` per operation, so earlier objects also join in,
        but clocks are only complete from attachment onward.
        """
        if self.race is None:
            from repro.check.races import RaceDetector
            self.race = RaceDetector(self, strict=strict)
        elif strict:
            self.race.strict = True
        return self.race

    # -- process management -------------------------------------------------

    def spawn(self, target: Callable[..., Any], *args: Any,
              name: Optional[str] = None, **kwargs: Any) -> Process:
        """Create a new process running ``target(*args, **kwargs)``.

        May be called before :meth:`run` (to set up root processes) or from
        inside a running process (dynamic spawning, e.g. FG assembling the
        pipelines of a later pass).
        """
        if self._finished:
            raise KernelStateError("cannot spawn onto a finished kernel")
        proc = Process(self, target, args, kwargs, name)
        with self.mutex:
            self._processes.append(proc)
            self._live += 1
            if self._started:
                self._start_process_locked(proc)
        if self.race is not None:
            # fork edge: the child starts after the spawner's current
            # point (no-op for root spawns from outside the kernel)
            self.race.on_spawn(proc.pid)
        if self.metrics is not None:
            self.metrics.counter("kernel.processes_spawned").inc()
        return proc

    def current_process(self) -> Process:
        """Return the process bound to the calling thread.

        Raises :class:`KernelStateError` when called from a thread that is
        not a kernel process (e.g. the main test thread).
        """
        proc = getattr(self._tls, "process", None)
        if proc is None:
            raise KernelStateError(
                "this primitive may only be used from inside a kernel process")
        return proc

    def in_process(self) -> bool:
        """True when the calling thread is a kernel process."""
        return getattr(self._tls, "process", None) is not None

    @property
    def processes(self) -> list[Process]:
        """All processes ever spawned on this kernel (snapshot copy)."""
        with self.mutex:
            return list(self._processes)

    # -- blocking primitives (implemented by subclasses) --------------------

    def sleep(self, duration: float) -> None:
        """Consume ``duration`` seconds of kernel time."""
        raise NotImplementedError

    def block_current(self, *, locked: bool, reason: str = "") -> Any:
        """Park the calling process until another process wakes it.

        ``locked`` must be True and the caller must hold :attr:`mutex`; the
        kernel releases the mutex while parked.  Returns the process's
        :attr:`Process.wake_value` (set by the waker) and clears it.
        """
        raise NotImplementedError

    def make_ready(self, proc: Process, wake_value: Any = None) -> None:
        """Wake a parked process.  Caller must hold :attr:`mutex`."""
        raise NotImplementedError

    # -- run loop ------------------------------------------------------------

    def run(self) -> None:
        """Run all spawned processes to completion.

        Raises :class:`ProcessFailed` (wrapping the first failure) if any
        process raised, and :class:`~repro.errors.DeadlockError` if the
        virtual-time kernel detects that all live processes are blocked with
        no pending timed event.
        """
        raise NotImplementedError

    # -- shared helpers for subclasses ---------------------------------------

    def _start_process_locked(self, proc: Process) -> None:
        """Start the OS thread backing ``proc``.  Mutex held by caller."""
        thread = threading.Thread(target=self._bootstrap, args=(proc,),
                                  name=f"repro-{proc.name}", daemon=True)
        proc._thread = thread
        self._prepare_new_process_locked(proc)
        thread.start()

    def _prepare_new_process_locked(self, proc: Process) -> None:
        """Hook: subclass bookkeeping before a process thread starts."""

    def _bootstrap(self, proc: Process) -> None:
        """Thread entry point: bind TLS, wait for admission, run target."""
        self._tls.process = proc
        try:
            self._admit(proc)
            proc.state = ProcessState.RUNNING
            proc.result = proc.target(*proc.args, **proc.kwargs)
            proc.state = ProcessState.DONE
        except KernelShutdown:
            proc.state = ProcessState.FAILED
            proc.exception = None  # shutdown is not a user failure
        except BaseException as exc:  # noqa: BLE001 - report any failure
            proc.state = ProcessState.FAILED
            proc.exception = exc
        finally:
            self._retire(proc)

    def _admit(self, proc: Process) -> None:
        """Hook: block until the scheduler admits this new process."""

    def _retire(self, proc: Process) -> None:
        """Hook: bookkeeping when a process finishes; wake joiners, pick next."""
        raise NotImplementedError

    def _wake_joiners_locked(self, proc: Process) -> None:
        for joiner in proc._joiners:
            self.make_ready(joiner)
        proc._joiners.clear()

    def _record_failure_locked(self, proc: Process) -> None:
        if proc.exception is not None and self._failure is None:
            self._failure = ProcessFailed(proc.name, proc.exception)

    @staticmethod
    def _describe_blocked(procs: Iterable[Process]) -> str:
        lines = []
        for p in procs:
            line = f"  - {p.name}: waiting on {p.waiting_on or '?'}"
            if p.wait_info is not None:
                try:
                    detail = p.wait_info()
                except Exception:  # noqa: BLE001 - report must not fail
                    detail = ""
                if detail:
                    line += f" {detail}"
            lines.append(line)
        return "\n".join(lines)
