"""One-call multi-tenant runs: cluster + scheduler + stats + provenance.

:func:`run_schedule` is the entry point the CLI, the benchmark, and the
tests share: feed it an :class:`~repro.sched.workload.ArrivalTrace` and
it builds the kernel and cluster, starts the scheduler, submits every
arrival at its virtual time, runs to completion, and returns a
:class:`SchedReport` with per-tenant latency percentiles, utilization,
the full decision log, and (by default) a replayable ``sched``
provenance record whose digests cover the decision log, the metrics
snapshot, and the kernel trace.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping, Optional, Union

from repro.sched.job import Job, JobState, Quota
from repro.sched.policy import PlacementPolicy
from repro.sched.scheduler import DEFAULT_TAG_STRIDE, Scheduler
from repro.sched.workload import ArrivalTrace

__all__ = ["SchedReport", "percentile", "run_schedule"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    # nearest-rank: ceil(q * n), rounded first so float wobble in q * n
    # (e.g. 0.50 * 6 = 2.9999...) cannot shift the rank
    rank = max(1, math.ceil(round(q * len(ordered), 9)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclasses.dataclass
class SchedReport:
    """Everything one multi-tenant run produced."""

    policy: str
    n_nodes: int
    makespan: float
    #: fraction of node-time spent running jobs
    utilization: float
    #: tenant -> {jobs, done, failed, preemptions, p50, p99, mean}
    tenants: dict[str, dict]
    jobs: list[Job]
    decisions: list[dict]
    decision_digest: str
    metrics: dict
    provenance: Optional[Any] = None

    @property
    def done(self) -> int:
        return sum(1 for j in self.jobs if j.state is JobState.DONE)

    @property
    def failed(self) -> int:
        return sum(1 for j in self.jobs if j.state is JobState.FAILED)

    def describe(self) -> str:
        lines = [
            f"sched run: policy={self.policy} nodes={self.n_nodes} "
            f"jobs={len(self.jobs)} done={self.done} "
            f"failed={self.failed}",
            f"  makespan     {self.makespan:.3f}s  "
            f"utilization {self.utilization:.1%}",
            f"  decisions    {len(self.decisions)} "
            f"(sha256 {self.decision_digest[:16]}…)",
        ]
        for tenant in sorted(self.tenants):
            st = self.tenants[tenant]
            lines.append(
                f"  tenant {tenant:10s} jobs={st['jobs']:4d} "
                f"done={st['done']:4d} preempt={st['preemptions']:3d} "
                f"p50={st['p50']:8.3f}s p99={st['p99']:8.3f}s "
                f"mean={st['mean']:8.3f}s")
        return "\n".join(lines)


def run_schedule(trace: ArrivalTrace, *,
                 n_nodes: int = 4,
                 quotas: Mapping[str, Quota],
                 policy: Union[PlacementPolicy, str] = "fifo",
                 seed: int = 0,
                 preempt: bool = False,
                 speculation_slots: int = 0,
                 tag_stride: int = DEFAULT_TAG_STRIDE,
                 hardware: Optional[Any] = None,
                 trace_path: Optional[str] = None,
                 provenance: bool = True) -> SchedReport:
    """Run one multi-tenant schedule to completion and report.

    Deterministic end to end: the same trace, quotas, policy, and seed
    produce a byte-identical decision log (and identical digests in the
    provenance record, when captured).  Provenance is only captured for
    fully describable runs — default hardware — matching the chaos
    harness's rule.
    """
    from repro.cluster.cluster import Cluster
    from repro.prov import ProvenanceCapture
    from repro.sim.trace import Tracer
    from repro.sim.virtual import VirtualTimeKernel

    kernel = VirtualTimeKernel(tracer=Tracer())
    kernel.enable_metrics()
    capture = (ProvenanceCapture(kernel)
               if provenance and hardware is None else None)
    cluster = Cluster(n_nodes=n_nodes, hardware=hardware, kernel=kernel)
    sched = Scheduler(cluster, quotas, policy, preempt=preempt,
                      speculation_slots=speculation_slots,
                      tag_stride=tag_stride, seed=seed)
    sched.start()

    def submitter() -> None:
        for arrival in trace:
            delay = arrival.time - kernel.now()
            if delay > 0:
                kernel.sleep(delay)
            sched.submit(arrival.spec)
        sched.close()

    kernel.spawn(submitter, name="sched.submitter")
    kernel.run()

    makespan = kernel.now()
    utilization = (sched.busy_node_seconds / (n_nodes * makespan)
                   if makespan > 0 else 0.0)

    tenants: dict[str, dict] = {}
    for tenant in sorted(sched.quotas):
        mine = [j for j in sched.jobs.values()
                if j.spec.tenant == tenant]
        latencies = [j.latency for j in mine
                     if j.state is JobState.DONE]
        tenants[tenant] = {
            "jobs": len(mine),
            "done": len(latencies),
            "failed": sum(1 for j in mine
                          if j.state is JobState.FAILED),
            "preemptions": sum(j.preemptions for j in mine),
            "p50": percentile(latencies, 0.50),
            "p99": percentile(latencies, 0.99),
            "mean": (sum(latencies) / len(latencies)
                     if latencies else 0.0),
        }

    assert kernel.metrics is not None
    metrics = kernel.metrics.snapshot()

    if trace_path is not None:
        from repro.obs.chrome_trace import write_chrome_trace

        write_chrome_trace(trace_path, kernel.tracer,
                           metrics=kernel.metrics)

    record = None
    if capture is not None:
        from repro.prov import (
            ProvenanceRecord,
            metrics_digest,
            recovery_decision_log,
            sched_decision_log,
            trace_digest,
            tune_decision_log,
            version_info,
        )

        record = ProvenanceRecord(
            kind="sched",
            args={
                "trace": trace.to_json(),
                "n_nodes": n_nodes,
                "quotas": {t: q.to_json()
                           for t, q in sorted(sched.quotas.items())},
                "policy": sched.policy.name,
                "seed": seed,
                "preempt": preempt,
                "speculation_slots": speculation_slots,
                "tag_stride": tag_stride,
            },
            seeds={"scheduler": seed},
            tune_decisions=tune_decision_log(kernel.tracer),
            recovery_decisions=recovery_decision_log(kernel.tracer),
            sched_decisions=sched_decision_log(kernel.tracer),
            stage_graphs=dict(capture.stage_graphs),
            digests={
                "decisions": sched.decision_digest(),
                "metrics": metrics_digest(metrics),
                "trace": trace_digest(kernel.tracer),
            },
            **version_info())
        capture.detach()

    return SchedReport(
        policy=sched.policy.name,
        n_nodes=n_nodes,
        makespan=makespan,
        utilization=utilization,
        tenants=tenants,
        jobs=[sched.jobs[i] for i in sorted(sched.jobs)],
        decisions=list(sched.decisions),
        decision_digest=sched.decision_digest(),
        metrics=metrics,
        provenance=record,
    )
