"""Arrival traces: the scheduler's input stream, serializable and seeded.

An :class:`ArrivalTrace` is the complete, ordered description of what
every tenant submits and when.  It round-trips through JSON so the same
trace can drive a benchmark run, ride inside a provenance record, and be
re-submitted during replay — determinism starts with the input being a
value, not a generator.

:func:`synthetic_trace` builds the multi-tenant benchmark workloads:
every draw comes from one ``random.Random(seed)``, so a seed fully
determines the trace.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Iterator, Mapping, Optional, Sequence

from repro.errors import SchedError
from repro.sched.job import JobSpec

__all__ = ["Arrival", "ArrivalTrace", "synthetic_trace"]


@dataclasses.dataclass(frozen=True)
class Arrival:
    """One submission: a spec arriving at an instant of virtual time."""

    time: float
    spec: JobSpec

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedError(f"arrival time must be >= 0, got {self.time}")


@dataclasses.dataclass(frozen=True)
class ArrivalTrace:
    """An ordered stream of arrivals (sorted by time, then input order)."""

    arrivals: tuple[Arrival, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.arrivals,
            key=lambda a: a.time))
        object.__setattr__(self, "arrivals", ordered)

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> Iterator[Arrival]:
        return iter(self.arrivals)

    @property
    def tenants(self) -> list[str]:
        seen: dict[str, None] = {}
        for arrival in self.arrivals:
            seen.setdefault(arrival.spec.tenant, None)
        return list(seen)

    def to_json(self) -> dict:
        return {"arrivals": [
            {"time": arrival.time, "spec": arrival.spec.to_json()}
            for arrival in self.arrivals]}

    @classmethod
    def from_json(cls, doc: dict) -> "ArrivalTrace":
        return cls(arrivals=tuple(
            Arrival(time=entry["time"],
                    spec=JobSpec.from_json(entry["spec"]))
            for entry in doc["arrivals"]))

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "ArrivalTrace":
        return cls.from_json(json.loads(text))


def synthetic_trace(
    seed: int,
    n_jobs: int,
    tenants: Sequence[str] = ("alpha", "beta"),
    *,
    mean_interarrival: float = 0.5,
    kinds: Sequence[str] = ("blocks",),
    n_nodes_choices: Sequence[int] = (1, 2),
    tenant_share: Optional[Mapping[str, float]] = None,
    params: Optional[Mapping[str, Mapping]] = None,
    priority_choices: Sequence[int] = (0,),
) -> ArrivalTrace:
    """A seeded Poisson-ish multi-tenant workload.

    ``tenant_share`` skews which tenant each job belongs to (weights,
    default uniform) — the benchmark uses it to build a flooding heavy
    tenant and a sparse light one.  ``params`` maps kind name to the
    spec params for jobs of that kind.
    """
    if n_jobs < 1:
        raise SchedError("synthetic_trace needs n_jobs >= 1")
    if not tenants:
        raise SchedError("synthetic_trace needs at least one tenant")
    rng = random.Random(seed)
    weights = [float((tenant_share or {}).get(t, 1.0)) for t in tenants]
    arrivals = []
    now = 0.0
    for _ in range(n_jobs):
        now += rng.expovariate(1.0 / mean_interarrival)
        tenant = rng.choices(list(tenants), weights=weights)[0]
        kind = rng.choice(list(kinds))
        spec = JobSpec(
            tenant=tenant,
            kind=kind,
            n_nodes=rng.choice(list(n_nodes_choices)),
            params=dict((params or {}).get(kind, {})),
            priority=rng.choice(list(priority_choices)),
        )
        arrivals.append(Arrival(time=round(now, 6), spec=spec))
    return ArrivalTrace(arrivals=tuple(arrivals))
