"""The multi-tenant control plane: admission, placement, preemption.

The :class:`Scheduler` is one long-lived kernel process plus the
bookkeeping around it.  Tenants :meth:`~Scheduler.submit` jobs at any
time (before the kernel runs or from inside it); the control loop wakes
on every submit and every job exit, re-orders the queue with the
configured :class:`~repro.sched.policy.PlacementPolicy`, and starts
whatever the tenant quotas and free nodes allow.

Design points that the tests pin down:

* **Exclusive, sticky placement** — a node runs one job at a time, and
  a re-queued (preempted) job is only ever re-placed on its *original*
  nodes: its input files, journals, and partial output live on those
  disks, which is precisely what makes checkpoint-aware resume work.
* **Cooperative preemption** — the scheduler never kills a process (a
  mid-collective kill would strand peer ranks in the mailboxes).  It
  sets a flag on the job's :class:`JobControl`; the job observes it at
  its next safe point and raises :class:`~repro.errors.JobPreempted`,
  which every rank's wrapper catches.  Collective programs use
  :meth:`JobControl.sched_point`, which *latches* the verdict per
  (attempt, phase) so all ranks take the same branch — an
  SPMD-inconsistent preempt would deadlock the next barrier.
* **Nothing escapes to the kernel** — rank wrappers catch
  ``BaseException``: a raw process failure would abort the whole
  virtual-time kernel, i.e. every other tenant's run.
* **Determinism** — every choice is appended to an ordered decision
  log (and mirrored as ``sched`` trace instants).  Identical seed +
  arrival trace ⇒ byte-identical :meth:`~Scheduler.decision_log_text`,
  which provenance replay verifies by digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional, Sequence, Union

from repro.errors import AdmissionError, JobPreempted, SchedError
from repro.sched.job import Job, JobSpec, JobState, Quota
from repro.sched.kinds import JobKind, get_kind
from repro.sched.policy import PlacementPolicy, make_policy
from repro.sched.subcluster import SubCluster
from repro.sim.channel import Channel
from repro.sim.trace import SCHED

__all__ = ["JobControl", "Scheduler"]

#: tag-window stride between jobs; comfortably above every user tag in
#: the repo (dsort 40s, groupby 51) plus the reserved collective pad
DEFAULT_TAG_STRIDE = 1024

_LATENCY_BOUNDS = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


class JobControl:
    """The per-job handle the scheduler shares with the job's ranks."""

    def __init__(self, scheduler: "Scheduler", job: Job):
        self._scheduler = scheduler
        self.job = job
        #: live preempt flag, set by the scheduler
        self.preempt_requested = False
        self.preempt_reason = ""
        #: latched sched-point verdicts, keyed by (attempt, phase)
        self._latched: dict[tuple[int, str], bool] = {}

    # -- called by job ranks -------------------------------------------------

    def should_preempt(self) -> bool:
        """Raw flag check, for communication-free runners.

        Ranks may observe the request at different points; each stops
        independently, which is safe only because they never meet in a
        collective.
        """
        return self.preempt_requested

    def sched_point(self, phase: str) -> None:
        """Collective-safe preemption point.

        The first rank to reach ``phase`` this attempt latches the live
        flag; every other rank reuses the latched verdict, so either all
        ranks raise :class:`JobPreempted` here or none do.
        """
        key = (self.job.attempts, phase)
        verdict = self._latched.get(key)
        if verdict is None:
            verdict = self.preempt_requested
            self._latched[key] = verdict
        if verdict:
            raise JobPreempted(
                f"job {self.job.id} preempted at {phase!r}: "
                f"{self.preempt_reason or 'scheduler request'}")

    def grant_speculation(self) -> bool:
        """Ask for one slot of the cross-tenant speculation budget."""
        return self._scheduler._grant_speculation(self.job)

    # -- called by the scheduler ---------------------------------------------

    def reset_for_attempt(self) -> None:
        self.preempt_requested = False
        self.preempt_reason = ""


class Scheduler:
    """Admission, placement, and preemption over one shared cluster."""

    def __init__(self, cluster: Any, quotas: Mapping[str, Quota],
                 policy: Union[PlacementPolicy, str, None] = None, *,
                 preempt: bool = False, speculation_slots: int = 0,
                 tag_stride: int = DEFAULT_TAG_STRIDE, seed: int = 0):
        if not quotas:
            raise SchedError("scheduler needs at least one tenant quota")
        if tag_stride < 64:
            raise SchedError(
                f"tag_stride must be >= 64 to clear the collective pad "
                f"and user tags, got {tag_stride}")
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.quotas: dict[str, Quota] = dict(quotas)
        if policy is None:
            policy = "fifo"
        self.policy: PlacementPolicy = (
            make_policy(policy) if isinstance(policy, str) else policy)
        self.preempt_enabled = preempt
        self.speculation_slots = speculation_slots
        self.tag_stride = tag_stride
        self.seed = seed

        self.jobs: dict[int, Job] = {}
        self._next_id = 0
        self._queued: list[Job] = []
        self._running: dict[int, Job] = {}
        self._controls: dict[int, JobControl] = {}
        self._free: set[int] = set(range(cluster.n_nodes))
        self._wakeup: Channel = Channel(self.kernel, name="sched.wakeup")
        self._closing = False
        self._spec_used = 0
        self._spec_holders: set[int] = set()

        #: accrued virtual runtime (weighted node-seconds) per tenant
        self._vruntime: dict[str, float] = {t: 0.0 for t in self.quotas}
        #: unweighted busy node-seconds, for utilization reporting
        self.busy_node_seconds = 0.0

        #: the ordered, deterministic decision log
        self.decisions: list[dict] = []
        self._seq = 0

        registry = self.kernel.metrics
        if registry is not None:
            self._m_submitted = registry.counter("sched.jobs.submitted")
            self._m_started = registry.counter("sched.attempts.started")
            self._m_done = registry.counter("sched.jobs.done")
            self._m_failed = registry.counter("sched.jobs.failed")
            self._m_preempted = registry.counter("sched.jobs.preempted")
            self._m_queue = registry.gauge("sched.queue.depth",
                                           record_samples=True)
            self._m_free = registry.gauge("sched.nodes.free",
                                          record_samples=True)
            self._m_latency = registry.histogram(
                "sched.job.latency", unit="s", bounds=_LATENCY_BOUNDS)
            self._m_spec_grant = registry.counter(
                "sched.speculation.granted")
            self._m_spec_deny = registry.counter("sched.speculation.denied")
        else:
            self._m_submitted = self._m_started = None
            self._m_done = self._m_failed = self._m_preempted = None
            self._m_queue = self._m_free = self._m_latency = None
            self._m_spec_grant = self._m_spec_deny = None

    # -- public API ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the control-loop process (call once, before kernel.run)."""
        self.kernel.spawn(self._control_loop, name="scheduler")

    def submit(self, spec: JobSpec) -> Job:
        """Admit a spec into the queue, or refuse it outright.

        Admission control rejects specs that could *never* run under
        their tenant's quota or on this cluster; specs that merely have
        to wait are queued.
        """
        quota = self.quotas.get(spec.tenant)
        if quota is None:
            raise AdmissionError(
                f"unknown tenant {spec.tenant!r}; known: "
                f"{', '.join(sorted(self.quotas))}")
        try:
            kind = get_kind(spec.kind)
        except SchedError as exc:
            raise AdmissionError(str(exc)) from None
        if spec.n_nodes > self.cluster.n_nodes:
            raise AdmissionError(
                f"job wants {spec.n_nodes} nodes but the cluster has "
                f"{self.cluster.n_nodes}")
        if spec.n_nodes > quota.max_nodes:
            raise AdmissionError(
                f"job wants {spec.n_nodes} nodes but tenant "
                f"{spec.tenant!r} is capped at {quota.max_nodes}")
        demand = int(kind.demand(spec))
        if demand > quota.max_buffer_bytes:
            raise AdmissionError(
                f"job demands {demand} buffer bytes but tenant "
                f"{spec.tenant!r} is capped at {quota.max_buffer_bytes}")

        job = Job(id=self._next_id, spec=spec,
                  submit_time=self.kernel.now())
        self._next_id += 1
        self.jobs[job.id] = job
        self._queued.append(job)
        if self._m_submitted is not None:
            self._m_submitted.inc()
        self._decide("submit", job,
                     f"kind={spec.kind} n={spec.n_nodes} "
                     f"prio={spec.priority} demand={demand}")
        self._wakeup.put(("wake",))
        return job

    def close(self) -> None:
        """Stop accepting work; the loop exits once the queue drains."""
        self._wakeup.put(("close",))

    def preempt(self, job_id: int, reason: str = "operator request") -> bool:
        """Ask a running job to stop at its next safe point."""
        job = self._running.get(job_id)
        if job is None:
            return False
        return self._request_preempt(job, reason)

    def effective_vruntime(self, tenant: str) -> float:
        """Accrued virtual runtime plus in-flight charges, for fair share."""
        now = self.kernel.now()
        total = self._vruntime[tenant]
        weight = self.quotas[tenant].weight
        for job in self._running.values():
            if job.spec.tenant == tenant:
                total += (now - job.start_time) * job.spec.n_nodes / weight
        return total

    # -- decision log --------------------------------------------------------

    def _decide(self, kind: str, job: Optional[Job] = None,
                detail: str = "") -> None:
        entry = {
            "seq": self._seq,
            "time": round(self.kernel.now(), 9),
            "kind": kind,
            "job": None if job is None else job.id,
            "tenant": None if job is None else job.spec.tenant,
            "detail": detail,
        }
        self._seq += 1
        self.decisions.append(entry)
        tracer = getattr(self.kernel, "tracer", None)
        if tracer is not None:
            tracer.record(entry["time"], "scheduler", SCHED,
                          json.dumps(entry, sort_keys=True,
                                     separators=(",", ":")))

    def decision_log_text(self) -> str:
        """The canonical decision log: one JSON object per line."""
        return "".join(
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
            for entry in self.decisions)

    def decision_digest(self) -> str:
        return hashlib.sha256(
            self.decision_log_text().encode("utf-8")).hexdigest()

    # -- control loop --------------------------------------------------------

    def _control_loop(self) -> None:
        self._decide("start", detail=(
            f"policy={self.policy.name} nodes={self.cluster.n_nodes} "
            f"preempt={self.preempt_enabled} "
            f"speculation_slots={self.speculation_slots}"))
        self._schedule()
        while True:
            msg = self._wakeup.get()
            if msg[0] == "close":
                self._closing = True
            elif msg[0] == "job-exit":
                self._on_exit(msg[1], msg[2])
            self._schedule()
            if self._closing and not self._queued and not self._running:
                break
        done = sum(1 for j in self.jobs.values()
                   if j.state is JobState.DONE)
        failed = sum(1 for j in self.jobs.values()
                     if j.state is JobState.FAILED)
        self._decide("stop", detail=f"done={done} failed={failed} "
                                    f"jobs={len(self.jobs)}")

    def _schedule(self) -> None:
        """Place every queued job the policy order and resources allow."""
        progressed = True
        while progressed:
            progressed = False
            for job in self.policy.order(self._queued, self):
                if not self._quota_ok(job):
                    continue
                if self._placeable(job):
                    self._start(job)
                    progressed = True
                    break  # state changed; re-order the queue
                if self.preempt_enabled:
                    self._consider_preemption(job)
        if self._m_queue is not None:
            self._m_queue.set(len(self._queued))
        if self._m_free is not None:
            self._m_free.set(len(self._free))

    def _placeable(self, job: Job) -> bool:
        if job.alloc is not None:
            # sticky re-placement: the job's data lives on these disks
            return set(job.alloc) <= self._free
        return len(self._free) >= job.spec.n_nodes

    def _quota_ok(self, job: Job) -> bool:
        quota = self.quotas[job.spec.tenant]
        mine = [j for j in self._running.values()
                if j.spec.tenant == job.spec.tenant]
        if len(mine) >= quota.max_inflight:
            return False
        nodes_in_use = sum(j.spec.n_nodes for j in mine)
        if nodes_in_use + job.spec.n_nodes > quota.max_nodes:
            return False
        demand = int(get_kind(job.spec.kind).demand(job.spec))
        in_use = sum(int(get_kind(j.spec.kind).demand(j.spec))
                     for j in mine)
        return in_use + demand <= quota.max_buffer_bytes

    def _start(self, job: Job) -> None:
        if job.alloc is None:
            job.alloc = sorted(self._free)[:job.spec.n_nodes]
        self._free.difference_update(job.alloc)
        self._queued.remove(job)
        job.state = JobState.ADMITTED
        self._decide("admit", job)
        job.attempts += 1
        job.start_time = self.kernel.now()

        tag_base = self.tag_stride * (job.id + 1)
        sub = SubCluster(self.cluster, job.alloc, tag_base)
        ctl = self._controls.get(job.id)
        if ctl is None:
            ctl = JobControl(self, job)
            self._controls[job.id] = ctl
        ctl.reset_for_attempt()

        kind = get_kind(job.spec.kind)
        if job.attempts == 1 and kind.prepare is not None:
            kind.prepare(sub, job, self.seed)
        shared = kind.setup(sub, job, ctl) if kind.setup else None

        job.state = JobState.RUNNING
        self._running[job.id] = job
        self._decide("place", job,
                     f"attempt={job.attempts} nodes={job.alloc} "
                     f"tag_base={tag_base}")
        if self._m_started is not None:
            self._m_started.inc()

        statuses: list[Any] = [None] * job.spec.n_nodes
        procs = sub.spawn_spmd(
            self._rank_main, job, ctl, kind, shared, statuses,
            name=f"{job.prefix}.a{job.attempts}")
        self.kernel.spawn(self._wait_job, job, procs, statuses,
                          name=f"sched.wait.{job.prefix}.a{job.attempts}")

    @staticmethod
    def _rank_main(node: Any, comm: Any, job: Job, ctl: JobControl,
                   kind: JobKind, shared: Any,
                   statuses: list[Any]) -> None:
        try:
            result = kind.runner(node, comm, job, ctl, shared)
        except JobPreempted as exc:
            statuses[comm.rank] = ("preempted", str(exc))
        except BaseException as exc:  # noqa: BLE001 - must not hit kernel
            statuses[comm.rank] = ("fail",
                                   f"{type(exc).__name__}: {exc}")
        else:
            statuses[comm.rank] = ("ok", result)

    def _wait_job(self, job: Job, procs: Sequence[Any],
                  statuses: list[Any]) -> None:
        for proc in procs:
            try:
                proc.join()
            except Exception as exc:  # pragma: no cover - wrapper caught it
                statuses[0] = ("fail", f"{type(exc).__name__}: {exc}")
        self._wakeup.put(("job-exit", job.id, statuses))

    def _on_exit(self, job_id: int, statuses: list[Any]) -> None:
        job = self._running.pop(job_id)
        now = self.kernel.now()
        self._free.update(job.alloc or ())
        elapsed = now - job.start_time
        tenant = job.spec.tenant
        self._vruntime[tenant] += (elapsed * job.spec.n_nodes
                                   / self.quotas[tenant].weight)
        self.busy_node_seconds += elapsed * job.spec.n_nodes
        if job.id in self._spec_holders:
            self._spec_holders.discard(job.id)
            self._spec_used -= 1

        statuses = [("fail", "rank never reported") if s is None else s
                    for s in statuses]
        failures = [s[1] for s in statuses if s[0] == "fail"]
        preempted = any(s[0] == "preempted" for s in statuses)
        if failures:
            job.state = JobState.FAILED
            job.end_time = now
            job.error = str(failures[0])
            self._decide("finish", job, f"failed: {job.error}")
            if self._m_failed is not None:
                self._m_failed.inc()
        elif preempted:
            job.state = JobState.PREEMPTED
            job.preemptions += 1
            self._decide("preempt-stop", job,
                         f"attempt={job.attempts} requeued")
            if self._m_preempted is not None:
                self._m_preempted.inc()
            job.state = JobState.QUEUED
            self._queued.append(job)
        else:
            job.state = JobState.DONE
            job.end_time = now
            job.result = [s[1] for s in statuses]
            self._decide("finish", job,
                         f"ok attempts={job.attempts} "
                         f"latency={round(job.latency, 9)}")
            if self._m_done is not None:
                self._m_done.inc()
            if self._m_latency is not None:
                self._m_latency.observe(job.latency)

    # -- preemption ----------------------------------------------------------

    def _request_preempt(self, job: Job, reason: str) -> bool:
        ctl = self._controls.get(job.id)
        if ctl is None or ctl.preempt_requested:
            return False
        ctl.preempt_requested = True
        ctl.preempt_reason = reason
        self._decide("preempt-request", job, reason)
        return True

    def _consider_preemption(self, job: Job) -> None:
        """Evict strictly-lower-priority work to place ``job``.

        Greedy: victims in ascending priority (youngest first within a
        level) until their nodes plus the free pool would cover the
        job.  Requests are cooperative, so the nodes arrive later —
        placement happens on a future ``job-exit`` wakeup.
        """
        needed = (len(job.alloc) if job.alloc is not None
                  else job.spec.n_nodes)
        victims = sorted(
            (j for j in self._running.values()
             if j.spec.priority < job.spec.priority),
            key=lambda j: (j.spec.priority, -j.id))
        would_free = len(self._free)
        for victim in victims:
            if would_free >= needed:
                break
            ctl = self._controls.get(victim.id)
            if ctl is not None and ctl.preempt_requested:
                would_free += victim.spec.n_nodes
                continue
            if self._request_preempt(
                    victim,
                    f"make room for job {job.id} "
                    f"(priority {job.spec.priority} > "
                    f"{victim.spec.priority})"):
                would_free += victim.spec.n_nodes

    def _grant_speculation(self, job: Job) -> bool:
        if self._spec_used < self.speculation_slots:
            self._spec_used += 1
            self._spec_holders.add(job.id)
            self._decide("speculate-grant", job,
                         f"slot {self._spec_used}/{self.speculation_slots}")
            if self._m_spec_grant is not None:
                self._m_spec_grant.inc()
            return True
        self._decide("speculate-deny", job,
                     f"budget exhausted ({self.speculation_slots} slots)")
        if self._m_spec_deny is not None:
            self._m_spec_deny.inc()
        return False
