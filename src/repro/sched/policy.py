"""Pluggable placement policies: who runs next on the shared cluster.

A policy orders the queued jobs; the scheduler then walks that order,
admitting and placing each job the cluster and its tenant's quota can
take.  Ordering is the whole interface — placement itself (which
physical nodes) is deterministic (lowest-numbered free nodes), so two
runs with the same policy, seed, and arrival trace produce byte-identical
decision logs.

* :class:`FifoPolicy` — strict submission order, the baseline every
  other policy is benchmarked against;
* :class:`PriorityPolicy` — higher ``spec.priority`` first, FIFO within
  a priority level; pairs with priority preemption;
* :class:`FairSharePolicy` — weighted fair share over *virtual
  runtime*: each tenant accrues ``node_seconds / weight`` as its jobs
  run, and the tenant with the smallest accrued share goes first.  A
  tenant that floods the queue cannot starve a light tenant: the light
  tenant's vruntime stays small, so its occasional jobs jump the flood.

All tie-breaks end on ``job.id`` (submission order), never on dict or
set iteration order — determinism is an acceptance criterion, not a
nice-to-have.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import SchedError
from repro.sched.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.scheduler import Scheduler

__all__ = ["FairSharePolicy", "FifoPolicy", "PlacementPolicy",
           "PriorityPolicy", "make_policy"]


class PlacementPolicy:
    """Orders the queue; subclasses override :meth:`order`."""

    name = "policy"

    def order(self, queued: Sequence[Job],
              sched: "Scheduler") -> list[Job]:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class FifoPolicy(PlacementPolicy):
    """First submitted, first placed."""

    name = "fifo"

    def order(self, queued: Sequence[Job], sched: "Scheduler") -> list[Job]:
        return sorted(queued, key=lambda job: job.id)


class PriorityPolicy(PlacementPolicy):
    """Highest ``spec.priority`` first; FIFO within a level."""

    name = "priority"

    def order(self, queued: Sequence[Job], sched: "Scheduler") -> list[Job]:
        return sorted(queued, key=lambda job: (-job.spec.priority, job.id))


class FairSharePolicy(PlacementPolicy):
    """Weighted fair share over accrued virtual runtime.

    The tenant whose jobs have consumed the least weighted node-time —
    including charges still accruing for jobs running right now — gets
    the head of the line.  Within a tenant, FIFO.
    """

    name = "fair"

    def order(self, queued: Sequence[Job], sched: "Scheduler") -> list[Job]:
        return sorted(queued, key=lambda job: (
            sched.effective_vruntime(job.spec.tenant), job.id))


_POLICIES = {
    FifoPolicy.name: FifoPolicy,
    PriorityPolicy.name: PriorityPolicy,
    FairSharePolicy.name: FairSharePolicy,
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by CLI/benchmark name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise SchedError(
            f"unknown policy {name!r}; choose from "
            f"{', '.join(sorted(_POLICIES))}") from None
