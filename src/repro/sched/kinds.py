"""The registry of schedulable job kinds.

A :class:`JobKind` adapts one SPMD program to the scheduler's contract:

* ``prepare(sub, job, seed)`` — untimed dataset setup on the allocated
  nodes, run once before the first attempt (inputs are namespaced by
  ``job.prefix`` so concurrent jobs never collide on file names);
* ``setup(sub, job, ctl)`` — per-attempt shared state built once and
  handed to every rank (e.g. a dsort job's
  :class:`~repro.recover.RecoveryManager`); may be None;
* ``runner(node, comm, job, ctl, shared)`` — the per-rank main.  It may
  raise :class:`~repro.errors.JobPreempted` at a cooperative safe point
  (``ctl.sched_point`` for collective programs, ``ctl.should_preempt``
  for communication-free ones); any other exception marks the job
  FAILED, and the scheduler's wrapper guarantees nothing escapes to the
  kernel — a raw kernel-process failure would abort every tenant's run;
* ``demand(spec)`` — the job's memory-buffer demand in bytes, charged
  against the tenant's :class:`~repro.sched.job.Quota` while running.

Built-in kinds: ``dsort``, ``csort``, ``groupby`` (the real pipelined
programs, heterogeneous workloads for the multitenant benchmark) and
``blocks`` (a modeled block-loop job with a real on-disk journal —
cheap enough to schedule by the thousand, resumable block by block).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import JobPreempted, SchedError

__all__ = ["JobKind", "get_kind", "kind_names", "register_kind"]


@dataclasses.dataclass(frozen=True)
class JobKind:
    """One schedulable program, as registered with the scheduler."""

    name: str
    runner: Callable[..., Any]
    demand: Callable[..., int]
    prepare: Optional[Callable[..., None]] = None
    setup: Optional[Callable[..., Any]] = None


_KINDS: dict[str, JobKind] = {}


def register_kind(kind: JobKind) -> JobKind:
    """Register (or replace) a job kind under its name."""
    _KINDS[kind.name] = kind
    return kind


def get_kind(name: str) -> JobKind:
    try:
        return _KINDS[name]
    except KeyError:
        raise SchedError(
            f"unknown job kind {name!r}; registered kinds: "
            f"{', '.join(sorted(_KINDS))}") from None


def kind_names() -> list[str]:
    return sorted(_KINDS)


# ---------------------------------------------------------------------------
# dataset helpers
# ---------------------------------------------------------------------------


def _job_rng(job: Any, seed: int, rank: int) -> np.random.Generator:
    """Deterministic per-(run, job, rank) generator for input data."""
    return np.random.default_rng([seed, job.id, rank])


def _poke_keys(sub: Any, job: Any, seed: int, input_name: str,
               records_per_node: int, record_bytes: int) -> None:
    from repro.pdm.blockfile import RecordFile
    from repro.pdm.records import RecordSchema

    schema = RecordSchema(record_bytes)
    for rank, node in enumerate(sub.nodes):
        keys = _job_rng(job, seed, rank).integers(
            0, np.iinfo(np.uint64).max, size=records_per_node,
            dtype=np.uint64)
        rf = RecordFile(node.disk, input_name, schema)
        rf.delete()
        rf.poke(0, schema.from_keys(keys))


# ---------------------------------------------------------------------------
# dsort
# ---------------------------------------------------------------------------


def _dsort_config(job: Any) -> Any:
    from repro.sorting.dsort.dsort import DsortConfig

    p = job.spec.params
    prefix = job.prefix
    return DsortConfig(
        block_records=p.get("block_records", 256),
        vertical_block_records=p.get("vertical_block_records", 128),
        out_block_records=p.get("out_block_records", 256),
        nbuffers=p.get("nbuffers", 4),
        oversample=p.get("oversample", 8),
        input_file=f"{prefix}-input",
        output_file=f"{prefix}-output",
        run_prefix=f"{prefix}-run",
        seed=p.get("seed", 0),
        name_prefix=f"{prefix}.dsort",
    )


def _dsort_prepare(sub: Any, job: Any, seed: int) -> None:
    _poke_keys(sub, job, seed, f"{job.prefix}-input",
               job.spec.params.get("records_per_node", 1024),
               job.spec.params.get("record_bytes", 16))


def _dsort_setup(sub: Any, job: Any, ctl: Any) -> Any:
    """Build the job's recovery manager when checkpointing is on.

    ``params["recover"]`` arms journaled block checkpoints, which is
    what makes a *preempted* dsort resume from its last durable block
    instead of restarting; ``params["speculate"]`` additionally asks the
    scheduler for a slot of the cross-tenant speculation budget (the
    grant/deny lands in the decision log).
    """
    p = job.spec.params
    if not p.get("recover", False):
        return None
    from repro.recover import RecoverPolicy, RecoveryManager, SpeculationPolicy

    speculation = None
    if p.get("speculate", False) and ctl.grant_speculation():
        speculation = SpeculationPolicy()
    return RecoveryManager(sub, RecoverPolicy(
        checkpoint=True, backup_runs=bool(speculation),
        reassign=False, speculation=speculation,
        journal_every=p.get("journal_every", 1)))


def _dsort_runner(node: Any, comm: Any, job: Any, ctl: Any,
                  shared: Any) -> dict:
    from repro.pdm.records import RecordSchema
    from repro.sorting.dsort.dsort import run_dsort

    schema = RecordSchema(job.spec.params.get("record_bytes", 16))
    report = run_dsort(node, comm, schema, _dsort_config(job),
                       recover=shared, sched_point=ctl.sched_point)
    return {"rank": report.rank, "records": report.partition_records,
            "time": report.total_time}


def _dsort_demand(spec: Any) -> int:
    p = spec.params
    rec = p.get("record_bytes", 16)
    nbuf = p.get("nbuffers", 4)
    blocks = (p.get("block_records", 256)
              + p.get("vertical_block_records", 128)
              + p.get("out_block_records", 256))
    return spec.n_nodes * nbuf * blocks * rec


# ---------------------------------------------------------------------------
# csort
# ---------------------------------------------------------------------------


def _csort_prepare(sub: Any, job: Any, seed: int) -> None:
    _poke_keys(sub, job, seed, f"{job.prefix}-input",
               job.spec.params.get("records_per_node", 1024),
               job.spec.params.get("record_bytes", 16))


def _csort_block_default(spec: Any) -> int:
    """A stripe block satisfying columnsort's P*block <= r shape rule
    (r = total/P² records per matrix column) with headroom."""
    rpn = spec.params.get("records_per_node", 1024)
    return max(8, rpn // (2 * spec.n_nodes * spec.n_nodes))


def _csort_runner(node: Any, comm: Any, job: Any, ctl: Any,
                  shared: Any) -> dict:
    from repro.pdm.records import RecordSchema
    from repro.sorting.columnsort.csort import CsortConfig, run_csort

    p = job.spec.params
    prefix = job.prefix
    config = CsortConfig(
        out_block_records=p.get("out_block_records",
                                _csort_block_default(job.spec)),
        nbuffers=p.get("nbuffers", 4),
        input_file=f"{prefix}-input",
        output_file=f"{prefix}-output",
        temp1_file=f"{prefix}-csort-L1",
        temp2_file=f"{prefix}-csort-L2",
        name_prefix=f"{prefix}.csort",
    )
    schema = RecordSchema(p.get("record_bytes", 16))
    report = run_csort(node, comm, schema, config)
    return {"rank": report.rank, "time": report.total_time}


def _csort_demand(spec: Any) -> int:
    p = spec.params
    block = p.get("out_block_records", _csort_block_default(spec))
    return (spec.n_nodes * p.get("nbuffers", 4) * block
            * p.get("record_bytes", 16) * 3)


# ---------------------------------------------------------------------------
# groupby (satellite: promoted from repro.apps to a schedulable kind)
# ---------------------------------------------------------------------------


def _groupby_prepare(sub: Any, job: Any, seed: int) -> None:
    from repro.apps.groupby import KeyValueSchema
    from repro.pdm.blockfile import RecordFile

    p = job.spec.params
    schema = KeyValueSchema()
    n = p.get("records_per_node", 1024)
    n_keys = max(1, p.get("distinct_keys", 64))
    for rank, node in enumerate(sub.nodes):
        rng = _job_rng(job, seed, rank)
        keys = rng.integers(0, n_keys, size=n, dtype=np.uint64)
        values = rng.integers(0, 1 << 20, size=n, dtype=np.uint64)
        rf = RecordFile(node.disk, f"{job.prefix}-kv-input", schema)
        rf.delete()
        rf.poke(0, schema.make(keys, values))


def _groupby_runner(node: Any, comm: Any, job: Any, ctl: Any,
                    shared: Any) -> dict:
    from repro.apps.groupby import GroupByConfig, run_groupby

    p = job.spec.params
    prefix = job.prefix
    config = GroupByConfig(
        block_records=p.get("block_records", 512),
        vertical_block_records=p.get("vertical_block_records", 128),
        out_block_records=p.get("out_block_records", 512),
        nbuffers=p.get("nbuffers", 4),
        input_file=f"{prefix}-kv-input",
        output_file=f"{prefix}-kv-groups",
        run_prefix=f"{prefix}-groupby-run",
        name_prefix=f"{prefix}.groupby",
    )
    report = run_groupby(node, comm, config)
    return {"rank": report.rank, "records": report.input_records,
            "distinct": report.distinct_keys, "time": report.total_time}


def _groupby_demand(spec: Any) -> int:
    p = spec.params
    blocks = (p.get("block_records", 512)
              + p.get("vertical_block_records", 128)
              + p.get("out_block_records", 512))
    return spec.n_nodes * p.get("nbuffers", 4) * blocks * 16


# ---------------------------------------------------------------------------
# blocks: the modeled, journaled block loop
# ---------------------------------------------------------------------------


def _blocks_runner(node: Any, comm: Any, job: Any, ctl: Any,
                   shared: Any) -> dict:
    """N blocks of compute + a timed block write, journaled per block.

    Each rank works independently (no collectives), so preemption checks
    the raw flag before every block: ranks may stop at different block
    indices, and each resumes exactly past its own journaled blocks —
    the journal is a real :class:`~repro.pdm.Journal` on the node's
    timed disk, CRC'd lines included.
    """
    from repro.pdm.blockfile import RecordFile
    from repro.pdm.journal import Journal
    from repro.pdm.records import RecordSchema

    p = job.spec.params
    n_blocks = p.get("blocks", 8)
    block_records = max(1, p.get("block_bytes", 1 << 14) // 16)
    compute = p.get("compute", 0.002)
    schema = RecordSchema(16)
    prefix = job.prefix
    jrn = Journal(node.disk, f"{prefix}-blocks.journal")
    out = RecordFile(node.disk, f"{prefix}-blocks.out", schema)
    durable: set[int] = set()
    for entry in jrn.load():
        durable.update(int(b) for b in entry.get("blocks", ()))
    worked = 0
    try:
        for b in range(n_blocks):
            if b in durable:
                continue
            if ctl.should_preempt():
                raise JobPreempted(
                    f"job {job.id} rank {comm.rank} preempted before "
                    f"block {b}")
            node.compute(compute)
            keys = np.full(block_records, b, dtype=np.uint64)
            out.write(b * block_records, schema.from_keys(keys))
            jrn.append({"blocks": [b]})
            worked += 1
    finally:
        # measured work per attempt: the preemption benchmark asserts
        # resumed attempts redo none of the durable blocks
        job.progress[f"worked.r{comm.rank}.a{job.attempts}"] = worked
    return {"rank": comm.rank, "worked": worked,
            "resumed": len(durable), "blocks": n_blocks}


def _blocks_demand(spec: Any) -> int:
    return spec.n_nodes * 2 * spec.params.get("block_bytes", 1 << 14)


register_kind(JobKind(name="dsort", runner=_dsort_runner,
                      demand=_dsort_demand, prepare=_dsort_prepare,
                      setup=_dsort_setup))
register_kind(JobKind(name="csort", runner=_csort_runner,
                      demand=_csort_demand, prepare=_csort_prepare))
register_kind(JobKind(name="groupby", runner=_groupby_runner,
                      demand=_groupby_demand, prepare=_groupby_prepare))
register_kind(JobKind(name="blocks", runner=_blocks_runner,
                      demand=_blocks_demand))
