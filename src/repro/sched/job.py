"""Job lifecycle records and per-tenant quotas.

A :class:`JobSpec` is the immutable submission (who wants what run
where); a :class:`Job` is the scheduler's mutable bookkeeping around it
(state machine, timestamps, attempts, allocation, result).  A
:class:`Quota` bounds one tenant's concurrent footprint on the shared
cluster; admission checks it, nothing else does.

State machine::

    QUEUED -> ADMITTED -> RUNNING -> DONE
                             |  \\-> FAILED
                             \\---> PREEMPTED -> QUEUED (re-queued,
                                                 progress retained)

ADMITTED is a transit state: a job passes quota (admit decision) and is
placed (place decision) in the same scheduling step when nodes are free,
so observers usually see QUEUED -> RUNNING with both decisions logged.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Optional

from repro.errors import SchedError

__all__ = ["Job", "JobSpec", "JobState", "Quota"]


class JobState(enum.Enum):
    """Lifecycle states of a scheduled job."""

    QUEUED = "queued"        #: submitted, waiting for quota and nodes
    ADMITTED = "admitted"    #: passed admission, awaiting placement
    RUNNING = "running"      #: SPMD processes live on allocated nodes
    PREEMPTED = "preempted"  #: stopped at a safe point, about to re-queue
    DONE = "done"            #: all ranks returned normally
    FAILED = "failed"        #: a rank reported an error

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


@dataclasses.dataclass(frozen=True)
class Quota:
    """One tenant's concurrent-footprint bounds (checked at admission).

    ``weight`` is not a bound: it is the tenant's fair-share weight — a
    tenant with weight 2 accrues virtual runtime at half the rate per
    node-second, so the fair-share policy schedules it twice as often.
    """

    #: max nodes allocated to the tenant's running jobs at once
    max_nodes: int = 4
    #: max jobs admitted-or-running at once
    max_inflight: int = 4
    #: max summed memory-buffer demand of running jobs (bytes)
    max_buffer_bytes: int = 64 * 1024 * 1024
    #: fair-share weight (larger = larger share)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise SchedError("quota max_nodes must be >= 1")
        if self.max_inflight < 1:
            raise SchedError("quota max_inflight must be >= 1")
        if self.max_buffer_bytes < 1:
            raise SchedError("quota max_buffer_bytes must be >= 1")
        if self.weight <= 0:
            raise SchedError("quota weight must be > 0")

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, doc: dict) -> "Quota":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """An immutable job submission.

    ``params`` is kind-specific configuration (record counts, block
    sizes, seeds, ...) interpreted by the kind's runner; it must stay
    JSON-able because specs ride along in arrival traces and provenance
    records.
    """

    tenant: str
    kind: str
    n_nodes: int = 1
    params: dict = dataclasses.field(default_factory=dict)
    #: larger = more urgent (the priority policy sorts on it, and
    #: priority preemption only ever evicts strictly lower priorities)
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise SchedError("job spec needs a tenant name")
        if not self.kind:
            raise SchedError("job spec needs a kind name")
        if self.n_nodes < 1:
            raise SchedError("job spec n_nodes must be >= 1")

    def to_json(self) -> dict:
        return {"tenant": self.tenant, "kind": self.kind,
                "n_nodes": self.n_nodes, "params": dict(self.params),
                "priority": self.priority}

    @classmethod
    def from_json(cls, doc: dict) -> "JobSpec":
        return cls(tenant=doc["tenant"], kind=doc["kind"],
                   n_nodes=doc.get("n_nodes", 1),
                   params=dict(doc.get("params", {})),
                   priority=doc.get("priority", 0))


@dataclasses.dataclass
class Job:
    """The scheduler's mutable record of one submitted job."""

    id: int
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submit_time: float = 0.0
    start_time: float = 0.0      #: start of the *current/last* attempt
    end_time: float = 0.0        #: set when the job reaches DONE/FAILED
    attempts: int = 0            #: placement attempts (1 on a clean run)
    preemptions: int = 0
    #: physical node ranks of the current/last allocation
    alloc: Optional[list[int]] = None
    #: per-rank results of the final successful attempt
    result: Optional[list[Any]] = None
    error: Optional[str] = None
    #: scratch shared across attempts (runners record progress counters
    #: here; durable resume state itself lives in on-disk journals)
    progress: dict = dataclasses.field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Submit-to-completion latency (valid once terminal)."""
        return self.end_time - self.submit_time

    @property
    def prefix(self) -> str:
        """Per-job namespace prefix for files, programs, and metrics."""
        return f"j{self.id}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Job {self.id} {self.spec.tenant}/{self.spec.kind} "
                f"n={self.spec.n_nodes} {self.state.value}>")
