"""A job's window onto the shared cluster: rank and tag translation.

Every SPMD main in this repo talks to the cluster through a narrow
surface: ``comm.rank``/``comm.size`` (local identity), the
:class:`~repro.cluster.mpi.Comm` operations, and its node's disk/cores.
:class:`SubCluster` re-creates that surface over a *subset* of the
physical nodes: the job sees contiguous local ranks ``0..k-1``, while
every message really travels between the allocated physical nodes —
through the same NICs and bounded mailboxes every other tenant contends
for.

Isolation comes from two translations in :class:`JobNetwork`:

* **ranks** — local rank ``i`` maps to physical node ``alloc[i]`` on
  send and back on receive, so wildcard receives still report local
  sources;
* **tags** — every tag (user tags ``>= 0`` and the collectives' reserved
  negative tags ``-8..-1``) shifts into a per-job window
  ``[tag_base + TAG_PAD - 8, tag_base + TAG_PAD + max_user_tag]``.
  Jobs get disjoint windows (the scheduler strides ``tag_base`` by
  1024 per job), so a message can never match another job's receive
  even while mailbox *capacity* stays shared and contended.

The scheduler allocates nodes exclusively (one job per node at a time),
so a wildcard-tag receive cannot race another tenant's traffic either.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional, Sequence

from repro.cluster.mpi import Comm
from repro.cluster.network import Message, Network
from repro.errors import SchedError
from repro.sim.kernel import Process

__all__ = ["JobNetwork", "SubCluster", "TAG_PAD"]

#: shifts the collectives' reserved tags (-8..-1) into the job window,
#: keeping translated tags strictly positive for any tag_base >= 0
TAG_PAD = 16


class JobNetwork:
    """Rank- and tag-translating view of the shared physical network.

    Implements exactly the surface :class:`~repro.cluster.mpi.Comm`
    uses: ``n_nodes``, ``send``, ``recv``, ``iprobe``.
    """

    def __init__(self, network: Network, alloc: Sequence[int],
                 tag_base: int):
        if len(set(alloc)) != len(alloc):
            raise SchedError(f"allocation has duplicate nodes: {alloc}")
        for p in alloc:
            if not 0 <= p < network.n_nodes:
                raise SchedError(
                    f"allocated node {p} out of range "
                    f"[0, {network.n_nodes})")
        if tag_base < 0:
            raise SchedError(f"tag_base must be >= 0, got {tag_base}")
        self.network = network
        self.alloc = tuple(alloc)
        self.tag_base = tag_base
        self.n_nodes = len(self.alloc)
        self._local = {p: local for local, p in enumerate(self.alloc)}

    def _phys_tag(self, tag: Optional[int]) -> Optional[int]:
        return None if tag is None else self.tag_base + TAG_PAD + tag

    def send(self, src: int, dst: int, payload: Any, tag: int,
             nbytes: int, meta: Optional[dict] = None) -> None:
        self.network.send(self.alloc[src], self.alloc[dst], payload,
                          self.tag_base + TAG_PAD + tag, nbytes, meta)

    def recv(self, dst: int, source: Optional[int] = None,
             tag: Optional[int] = None) -> Message:
        phys_source = None if source is None else self.alloc[source]
        msg = self.network.recv(self.alloc[dst], phys_source,
                                self._phys_tag(tag))
        return dataclasses.replace(
            msg, src=self._local[msg.src],
            tag=msg.tag - self.tag_base - TAG_PAD)

    def iprobe(self, dst: int, source: Optional[int] = None,
               tag: Optional[int] = None) -> bool:
        phys_source = None if source is None else self.alloc[source]
        return self.network.iprobe(self.alloc[dst], phys_source,
                                   self._phys_tag(tag))


class SubCluster:
    """The cluster facade handed to one job: k local ranks over the
    allocated physical nodes.

    Exposes the attribute surface SPMD drivers and the recovery manager
    expect from a :class:`~repro.cluster.cluster.Cluster`: ``kernel``,
    ``n_nodes``, ``nodes``, ``comms``, ``hardware``, ``injector``,
    ``spawn_spmd``.  ``injector`` is always None — scheduler-level
    preemption is cooperative, not a fault, and a shared injector's
    physical-rank crash schedule would misread under local ranks.
    """

    def __init__(self, cluster: Any, alloc: Sequence[int], tag_base: int):
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.hardware = cluster.hardware
        self.injector = None
        self.alloc = tuple(alloc)
        self.network = JobNetwork(cluster.network, alloc, tag_base)
        self.nodes = [cluster.nodes[p] for p in self.alloc]
        self.comms = [Comm(self.network, local)
                      for local in range(len(self.alloc))]

    @property
    def n_nodes(self) -> int:
        return len(self.alloc)

    def node(self, rank: int) -> Any:
        return self.nodes[rank]

    def comm(self, rank: int) -> Comm:
        return self.comms[rank]

    def spawn_spmd(self, main: Callable[..., Any], *args: Any,
                   name: str = "job") -> list[Process]:
        """Spawn ``main(node, comm, *args)`` once per local rank."""
        return [
            self.kernel.spawn(main, self.nodes[rank], self.comms[rank],
                              *args, name=f"{name}@{rank}")
            for rank in range(self.n_nodes)
        ]
