"""repro.sched: a multi-tenant scheduler over one shared simulated cluster.

The ROADMAP's north star promotes :mod:`repro.cluster` from a
single-program cluster into a shared, long-lived service: many tenants
submit FG jobs (dsort, csort, groupby, modeled block jobs) as an
unbounded arriving stream, and a scheduler decides admission, placement,
and preemption over the same nodes whose disk arms, NICs, and cores
already model contention.

Layers:

* :mod:`repro.sched.job` — :class:`JobSpec`/:class:`Job` lifecycle
  (QUEUED → ADMITTED → RUNNING → {DONE, FAILED, PREEMPTED → QUEUED})
  and per-tenant :class:`Quota`;
* :mod:`repro.sched.subcluster` — a rank- and tag-translating window
  onto the shared cluster, so unmodified SPMD mains run on a subset of
  nodes without seeing other tenants' traffic;
* :mod:`repro.sched.kinds` — the registry of schedulable job kinds;
* :mod:`repro.sched.policy` — pluggable placement policies (FIFO,
  priority, weighted fair-share over virtual runtime);
* :mod:`repro.sched.scheduler` — the control-plane process: admission
  quotas, placement, preemption with checkpoint-aware resume, the
  cross-tenant speculation budget, ``sched.*`` metrics, and a
  deterministic decision log recorded as ``sched`` trace instants;
* :mod:`repro.sched.workload` — arrival traces (JSON round-trip) and a
  seeded synthetic generator;
* :mod:`repro.sched.harness` — :func:`run_schedule`, the one-call
  entry point that also captures a replayable provenance record.
"""

from repro.sched.harness import SchedReport, run_schedule
from repro.sched.job import Job, JobSpec, JobState, Quota
from repro.sched.kinds import JobKind, get_kind, kind_names, register_kind
from repro.sched.policy import (
    FairSharePolicy,
    FifoPolicy,
    PlacementPolicy,
    PriorityPolicy,
    make_policy,
)
from repro.sched.scheduler import JobControl, Scheduler
from repro.sched.subcluster import JobNetwork, SubCluster
from repro.sched.workload import Arrival, ArrivalTrace, synthetic_trace

__all__ = [
    "Arrival",
    "ArrivalTrace",
    "FairSharePolicy",
    "FifoPolicy",
    "Job",
    "JobControl",
    "JobKind",
    "JobNetwork",
    "JobSpec",
    "JobState",
    "PlacementPolicy",
    "PriorityPolicy",
    "Quota",
    "SchedReport",
    "Scheduler",
    "SubCluster",
    "get_kind",
    "kind_names",
    "make_policy",
    "register_kind",
    "run_schedule",
    "synthetic_trace",
]
