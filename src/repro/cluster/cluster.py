"""Cluster assembly and SPMD execution.

:class:`Cluster` wires P nodes to one network on one kernel and runs SPMD
programs: the same per-node main function, spawned once per rank, exactly
like ``mpiexec -n P`` launches the paper's programs.  Each per-node main
receives its :class:`~repro.cluster.node.Node` and
:class:`~repro.cluster.mpi.Comm`, and typically assembles FG pipelines.

Typical use::

    cluster = Cluster(n_nodes=16)
    results = cluster.run(node_main, extra_arg)   # one result per rank
    elapsed = cluster.kernel.now()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.cluster.hardware import HardwareModel
from repro.cluster.mpi import Comm
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.storage import Storage
from repro.errors import ConfigError
from repro.sim.kernel import Kernel, Process
from repro.sim.virtual import VirtualTimeKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy

__all__ = ["Cluster"]


class Cluster:
    """P simulated nodes + network + kernel, ready to run SPMD programs.

    Pass a :class:`~repro.faults.FaultPlan` to run the cluster under
    deterministic fault injection: one
    :class:`~repro.faults.FaultInjector` (exposed as :attr:`injector`) is
    shared by every disk, NIC, and node, and ``retry_policy`` governs how
    transient faults are absorbed (defaults to
    :class:`~repro.faults.RetryPolicy`'s bounded backoff).
    """

    def __init__(self, n_nodes: int,
                 hardware: Optional[HardwareModel] = None,
                 kernel: Optional[Kernel] = None,
                 storages: Optional[Sequence[Storage]] = None,
                 mailbox_capacity_bytes: Optional[int] = None,
                 fault_plan: Optional["FaultPlan"] = None,
                 retry_policy: Optional["RetryPolicy"] = None):
        if n_nodes < 1:
            raise ConfigError("cluster needs at least one node")
        if mailbox_capacity_bytes is not None and mailbox_capacity_bytes <= 0:
            # validated here, not first at message time: a zero-capacity
            # mailbox cannot admit any message, which used to surface as
            # a late all-processes-blocked deadlock instead of an error
            raise ConfigError(
                f"mailbox_capacity_bytes must be > 0, got "
                f"{mailbox_capacity_bytes} (a mailbox that can never "
                f"admit a message deadlocks every receive)")
        self.hardware = hardware if hardware is not None \
            else HardwareModel.paper_cluster()
        self.kernel = kernel if kernel is not None else VirtualTimeKernel()
        if storages is not None and len(storages) != n_nodes:
            # one storage partition per node, exactly: a node-count vs.
            # partition-count mismatch would strand data (or strand a
            # rank waiting on input that lives on no disk)
            raise ConfigError(
                f"cluster has {n_nodes} node(s) but {len(storages)} "
                f"storage partition(s); pass exactly one storage per node")
        self.injector: Optional["FaultInjector"] = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector
            self.injector = FaultInjector(self.kernel, fault_plan, n_nodes)
        self.retry_policy = retry_policy
        self.network = Network(self.kernel, self.hardware, n_nodes,
                               mailbox_capacity_bytes=mailbox_capacity_bytes,
                               injector=self.injector, retry=retry_policy)
        self.nodes = [
            Node(self.kernel, rank, self.hardware,
                 storages[rank] if storages is not None else None,
                 injector=self.injector, retry=retry_policy)
            for rank in range(n_nodes)
        ]
        self.comms = [Comm(self.network, rank) for rank in range(n_nodes)]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, rank: int) -> Node:
        return self.nodes[rank]

    def comm(self, rank: int) -> Comm:
        return self.comms[rank]

    # -- SPMD execution ---------------------------------------------------------

    def spawn_spmd(self, main: Callable[..., Any], *args: Any,
                   name: str = "main") -> list[Process]:
        """Spawn ``main(node, comm, *args)`` once per rank; caller runs kernel."""
        return [
            self.kernel.spawn(main, self.nodes[rank], self.comms[rank],
                              *args, name=f"{name}@{rank}")
            for rank in range(self.n_nodes)
        ]

    def run(self, main: Callable[..., Any], *args: Any) -> list[Any]:
        """Spawn SPMD mains, run the kernel to completion, return results."""
        procs = self.spawn_spmd(main, *args)
        self.kernel.run()
        return [proc.result for proc in procs]

    # -- aggregate stats ------------------------------------------------------------

    def total_bytes_io(self) -> int:
        """Total bytes read+written across every disk in the cluster."""
        return sum(node.disk.bytes_total for node in self.nodes)

    def total_bytes_sent(self) -> int:
        """Total bytes put on the wire (excludes loopback)."""
        return sum(self.network.bytes_sent)

    def max_disk_busy(self) -> float:
        """Busy time of the most heavily used disk (the paper's imbalance
        concern for dsort: some disks do more than the average volume)."""
        return max(node.disk.busy_time() for node in self.nodes)
