"""MPI-like communicator over the simulated network.

The paper's programs use a thread-safe MPI (``MPI_Send``/``MPI_Recv``,
``MPI_Alltoall``, ``MPI_Sendrecv_replace``, broadcast of splitters, ...).
:class:`Comm` provides the equivalents.  One :class:`Comm` exists per node;
any pipeline-stage thread on that node may call it (the kernel serializes
state access), which is precisely the "link in a thread-safe MPI"
requirement the paper states.

Conventions:

* user tags are non-negative integers; collectives use a reserved negative
  tag space internally;
* payloads are usually numpy arrays (sized by ``.nbytes``); any other
  object is sized by its pickled length;
* ``recv`` returns ``(source, payload)`` so wildcard receives remain
  informative;
* collectives must be called by every rank in the same order (SPMD
  discipline); per-(source, tag) FIFO matching then keeps successive
  collectives from interfering.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.cluster.network import Network
from repro.errors import CommError

__all__ = ["Comm", "ANY_SOURCE", "ANY_TAG"]

#: wildcard source for :meth:`Comm.recv`
ANY_SOURCE: Optional[int] = None
#: wildcard tag for :meth:`Comm.recv`
ANY_TAG: Optional[int] = None

# reserved internal tags (all negative; user tags must be >= 0)
_TAG_BCAST = -1
_TAG_BARRIER_IN = -2
_TAG_BARRIER_OUT = -3
_TAG_GATHER = -4
_TAG_SCATTER = -5
_TAG_ALLTOALL = -6
_TAG_SENDRECV = -7
_TAG_REDUCE = -8


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload: array bytes, or pickled length otherwise."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


class Comm:
    """Communicator bound to one node of the cluster."""

    def __init__(self, network: Network, rank: int):
        self.network = network
        self.rank = rank
        self.size = network.n_nodes

    # -- point to point ------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0,
             meta: Optional[dict] = None) -> None:
        """Blocking (eager) send: returns once the bytes left our NIC.

        ``meta`` is a small out-of-band dict (block ids, offsets) charged
        as a fixed 64-byte header on top of the payload size.
        """
        if tag < 0:
            raise CommError(f"user tags must be >= 0, got {tag}")
        nbytes = payload_nbytes(payload) + (64 if meta else 0)
        self.network.send(self.rank, dest, payload, tag, nbytes, meta)

    def recv(self, source: Optional[int] = ANY_SOURCE,
             tag: Optional[int] = ANY_TAG) -> tuple[int, Any]:
        """Blocking receive; returns ``(source, payload)``."""
        msg = self.recv_msg(source, tag)
        return msg.src, msg.payload

    def recv_msg(self, source: Optional[int] = ANY_SOURCE,
                 tag: Optional[int] = ANY_TAG):
        """Blocking receive returning the full
        :class:`~repro.cluster.network.Message` (payload, tag, src, meta)."""
        if tag is not None and tag < 0:
            raise CommError(f"user tags must be >= 0, got {tag}")
        return self.network.recv(self.rank, source, tag)

    def iprobe(self, source: Optional[int] = ANY_SOURCE,
               tag: Optional[int] = ANY_TAG) -> bool:
        """Non-blocking test for a matching pending message."""
        return self.network.iprobe(self.rank, source, tag)

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """Synchronize all ranks (flat gather-to-0 then release)."""
        if self.size == 1:
            return
        if self.rank == 0:
            for src in range(1, self.size):
                self.network.recv(self.rank, src, _TAG_BARRIER_IN)
            for dst in range(1, self.size):
                self.network.send(0, dst, b"", _TAG_BARRIER_OUT, 0)
        else:
            self.network.send(self.rank, 0, b"", _TAG_BARRIER_IN, 0)
            self.network.recv(self.rank, 0, _TAG_BARRIER_OUT)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root``; every rank returns it."""
        self._check_root(root)
        if self.size == 1:
            return payload
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.network.send(root, dst, payload, _TAG_BCAST,
                                      payload_nbytes(payload))
            return payload
        return self.network.recv(self.rank, root, _TAG_BCAST).payload

    def gather(self, payload: Any, root: int = 0) -> Optional[list[Any]]:
        """Gather one payload per rank at ``root`` (rank order); others get None."""
        self._check_root(root)
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for src in range(self.size):
                if src != root:
                    out[src] = self.network.recv(self.rank, src,
                                                 _TAG_GATHER).payload
            return out
        self.network.send(self.rank, root, payload, _TAG_GATHER,
                          payload_nbytes(payload))
        return None

    def allgather(self, payload: Any) -> list[Any]:
        """Gather to rank 0 then broadcast the list to everyone."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, payloads: Optional[Sequence[Any]],
                root: int = 0) -> Any:
        """Scatter one payload per rank from ``root``."""
        self._check_root(root)
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise CommError(
                    "scatter root must supply exactly one payload per rank")
            for dst in range(self.size):
                if dst != root:
                    self.network.send(root, dst, payloads[dst], _TAG_SCATTER,
                                      payload_nbytes(payloads[dst]))
            return payloads[root]
        return self.network.recv(self.rank, root, _TAG_SCATTER).payload

    def alltoallv(self, chunks: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all with per-destination payloads.

        ``chunks[j]`` goes to rank j; returns the list of payloads received,
        indexed by source rank.  Sizes may differ (the unbalanced case);
        :meth:`alltoall` enforces the balanced special case the paper's
        csort relies on.
        """
        if len(chunks) != self.size:
            raise CommError(
                f"alltoallv needs {self.size} chunks, got {len(chunks)}")
        # Pairwise-exchange schedule: in step t, rank p talks to peer
        # (t - p) mod P — an involution, so each step is a clean swap.
        # Each rank has at most one outstanding message per step (the
        # eager alternative has P-1), so modest bounded-mailbox
        # capacities absorb the round skew of pipelined callers; real
        # MPI_Alltoall implementations use the same idea.
        received: list[Any] = [None] * self.size
        received[self.rank] = chunks[self.rank]
        for step in range(self.size):
            peer = (step - self.rank) % self.size
            if peer == self.rank:
                continue
            self.network.send(self.rank, peer, chunks[peer],
                              _TAG_ALLTOALL, payload_nbytes(chunks[peer]))
            received[peer] = self.network.recv(self.rank, peer,
                                               _TAG_ALLTOALL).payload
        return received

    def alltoall(self, chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Balanced all-to-all: every chunk must have the same byte size."""
        sizes = {payload_nbytes(c) for c in chunks}
        if len(sizes) > 1:
            raise CommError(
                f"alltoall requires equal-sized chunks, got sizes {sorted(sizes)}")
        return self.alltoallv(chunks)

    def sendrecv_replace(self, payload: Any, peer: int) -> Any:
        """Exchange equal-role payloads with ``peer`` (MPI_Sendrecv_replace)."""
        if peer == self.rank:
            return payload
        self.network.send(self.rank, peer, payload, _TAG_SENDRECV,
                          payload_nbytes(payload))
        return self.network.recv(self.rank, peer, _TAG_SENDRECV).payload

    def allreduce(self, value: Any,
                  op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce with ``op`` (default +) across ranks; all ranks get the result."""
        if op is None:
            op = lambda a, b: a + b  # noqa: E731 - tiny default combiner
        gathered = self.gather(value, root=0)
        if self.rank == 0:
            acc = gathered[0]
            for item in gathered[1:]:
                acc = op(acc, item)
        else:
            acc = None
        return self.bcast(acc, root=0)

    # -- helpers -----------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommError(f"root {root} out of range [0, {self.size})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Comm rank={self.rank} size={self.size}>"
