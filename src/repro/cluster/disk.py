"""The simulated disk device: one arm, seek + bandwidth charging.

A :class:`Disk` wraps a :class:`~repro.cluster.storage.Storage` with the
cost model of :class:`~repro.cluster.hardware.HardwareModel`: every read or
write acquires the (capacity-1) disk-arm resource, sleeps
``seek + nbytes/bandwidth`` kernel seconds, and then performs the real data
movement on the backing store.  Concurrent requests from different pipeline
stages therefore serialize on the arm — exactly the contention that makes
"the most heavily used disk in a pass" matter for dsort (paper, Section I).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.hardware import HardwareModel
from repro.cluster.storage import Storage
from repro.errors import DiskError
from repro.sim.kernel import Kernel
from repro.sim.resources import Resource

__all__ = ["Disk"]


class Disk:
    """A single disk: storage + arm contention + I/O accounting."""

    def __init__(self, kernel: Kernel, storage: Storage,
                 hardware: HardwareModel, name: str = "disk"):
        self.kernel = kernel
        self.storage = storage
        self.hardware = hardware
        self.name = name
        self.arm = Resource(kernel, capacity=1, name=f"{name}.arm")
        # accounting
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0

    # -- timed operations (must run inside a kernel process) ----------------

    def read(self, name: str, offset: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` at ``offset`` of file ``name``; returns uint8 array."""
        if nbytes < 0:
            raise DiskError(f"negative read length: {nbytes}")
        with self.arm.request():
            self.kernel.sleep(self.hardware.disk_time(nbytes))
            data = self.storage.read(name, offset, nbytes)
        self.bytes_read += nbytes
        self.reads += 1
        return data

    def write(self, name: str, offset: int, data: np.ndarray) -> None:
        """Write ``data`` (any dtype, raw bytes) at ``offset`` of ``name``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        with self.arm.request():
            self.kernel.sleep(self.hardware.disk_time(len(raw)))
            self.storage.write(name, offset, raw)
        self.bytes_written += len(raw)
        self.writes += 1

    # -- untimed metadata operations ------------------------------------------

    def size(self, name: str) -> int:
        return self.storage.size(name)

    def exists(self, name: str) -> bool:
        return self.storage.exists(name)

    def delete(self, name: str) -> None:
        self.storage.delete(name)

    def names(self) -> list[str]:
        return self.storage.names()

    # -- stats -----------------------------------------------------------------

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def busy_time(self) -> float:
        """Seconds the disk arm has been busy so far."""
        return self.arm.busy_time()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Disk {self.name}: {self.reads} reads "
                f"({self.bytes_read} B), {self.writes} writes "
                f"({self.bytes_written} B)>")
