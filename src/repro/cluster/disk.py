"""The simulated disk device: one arm, seek + bandwidth charging.

A :class:`Disk` wraps a :class:`~repro.cluster.storage.Storage` with the
cost model of :class:`~repro.cluster.hardware.HardwareModel`: every read or
write acquires the (capacity-1) disk-arm resource, sleeps
``seek + nbytes/bandwidth`` kernel seconds, and then performs the real data
movement on the backing store.  Concurrent requests from different pipeline
stages therefore serialize on the arm — exactly the contention that makes
"the most heavily used disk in a pass" matter for dsort (paper, Section I).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.cluster.hardware import HardwareModel
from repro.cluster.storage import Storage
from repro.errors import DiskError, FaultInjected
from repro.sim.kernel import Kernel
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy

__all__ = ["Disk"]

#: attempt-count buckets for the per-op retry histogram
_ATTEMPT_BOUNDS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


class Disk:
    """A single disk: storage + arm contention + I/O accounting.

    With a :class:`~repro.faults.injector.FaultInjector` attached, every
    timed operation consults the injector (transient faults are retried
    under ``retry``, charging the full modeled time per failed attempt;
    permanent faults propagate) and straggler slowdowns stretch service
    time.  Without one, behaviour is byte-identical to the fault-free
    model.
    """

    def __init__(self, kernel: Kernel, storage: Storage,
                 hardware: HardwareModel, name: str = "disk",
                 rank: int = 0,
                 injector: Optional["FaultInjector"] = None,
                 retry: Optional["RetryPolicy"] = None):
        self.kernel = kernel
        self.storage = storage
        self.hardware = hardware
        self.name = name
        self.rank = rank
        self.injector = injector
        if injector is not None and retry is None:
            from repro.faults.retry import RetryPolicy
            retry = RetryPolicy()
        self.retry = retry
        self.arm = Resource(kernel, capacity=1, name=f"{name}.arm")
        # accounting
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0

    # -- timed operations (must run inside a kernel process) ----------------

    def _timed_op(self, op: str, nbytes: int,
                  fn: Callable[[], Any]) -> Any:
        """One arm-serialized storage operation, with optional faults.

        Each attempt holds the arm for the (possibly straggler-stretched)
        modeled duration before the injector rules on it, so failed
        attempts cost real disk time; backoff sleeps happen *outside* the
        arm hold so other stages can use the disk meanwhile.
        """
        injector = self.injector
        if injector is None:
            with self.arm.request():
                self.kernel.sleep(self.hardware.disk_time(nbytes))
                return fn()
        retry = self.retry
        attempts = 0

        def attempt() -> Any:
            nonlocal attempts
            attempts += 1
            with self.arm.request():
                duration = (self.hardware.disk_time(nbytes)
                            * injector.disk_factor(self.rank))
                timeout = retry.op_timeout
                if timeout is not None and duration > timeout:
                    self.kernel.sleep(timeout)
                    raise FaultInjected(
                        f"disk {op} exceeded {timeout:g}s op timeout",
                        site=f"disk.{self.rank}", rank=self.rank)
                self.kernel.sleep(duration)
                injector.disk_op(self.rank, op, nbytes)
                return fn()

        registry = self.kernel.metrics

        def on_retry(_attempt: int, _exc: BaseException) -> None:
            if registry is not None:
                registry.counter("retry.disk.retries").inc()

        result = retry.call(f"disk.{self.rank}.{op}", attempt,
                            sleep=self.kernel.sleep,
                            rng=injector.rng(f"retry.disk.{self.rank}"),
                            on_retry=on_retry)
        if registry is not None:
            registry.histogram("retry.disk.attempts",
                               bounds=_ATTEMPT_BOUNDS).observe(attempts)
        return result

    def read(self, name: str, offset: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` at ``offset`` of file ``name``; returns uint8 array."""
        if nbytes < 0:
            raise DiskError(f"negative read length: {nbytes}")
        data = self._timed_op(
            "read", nbytes, lambda: self.storage.read(name, offset, nbytes))
        self.bytes_read += nbytes
        self.reads += 1
        return data

    def write(self, name: str, offset: int, data: np.ndarray) -> None:
        """Write ``data`` (any dtype, raw bytes) at ``offset`` of ``name``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._timed_op(
            "write", len(raw),
            lambda: self.storage.write(name, offset, raw))
        self.bytes_written += len(raw)
        self.writes += 1

    # -- untimed metadata operations ------------------------------------------

    def size(self, name: str) -> int:
        return self.storage.size(name)

    def exists(self, name: str) -> bool:
        return self.storage.exists(name)

    def delete(self, name: str) -> None:
        self.storage.delete(name)

    def names(self) -> list[str]:
        return self.storage.names()

    # -- stats -----------------------------------------------------------------

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def busy_time(self) -> float:
        """Seconds the disk arm has been busy so far."""
        return self.arm.busy_time()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Disk {self.name}: {self.reads} reads "
                f"({self.bytes_read} B), {self.writes} writes "
                f"({self.bytes_written} B)>")
