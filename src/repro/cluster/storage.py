"""Byte-addressed storage backends behind each simulated disk.

A :class:`Storage` is a flat namespace of named files supporting positional
reads and writes of ``numpy`` byte arrays.  Two backends:

* :class:`MemoryStorage` — bytearray-backed; the default for simulations
  (data really moves, nothing touches the host filesystem);
* :class:`FileStorage` — one real file per name under a directory; used
  with the real-time kernel to demonstrate genuine out-of-core behaviour.

Storage carries **no timing**: all latency/bandwidth charging happens in
:class:`repro.cluster.disk.Disk`, which wraps a storage.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.errors import StorageError

__all__ = ["Storage", "MemoryStorage", "FileStorage"]


class Storage:
    """Abstract byte store: named files, positional numpy I/O."""

    def read(self, name: str, offset: int, nbytes: int) -> np.ndarray:
        """Return ``nbytes`` bytes of file ``name`` starting at ``offset``.

        Reading past the end of a file is an error (files have no holes
        unless written sparsely; see :meth:`truncate`).
        """
        raise NotImplementedError

    def write(self, name: str, offset: int, data: np.ndarray) -> None:
        """Write ``data`` (any dtype; written as raw bytes) at ``offset``.

        Writing past the current end extends the file; a gap between the
        old end and ``offset`` is zero-filled.
        """
        raise NotImplementedError

    def size(self, name: str) -> int:
        """Current size of file ``name`` in bytes (0 if absent)."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove file ``name`` (no-op if absent)."""
        raise NotImplementedError

    def names(self) -> list[str]:
        """All file names present, sorted (deterministic iteration)."""
        raise NotImplementedError

    def truncate(self, name: str, nbytes: int) -> None:
        """Force file ``name`` to exactly ``nbytes`` (extend zero-filled)."""
        raise NotImplementedError

    # -- shared validation -------------------------------------------------

    @staticmethod
    def _check(offset: int, nbytes: int) -> None:
        if offset < 0:
            raise StorageError(f"negative offset: {offset}")
        if nbytes < 0:
            raise StorageError(f"negative length: {nbytes}")

    @staticmethod
    def _as_bytes(data: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(data)
        return arr.view(np.uint8).reshape(-1)


class MemoryStorage(Storage):
    """In-memory backend: one ``bytearray`` per file."""

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}

    def read(self, name: str, offset: int, nbytes: int) -> np.ndarray:
        self._check(offset, nbytes)
        try:
            buf = self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None
        if offset + nbytes > len(buf):
            raise StorageError(
                f"read past end of {name!r}: offset {offset} + {nbytes} "
                f"> size {len(buf)}")
        return np.frombuffer(buf, dtype=np.uint8,
                             count=nbytes, offset=offset).copy()

    def write(self, name: str, offset: int, data: np.ndarray) -> None:
        raw = self._as_bytes(data)
        self._check(offset, len(raw))
        buf = self._files.setdefault(name, bytearray())
        end = offset + len(raw)
        if end > len(buf):
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = raw.tobytes()

    def size(self, name: str) -> int:
        return len(self._files.get(name, b""))

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._files)

    def truncate(self, name: str, nbytes: int) -> None:
        self._check(0, nbytes)
        buf = self._files.setdefault(name, bytearray())
        if nbytes <= len(buf):
            del buf[nbytes:]
        else:
            buf.extend(b"\x00" * (nbytes - len(buf)))


class FileStorage(Storage):
    """Real-file backend: each name maps to a file under ``directory``.

    Names may not contain path separators (flat namespace by design; the
    PDM layer builds structured names like ``"run.3"`` itself).
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str) -> str:
        if "/" in name or "\\" in name or name in (".", ".."):
            raise StorageError(f"illegal file name: {name!r}")
        return os.path.join(self.directory, name)

    def read(self, name: str, offset: int, nbytes: int) -> np.ndarray:
        self._check(offset, nbytes)
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name!r}")
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if offset + nbytes > size:
                raise StorageError(
                    f"read past end of {name!r}: offset {offset} + {nbytes} "
                    f"> size {size}")
            fh.seek(offset)
            raw = fh.read(nbytes)
        return np.frombuffer(raw, dtype=np.uint8).copy()

    def write(self, name: str, offset: int, data: np.ndarray) -> None:
        raw = self._as_bytes(data)
        self._check(offset, len(raw))
        path = self._path(name)
        mode = "r+b" if os.path.exists(path) else "w+b"
        with open(path, mode) as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if offset > size:
                fh.write(b"\x00" * (offset - size))
            fh.seek(offset)
            fh.write(raw.tobytes())

    def size(self, name: str) -> int:
        path = self._path(name)
        return os.path.getsize(path) if os.path.exists(path) else 0

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        path = self._path(name)
        if os.path.exists(path):
            os.remove(path)

    def names(self) -> list[str]:
        return sorted(os.listdir(self.directory))

    def truncate(self, name: str, nbytes: int) -> None:
        self._check(0, nbytes)
        path = self._path(name)
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        with open(path, "r+b") as fh:
            fh.truncate(nbytes)
