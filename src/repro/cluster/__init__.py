"""Simulated distributed-memory cluster: nodes, disks, network, MPI layer.

This package is the substitute for the paper's physical platform (a 16-node
Beowulf cluster with per-node SCSI disks and a 2 Gb/s Myrinet network).  It
models the three contention points that determine out-of-core sorting
performance — the disk arm, the NIC, and the CPU cores — while really moving
the data, so end-to-end correctness is checkable.

Layers:

* :mod:`repro.cluster.hardware` — cost-model parameters and presets;
* :mod:`repro.cluster.storage`  — byte stores backing each disk (in-memory
  or real files);
* :mod:`repro.cluster.disk`     — the disk device: arm contention +
  seek/bandwidth charging;
* :mod:`repro.cluster.network`  — NIC resources, latency, message transport;
* :mod:`repro.cluster.node`     — one node: disk + NICs + cores + mailbox;
* :mod:`repro.cluster.mpi`      — MPI-like communicator (send/recv/
  collectives) per node;
* :mod:`repro.cluster.cluster`  — assembles P nodes and runs SPMD programs.
"""

from repro.cluster.hardware import HardwareModel
from repro.cluster.storage import FileStorage, MemoryStorage, Storage
from repro.cluster.disk import Disk
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.mpi import ANY_SOURCE, ANY_TAG, Comm
from repro.cluster.cluster import Cluster

__all__ = [
    "HardwareModel",
    "Storage",
    "MemoryStorage",
    "FileStorage",
    "Disk",
    "Network",
    "Node",
    "Comm",
    "ANY_SOURCE",
    "ANY_TAG",
    "Cluster",
]
