"""Simulated interconnect: NIC contention, latency, and message transport.

Transfer model (store-and-forward, full-duplex NICs):

1. the *sender* holds its transmit-NIC resource for ``nbytes/bandwidth``
   seconds (so a node sending to many peers serializes on its own NIC);
2. the message becomes *available* at the destination ``net_latency``
   seconds after transmission completes;
3. the *receiver*, when it consumes the message, holds its receive-NIC
   resource for ``nbytes/bandwidth`` seconds (so a node that many peers
   target — dsort's unbalanced pass-1 communication — bottlenecks on its
   receive side, as on real hardware).

Sends are **eager**: the destination mailbox buffers arbitrarily many
messages, so a send never waits for a matching receive.  This mirrors
MPI eager-protocol behaviour for the mid-sized messages FG moves and makes
all-to-all exchanges trivially deadlock-free.

Message matching is FIFO per (source, tag) with optional wildcards, as in
MPI.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.hardware import HardwareModel
from repro.errors import CommError, FaultInjected
from repro.sim.kernel import Kernel, Process
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy

__all__ = ["Message", "Mailbox", "Network"]

#: attempt-count buckets for the per-message retransmit histogram
_ATTEMPT_BOUNDS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


@dataclasses.dataclass
class Message:
    """One in-flight message."""

    src: int
    tag: int
    payload: Any
    nbytes: int
    available_at: float
    #: small out-of-band metadata dict (block ids, offsets, ...); charged
    #: as a fixed small header, not by pickled size
    meta: Optional[dict] = None
    #: True when the sender reserved bounded-mailbox space for this
    #: message (loopback messages never reserve)
    reserved: bool = False


def _matches(msg: Message, source: Optional[int], tag: Optional[int]) -> bool:
    return ((source is None or msg.src == source)
            and (tag is None or msg.tag == tag))


class Mailbox:
    """Per-node message buffer with MPI-style matching.

    Optionally *bounded*: with ``capacity_bytes`` set, senders must
    reserve space before depositing and block while the buffer is full —
    modeling real MPI memory limits / rendezvous behaviour instead of the
    default infinitely-eager buffering.  A message larger than the whole
    capacity is admitted only when the buffer is empty (it could never
    fit otherwise).
    """

    def __init__(self, kernel: Kernel, name: str,
                 capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes < 1:
            raise CommError("mailbox capacity must be None or >= 1")
        self.kernel = kernel
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._buffered_bytes = 0
        self._pending: deque[Message] = deque()
        self._waiters: deque[tuple[Process, Optional[int], Optional[int]]] = deque()
        self._send_waiters: deque[tuple[Process, int]] = deque()

    def reserve(self, nbytes: int) -> None:
        """Claim buffer space for an incoming deposit (sender side).

        No-op for unbounded mailboxes.  FIFO-fair: a big message at the
        head of the queue is not overtaken by small ones behind it.
        """
        if self.capacity_bytes is None:
            return
        kernel = self.kernel
        kernel.mutex.acquire()
        if (not self._send_waiters
                and self._fits_locked(nbytes)):
            self._buffered_bytes += nbytes
            kernel.mutex.release()
            return
        me = kernel.current_process()
        self._send_waiters.append((me, nbytes))
        me.wait_info = self._wait_info
        kernel.block_current(
            locked=True,
            reason=f"reserve {nbytes}B in full {self.name} "
                   f"(cap {self.capacity_bytes}B)")
        # the receiver that freed space performed our reservation

    def _wait_info(self) -> str:
        """Deadlock-report detail: pending messages and buffered bytes."""
        cap = ("inf" if self.capacity_bytes is None
               else self.capacity_bytes)
        return (f"({len(self._pending)} pending, "
                f"{self._buffered_bytes}/{cap} B buffered)")

    def _fits_locked(self, nbytes: int) -> bool:
        return (self._buffered_bytes + nbytes <= self.capacity_bytes
                or self._buffered_bytes == 0)

    def _release_locked(self, nbytes: int) -> None:
        if self.capacity_bytes is None:
            return
        self._buffered_bytes -= nbytes
        while self._send_waiters and self._fits_locked(
                self._send_waiters[0][1]):
            proc, need = self._send_waiters.popleft()
            self._buffered_bytes += need
            self.kernel.make_ready(proc)

    def deposit(self, msg: Message) -> None:
        """Add a message; hand it directly to the oldest matching waiter.

        For bounded mailboxes the sender must have reserved space first.
        """
        kernel = self.kernel
        kernel.mutex.acquire()
        for i, (proc, source, tag) in enumerate(self._waiters):
            if _matches(msg, source, tag):
                del self._waiters[i]
                kernel.make_ready(proc, msg)
                # handed straight to a receiver: buffer space frees now
                if msg.reserved:
                    self._release_locked(msg.nbytes)
                kernel.mutex.release()
                return
        self._pending.append(msg)
        kernel.mutex.release()

    def receive(self, source: Optional[int] = None,
                tag: Optional[int] = None) -> Message:
        """Block until a matching message arrives; remove and return it."""
        kernel = self.kernel
        kernel.mutex.acquire()
        for i, msg in enumerate(self._pending):
            if _matches(msg, source, tag):
                del self._pending[i]
                if msg.reserved:
                    self._release_locked(msg.nbytes)
                kernel.mutex.release()
                return msg
        me = kernel.current_process()
        self._waiters.append((me, source, tag))
        me.wait_info = self._wait_info
        return kernel.block_current(
            locked=True,
            reason=f"recv(src={source}, tag={tag}) <- {self.name}")

    def unreserve(self, nbytes: int) -> None:
        """Return reserved-but-never-deposited space (sender gave up)."""
        if self.capacity_bytes is None:
            return
        kernel = self.kernel
        kernel.mutex.acquire()
        self._release_locked(nbytes)
        kernel.mutex.release()

    def iprobe(self, source: Optional[int] = None,
               tag: Optional[int] = None) -> bool:
        """Non-blocking: is a matching message pending?"""
        kernel = self.kernel
        kernel.mutex.acquire()
        found = any(_matches(m, source, tag) for m in self._pending)
        kernel.mutex.release()
        return found

    @property
    def backlog(self) -> int:
        return len(self._pending)


class Network:
    """The cluster interconnect: one tx/rx NIC pair per node + mailboxes.

    With a :class:`~repro.faults.injector.FaultInjector` attached, the
    network models a *reliable transport over a lossy link*: each wire
    transmission may be dropped by the injector, in which case the sender
    retransmits under ``retry`` (bounded attempts, deterministic
    backoff); NIC degradation and crashed peers stretch or black-hole
    transfers.  Without an injector, behaviour is byte-identical to the
    fault-free model.
    """

    def __init__(self, kernel: Kernel, hardware: HardwareModel,
                 n_nodes: int,
                 mailbox_capacity_bytes: Optional[int] = None,
                 injector: Optional["FaultInjector"] = None,
                 retry: Optional["RetryPolicy"] = None):
        if n_nodes < 1:
            raise CommError("network needs at least one node")
        self.kernel = kernel
        self.hardware = hardware
        self.n_nodes = n_nodes
        self.mailbox_capacity_bytes = mailbox_capacity_bytes
        self.injector = injector
        if injector is not None and retry is None:
            from repro.faults.retry import RetryPolicy
            retry = RetryPolicy()
        self.retry = retry
        self.tx = [Resource(kernel, 1, name=f"nic{r}.tx")
                   for r in range(n_nodes)]
        self.rx = [Resource(kernel, 1, name=f"nic{r}.rx")
                   for r in range(n_nodes)]
        self.mailboxes = [Mailbox(kernel, name=f"mailbox{r}",
                                  capacity_bytes=mailbox_capacity_bytes)
                          for r in range(n_nodes)]
        # accounting: bytes put on the wire per sender / taken off per receiver
        self.bytes_sent = [0] * n_nodes
        self.bytes_received = [0] * n_nodes
        self.messages = 0

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.n_nodes:
            raise CommError(f"{what} rank {rank} out of range "
                            f"[0, {self.n_nodes})")

    def send(self, src: int, dst: int, payload: Any, tag: int,
             nbytes: int, meta: Optional[dict] = None) -> None:
        """Transmit ``payload`` from ``src`` to ``dst`` (timed, eager)."""
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        if nbytes < 0:
            raise CommError(f"negative message size: {nbytes}")
        if src == dst:
            # Loopback skips the NIC (a memcpy-scale cost), never reserves
            # bounded-mailbox space — a node blocking on its own full
            # mailbox could only deadlock itself — and never faults: it
            # does not traverse the wire.
            self.kernel.sleep(self.hardware.copy_time(nbytes))
            msg = Message(src, tag, payload, nbytes, self.kernel.now(),
                          meta)
        else:
            # With bounded mailboxes the sender claims destination buffer
            # space before transmitting (rendezvous-style backpressure);
            # the claim survives retransmissions and is returned if the
            # sender gives up.
            self.mailboxes[dst].reserve(nbytes)
            try:
                self._transmit(src, dst, nbytes)
            except BaseException:
                self.mailboxes[dst].unreserve(nbytes)
                raise
            msg = Message(src, tag, payload, nbytes,
                          self.kernel.now() + self.hardware.net_latency,
                          meta,
                          reserved=self.mailbox_capacity_bytes is not None)
        race = self.kernel.race
        if race is not None:
            # mailbox matching is per (source, tag), not FIFO, so the
            # clock snapshot rides the message itself
            race.stamp_message(msg)
        self.messages += 1
        self.mailboxes[dst].deposit(msg)

    def _transmit(self, src: int, dst: int, nbytes: int) -> None:
        """Put ``nbytes`` on the wire, retransmitting injected drops."""
        injector = self.injector
        if injector is None:
            with self.tx[src].request():
                self.kernel.sleep(self.hardware.wire_time(nbytes))
            self.bytes_sent[src] += nbytes
            return
        injector.check_alive(src, f"net.{src}")
        attempts = 0

        def attempt() -> None:
            nonlocal attempts
            attempts += 1
            with self.tx[src].request():
                self.kernel.sleep(self.hardware.wire_time(nbytes)
                                  * injector.wire_factor(src))
            self.bytes_sent[src] += nbytes
            if injector.message_fate(src, dst, nbytes) == "drop":
                raise FaultInjected("message dropped on the wire",
                                    site=f"net.{src}->{dst}", rank=src)

        registry = self.kernel.metrics

        def on_retry(_attempt: int, _exc: BaseException) -> None:
            if registry is not None:
                registry.counter("retry.net.retransmits").inc()

        self.retry.call(f"net.{src}->{dst}.send", attempt,
                        sleep=self.kernel.sleep,
                        rng=injector.rng(f"retry.net.{src}"),
                        on_retry=on_retry)
        if registry is not None:
            registry.histogram("retry.net.attempts",
                               bounds=_ATTEMPT_BOUNDS).observe(attempts)

    def recv(self, dst: int, source: Optional[int] = None,
             tag: Optional[int] = None) -> Message:
        """Consume the oldest matching message at ``dst`` (timed)."""
        self._check_rank(dst, "destination")
        msg = self.mailboxes[dst].receive(source, tag)
        gap = msg.available_at - self.kernel.now()
        if gap > 0:
            self.kernel.sleep(gap)
        if msg.src != dst:
            factor = (self.injector.wire_factor(dst)
                      if self.injector is not None else 1.0)
            with self.rx[dst].request():
                self.kernel.sleep(self.hardware.wire_time(msg.nbytes)
                                  * factor)
            self.bytes_received[dst] += msg.nbytes
        race = self.kernel.race
        if race is not None:
            race.join_message(msg)
        return msg

    def iprobe(self, dst: int, source: Optional[int] = None,
               tag: Optional[int] = None) -> bool:
        self._check_rank(dst, "destination")
        return self.mailboxes[dst].iprobe(source, tag)
