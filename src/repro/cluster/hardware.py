"""Hardware cost model: the parameters behind every simulated latency.

The defaults are a "paper-like preset" calibrated to the evaluation platform
of the paper (Section VI): 16 nodes, two 2.8 GHz Xeons per node, one
Ultra-320 SCSI disk per node, and a 2 Gb/s Myrinet interconnect.  The goal
of the calibration is *shape*, not absolute minutes: disk I/O should be the
dominant cost, communication close behind, and in-memory computation cheap
enough that a well-overlapped pipeline is I/O-bound — the regime in which
the paper's dsort-vs-csort comparison happens.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["HardwareModel"]


@dataclasses.dataclass(frozen=True)
class HardwareModel:
    """Cost parameters for one cluster node and its network interface.

    All bandwidths are bytes/second, all latencies seconds.
    """

    #: number of CPU cores per node (paper: two Xeons)
    cores_per_node: int = 2
    #: sequential disk bandwidth (Ultra-320-era sequential rate)
    disk_bandwidth: float = 60e6
    #: fixed per-operation disk cost (seek + rotational + syscall)
    disk_seek: float = 5e-3
    #: NIC bandwidth per direction (2 Gb/s Myrinet)
    net_bandwidth: float = 250e6
    #: one-way network latency
    net_latency: float = 10e-6
    #: comparison-sort cost: seconds per (record * log2(records))
    sort_cost_per_key_log: float = 8e-9
    #: per-byte cost of in-memory permutation / copying (memcpy-like)
    copy_cost_per_byte: float = 0.5e-9
    #: per-record cost of one k-way merge step (loser-tree update)
    merge_cost_per_record: float = 25e-9

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        for field in ("disk_bandwidth", "net_bandwidth"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be > 0")
        for field in ("disk_seek", "net_latency", "sort_cost_per_key_log",
                      "copy_cost_per_byte", "merge_cost_per_record"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")

    # -- derived costs ------------------------------------------------------

    def disk_time(self, nbytes: int) -> float:
        """Time for one disk operation transferring ``nbytes``."""
        return self.disk_seek + nbytes / self.disk_bandwidth

    def wire_time(self, nbytes: int) -> float:
        """Link occupancy for ``nbytes`` (excludes propagation latency)."""
        return nbytes / self.net_bandwidth

    def sort_time(self, nrecords: int) -> float:
        """In-memory comparison-sort cost for ``nrecords``."""
        if nrecords <= 1:
            return 0.0
        return self.sort_cost_per_key_log * nrecords * math.log2(nrecords)

    def copy_time(self, nbytes: int) -> float:
        """In-memory permutation/copy cost for ``nbytes``."""
        return self.copy_cost_per_byte * nbytes

    def merge_time(self, nrecords: int) -> float:
        """Cost of advancing a k-way merge by ``nrecords`` outputs."""
        return self.merge_cost_per_record * nrecords

    # -- presets ------------------------------------------------------------------

    @classmethod
    def paper_cluster(cls) -> "HardwareModel":
        """The Section-VI platform (defaults verbatim)."""
        return cls()

    @classmethod
    def scaled_paper_cluster(cls, scale: float = 1.0 / 64.0) -> "HardwareModel":
        """The paper platform with per-operation overheads scaled down.

        The paper ran with "the best choices of buffer sizes" — multi-
        megabyte blocks that amortize the per-operation disk overhead to a
        few percent of each transfer.  Simulation-scale runs use blocks a
        couple of orders of magnitude smaller; keeping seek/latency at
        full size would make *overhead*, not bandwidth, the bottleneck and
        distort the dsort/csort comparison (both algorithms, differently).
        Scaling ``disk_seek`` and ``net_latency`` by the block-size ratio
        (default 1/64 ~ 64 KiB simulated blocks vs ~4 MiB tuned blocks)
        restores the paper's overhead:transfer proportions.  Bandwidths
        and compute rates are untouched.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        base = cls()
        return cls(disk_seek=base.disk_seek * scale,
                   net_latency=base.net_latency * scale)

    @classmethod
    def fast_network(cls) -> "HardwareModel":
        """A variant where the network is never the bottleneck."""
        return cls(net_bandwidth=2.5e9, net_latency=1e-6)

    @classmethod
    def slow_disk(cls) -> "HardwareModel":
        """A variant that exaggerates disk dominance (I/O-bound regime)."""
        return cls(disk_bandwidth=20e6, disk_seek=10e-3)

    @classmethod
    def uniform(cls, rate: float) -> "HardwareModel":
        """Disk and network at the same rate; useful in analytic tests."""
        return cls(disk_bandwidth=rate, net_bandwidth=rate,
                   disk_seek=0.0, net_latency=0.0)
