"""One cluster node: disk + NICs + CPU cores + compute-cost helpers.

A :class:`Node` owns the per-node hardware and exposes the compute-cost
helpers that FG stages use to charge for in-memory work (sorting,
permuting, merging).  The cores resource has the paper's capacity of two,
so two stages may compute simultaneously on a node but a third waits —
exactly the effect that lets FG overlap computation with I/O on multicore
nodes (paper, Section II).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cluster.disk import Disk
from repro.cluster.hardware import HardwareModel
from repro.cluster.storage import MemoryStorage, Storage
from repro.sim.kernel import Kernel
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy

__all__ = ["Node"]


class Node:
    """A single node of the simulated cluster."""

    def __init__(self, kernel: Kernel, rank: int, hardware: HardwareModel,
                 storage: Optional[Storage] = None,
                 injector: Optional["FaultInjector"] = None,
                 retry: Optional["RetryPolicy"] = None):
        self.kernel = kernel
        self.rank = rank
        self.hardware = hardware
        self.injector = injector
        self.storage = storage if storage is not None else MemoryStorage()
        self.disk = Disk(kernel, self.storage, hardware,
                         name=f"node{rank}.disk", rank=rank,
                         injector=injector, retry=retry)
        self.cores = Resource(kernel, hardware.cores_per_node,
                              name=f"node{rank}.cores")
        #: accumulated modeled compute seconds (stats)
        self.compute_time = 0.0

    # -- compute charging ---------------------------------------------------

    def compute(self, seconds: float) -> None:
        """Occupy one core for ``seconds`` of modeled computation.

        On a straggler node the injector stretches the charge; on a
        crashed node the charge raises a permanent fault.
        """
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        if seconds == 0.0:
            return
        if self.injector is not None:
            self.injector.check_alive(self.rank,
                                      f"node{self.rank}.compute")
            seconds *= self.injector.compute_factor(self.rank)
        with self.cores.request():
            self.kernel.sleep(seconds)
        self.compute_time += seconds

    def compute_sort(self, nrecords: int) -> None:
        """Charge for comparison-sorting ``nrecords`` in memory."""
        self.compute(self.hardware.sort_time(nrecords))

    def compute_copy(self, nbytes: int) -> None:
        """Charge for permuting/copying ``nbytes`` in memory."""
        self.compute(self.hardware.copy_time(nbytes))

    def compute_merge(self, nrecords: int) -> None:
        """Charge for advancing a k-way merge by ``nrecords`` outputs."""
        self.compute(self.hardware.merge_time(nrecords))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.rank}>"
