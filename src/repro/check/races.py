"""FGRace: a vector-clock happens-before race detector for FG programs.

The static layer (:mod:`repro.check.dataflow`) predicts which stages
*can* conflict on shared cells; FGRace observes which accesses *are*
actually ordered at runtime.  Every kernel process carries a vector
clock.  The synchronization edges of an FG program — channel ``put`` /
``get`` (buffer conveys, recycles, control queues), cluster message
send/receive, and process spawn/join (fork edges seed the child with
the spawner's clock; join edges fold the dead process's final clock
into the joiner, which is what orders a retried pass after the failed
attempt it replaces) — transfer clocks exactly like message-passing in
the classical happens-before model:

* a send ticks the sender's own component and snapshots its clock onto
  the item (channels keep a FIFO deque of snapshots, matching the
  proven delivery order; cluster messages carry the snapshot as an
  attribute because MPI-style matching is per ``(source, tag)``, not
  FIFO);
* a receive joins the snapshot into the receiver's clock.

When a stage accepts a buffer, the detector ticks the stage's process
clock and replays the stage's *statically inferred* effect set (the
cells :func:`repro.check.dataflow.program_effects` resolved for it)
against a per-cell access frontier: an access whose frontier entry from
another process is not ``<=`` the current clock is unordered — a race.

Two modes:

* default (``REPRO_RACE=1`` / ``FGProgram(race_detect=True)``): races
  are collected and :class:`~repro.errors.RaceError` is raised from
  ``FGProgram.wait()``, mirroring FGSan's teardown check;
* cross-check (``REPRO_RACE=strict`` / ``race_detect="strict"``): a
  dynamic race that the static analysis did *not* predict raises
  immediately — the mode CI uses to prove the static layer's coverage.

Overhead is a few dict operations per channel op, bounded by the
(small, static) number of resolved cells per stage — the dsort smoke
benchmark gates it at <= 2x virtual-time runtime.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from collections import deque
from typing import Any, Optional, Union

from repro.check.dataflow import Cell, ProgramEffects, cells_conflict
from repro.errors import KernelStateError, RaceError

__all__ = ["RaceDetector", "RaceFinding", "race_from_env"]

_TRUTHY = ("1", "true", "yes", "on")


def race_from_env() -> Union[bool, str]:
    """Race-detection mode requested via ``REPRO_RACE``.

    ``1``/``true``/``yes``/``on`` enable collection mode, ``strict``
    enables the static-coverage cross-check, anything else disables.
    """
    value = os.environ.get("REPRO_RACE", "").strip().lower()
    if value == "strict":
        return "strict"
    return value in _TRUTHY


@dataclasses.dataclass(frozen=True)
class RaceFinding:
    """Two stage accesses to one cell unordered by any convey edge."""

    cell_label: str
    stage_a: str
    stage_b: str
    kind: str  # "write-write" | "write-read"
    predicted: bool  # did the static layer predict this pair/cell?

    def __str__(self) -> str:
        tag = "" if self.predicted else " [not statically predicted]"
        return (f"{self.kind} race on {self.cell_label!r}: "
                f"{self.stage_a!r} vs {self.stage_b!r} "
                f"(no happens-before edge){tag}")


@dataclasses.dataclass
class _Frontier:
    """Last access per cell: pid -> (clock component, stage name)."""

    writes: dict[int, tuple[int, str]] = dataclasses.field(
        default_factory=dict)
    reads: dict[int, tuple[int, str]] = dataclasses.field(
        default_factory=dict)


class RaceDetector:
    """Kernel attachment carrying the vector clocks and access frontiers.

    All hooks are thread-safe behind an internal lock (never the kernel
    mutex, so hooks are callable with or without it held) and tolerate
    non-kernel callers (the main thread pre-filling queues or draining
    poisoned pipelines participates with an anonymous, raceless clock).
    """

    def __init__(self, kernel: Any, *, strict: bool = False) -> None:
        self.kernel = kernel
        self.strict = strict
        self._lock = threading.Lock()
        #: pid -> vector clock (pid -> component)
        self._clocks: dict[int, dict[int, int]] = {}
        #: id(channel) -> FIFO deque of sender clock snapshots, aligned
        #: with the channel's (proven-FIFO) delivery order
        self._chan: dict[int, deque[dict[int, int]]] = {}
        #: pid -> snapshots handed to a blocked getter, joined on resume
        self._pending: dict[int, list[dict[int, int]]] = {}
        #: id(stage fn) -> (stage name, read cells, write cells) —
        #: resolved cells only, keyed by function identity because stage
        #: *names* collide across the per-node programs of a cluster run
        self._effects: dict[int, tuple[str, tuple[Cell, ...],
                                       tuple[Cell, ...]]] = {}
        #: obj_id -> cell -> access frontier
        self._frontiers: dict[int, dict[Cell, _Frontier]] = {}
        #: statically predicted (stage pair, obj_id, key) conflicts
        self._predicted: set[tuple[frozenset[str], int,
                                   Optional[str]]] = set()
        self.races: list[RaceFinding] = []
        self._seen: set[tuple[frozenset[str], str, str]] = set()

    # -- program registration --------------------------------------------

    def register_program(self, effects: ProgramEffects) -> None:
        """Load one program's static effect sets and predictions."""
        with self._lock:
            for entry in effects.stages:
                reads = tuple(c for c in entry.effects.reads if c.resolved)
                writes = tuple(c for c in entry.effects.writes
                               if c.resolved)
                if entry.fn_id and (reads or writes):
                    self._effects[entry.fn_id] = (entry.name, reads,
                                                  writes)
            self._predicted.update(effects.predicted_pairs())

    # -- clock plumbing ---------------------------------------------------

    def _pid(self) -> Optional[int]:
        try:
            return int(self.kernel.current_process().pid)
        except KernelStateError:
            return None

    def _clock(self, pid: int) -> dict[int, int]:
        clock = self._clocks.get(pid)
        if clock is None:
            clock = {pid: 0}
            self._clocks[pid] = clock
        return clock

    @staticmethod
    def _join(into: dict[int, int], snapshot: dict[int, int]) -> None:
        for pid, comp in snapshot.items():
            if into.get(pid, 0) < comp:
                into[pid] = comp

    def _snapshot(self) -> dict[int, int]:
        """Tick the caller's own component and return a clock copy."""
        pid = self._pid()
        if pid is None:
            return {}
        clock = self._clock(pid)
        clock[pid] = clock.get(pid, 0) + 1
        return dict(clock)

    # -- channel hooks (see repro.sim.channel) ----------------------------

    def on_send(self, channel: Any) -> None:
        """A ``put``/``try_put`` is delivering an item into ``channel``."""
        with self._lock:
            self._chan.setdefault(id(channel),
                                  deque()).append(self._snapshot())

    def on_receive(self, channel: Any) -> None:
        """The caller is consuming the oldest item of ``channel``."""
        with self._lock:
            queue = self._chan.get(id(channel))
            if not queue:
                return
            snapshot = queue.popleft()
            pid = self._pid()
            if pid is not None:
                self._join(self._clock(pid), snapshot)

    def on_handoff(self, channel: Any, pid: int) -> None:
        """An item of ``channel`` was handed directly to blocked process
        ``pid`` (via ``make_ready``); it joins the clock on resume."""
        with self._lock:
            queue = self._chan.get(id(channel))
            if not queue:
                return
            self._pending.setdefault(pid, []).append(queue.popleft())

    def on_resume(self) -> None:
        """The caller resumed from a blocked ``get``: join handed clocks."""
        with self._lock:
            pid = self._pid()
            if pid is None:
                return
            stash = self._pending.pop(pid, None)
            if stash:
                clock = self._clock(pid)
                for snapshot in stash:
                    self._join(clock, snapshot)

    # -- process lifecycle hooks (see repro.sim.kernel) -------------------

    def on_spawn(self, child_pid: int) -> None:
        """A process spawned ``child_pid``: the child starts after the
        spawner's current point (the fork edge).  No-op when the spawner
        is not a kernel process (root spawns before ``run()``)."""
        with self._lock:
            snapshot = self._snapshot()
            if snapshot:
                self._join(self._clock(child_pid), snapshot)

    def on_join(self, dead_pid: int) -> None:
        """The caller joined finished process ``dead_pid``: everything
        that process did happened before this point (the join edge).
        This is what orders a retried pass after the failed attempt it
        replaces — the harness joins the dead program's processes
        before spawning the replacements."""
        with self._lock:
            pid = self._pid()
            if pid is None:
                return
            dead = self._clocks.get(dead_pid)
            if dead:
                self._join(self._clock(pid), dead)

    # -- cluster-message hooks (see repro.cluster.network) ----------------

    def stamp_message(self, msg: Any) -> None:
        """Attach the sender's ticked clock to an in-flight message."""
        with self._lock:
            msg._race_clock = self._snapshot()

    def join_message(self, msg: Any) -> None:
        """Join a received message's clock into the receiver's."""
        snapshot = getattr(msg, "_race_clock", None)
        if snapshot is None:
            return
        with self._lock:
            pid = self._pid()
            if pid is not None:
                self._join(self._clock(pid), snapshot)

    # -- the check itself -------------------------------------------------

    def on_stage_access(self, stage: Any) -> None:
        """A stage accepted a buffer: replay its static effect set.

        Ticks the accessing process's clock first, so two accesses by
        different processes are ordered only through a real convey edge
        between them, never by accident of equal components.
        """
        fn = getattr(stage, "fn", None)
        effects = self._effects.get(id(fn)) if fn is not None else None
        if effects is None:
            return
        with self._lock:
            pid = self._pid()
            if pid is None:
                return
            clock = self._clock(pid)
            clock[pid] = clock.get(pid, 0) + 1
            component = clock[pid]
            name, reads, writes = effects
            for cell in writes:
                self._check_locked(cell, pid, clock, name, is_write=True)
            for cell in reads:
                self._check_locked(cell, pid, clock, name, is_write=False)
            for cell in writes:
                self._cell_frontier(cell).writes[pid] = (component, name)
            for cell in reads:
                self._cell_frontier(cell).reads[pid] = (component, name)

    def _cell_frontier(self, cell: Cell) -> _Frontier:
        per_obj = self._frontiers.setdefault(cell.obj_id, {})
        frontier = per_obj.get(cell)
        if frontier is None:
            frontier = _Frontier()
            per_obj[cell] = frontier
        return frontier

    def _check_locked(self, cell: Cell, pid: int, clock: dict[int, int],
                      stage: str, *, is_write: bool) -> None:
        for other_cell, frontier in self._frontiers.get(
                cell.obj_id, {}).items():
            against = [("write-write" if is_write else "write-read",
                        frontier.writes)]
            if is_write:
                against.append(("write-read", frontier.reads))
            for kind, entries in against:
                if not cells_conflict(cell, other_cell,
                                      a_writes=is_write,
                                      b_writes=entries
                                      is frontier.writes):
                    continue
                for other_pid, (component, other_stage) in entries.items():
                    if other_pid == pid:
                        continue
                    if clock.get(other_pid, 0) >= component:
                        continue  # ordered: we have seen that access
                    self._report_locked(cell, stage, other_stage, kind)

    def _report_locked(self, cell: Cell, stage_a: str, stage_b: str,
                       kind: str) -> None:
        pair = frozenset((stage_a, stage_b))
        dedup = (pair, cell.label or str(cell.obj_id), kind)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        predicted = (pair, cell.obj_id, cell.key) in self._predicted
        finding = RaceFinding(cell_label=str(cell), stage_a=stage_a,
                              stage_b=stage_b, kind=kind,
                              predicted=predicted)
        self.races.append(finding)
        if self.strict and not predicted:
            raise RaceError(
                "unpredicted-race",
                f"{finding} — the static effect analysis (FG110) did "
                f"not predict this conflict; its model is incomplete "
                f"for this program")

    # -- teardown ---------------------------------------------------------

    def check_teardown(self) -> None:
        """Raise :class:`RaceError` if any races were collected."""
        with self._lock:
            races, self.races = self.races, []
            self._seen.clear()
        if races:
            raise RaceError(
                "shared-state-race",
                f"{len(races)} unordered shared-state access(es):\n"
                + "\n".join(f"  {r}" for r in races))
