"""``repro lint`` support: execute program files and collect findings.

FG programs are assembled by running Python code, so the linter lints by
*executing* each file with the module-level findings collector armed:
every ``FGProgram.lint`` pass (triggered from ``start()``) appends its
findings, and an error-severity finding aborts the program with
:class:`~repro.errors.LintError` before any pipeline process spawns.
The CLI exit code is 0 (clean), 1 (lint errors — or warnings under
``--strict``), or 2 (a file crashed for a non-lint reason).
"""

from __future__ import annotations

import json
import runpy
import sys
from typing import Callable, Optional, Sequence

from repro.check import linter
from repro.check.findings import Finding, LintReport
from repro.errors import LintError

__all__ = ["lint_paths", "rules_table"]

#: per-stage effect entry: (program, pipeline, stage, classification)
StageEffect = tuple[str, str, str, str]


def rules_table() -> list[str]:
    """One aligned line per rule: ID, severity, name, summary."""
    rules = list(linter.RULES.values())
    id_w = max(len(r.rule_id) for r in rules)
    sev_w = max(len(r.severity.value) for r in rules)
    title_w = max(len(r.title) for r in rules)
    return [
        f"{r.rule_id:<{id_w}}  {r.severity.value:<{sev_w}}  "
        f"{r.title:<{title_w}}  {r.summary}"
        for r in rules
    ]


def _find_lint_error(exc: BaseException) -> Optional[LintError]:
    """Walk an exception chain (ProcessFailed.original, __cause__, ...)
    for the LintError that actually stopped the program."""
    seen: set[int] = set()
    frontier: list[BaseException] = [exc]
    while frontier:
        err = frontier.pop()
        if id(err) in seen:
            continue
        seen.add(id(err))
        if isinstance(err, LintError):
            return err
        for attr in ("original", "__cause__", "__context__"):
            nested = getattr(err, attr, None)
            if isinstance(nested, BaseException):
                frontier.append(nested)
        for failure in getattr(err, "failures", []) or []:
            cause = getattr(failure, "cause", None)
            if isinstance(cause, BaseException):
                frontier.append(cause)
    return None


def _run_one(path: str, *, effects: bool = False) -> tuple[
        list[Finding], list[StageEffect], Optional[BaseException]]:
    """Execute ``path`` with the collector armed; return (findings,
    per-stage effects, non-lint crash)."""
    collected: list[tuple[str, list[Finding]]] = []
    effect_rows: list[tuple[str, list[tuple[str, str, str]]]] = []
    previous = linter.COLLECTOR
    previous_effects = linter.EFFECTS
    previous_argv = sys.argv
    linter.COLLECTOR = collected
    if effects:
        linter.EFFECTS = effect_rows
    # the file runs as __main__ and may parse sys.argv; hand it a clean
    # one so the repro CLI's own arguments don't leak into it
    sys.argv = [path]
    crash: Optional[BaseException] = None
    try:
        runpy.run_path(path, run_name="__main__")
    except SystemExit as exc:
        if exc.code not in (None, 0):
            crash = exc
    except BaseException as exc:  # noqa: BLE001 - report, don't die
        if _find_lint_error(exc) is None:
            crash = exc
    finally:
        linter.COLLECTOR = previous
        linter.EFFECTS = previous_effects
        sys.argv = previous_argv
    findings = [f for _, report in collected for f in report]
    stage_effects = [(prog, pipeline, stage, safety)
                     for prog, rows in effect_rows
                     for pipeline, stage, safety in rows]
    return findings, stage_effects, crash


def lint_paths(paths: Sequence[str], *, as_json: bool = False,
               strict: bool = False, effects: bool = False,
               out: Callable[[str], None] = print) -> int:
    """Lint every program assembled by each file in ``paths``.

    With ``effects`` the per-stage parallel-safety verdicts (``pure`` /
    ``read_shared`` / ``write_shared``) are reported alongside findings.
    """
    per_file: dict[str, list[Finding]] = {}
    per_file_effects: dict[str, list[StageEffect]] = {}
    crashes: dict[str, str] = {}
    for path in paths:
        findings, stage_effects, crash = _run_one(path, effects=effects)
        per_file[path] = findings
        per_file_effects[path] = stage_effects
        if crash is not None:
            crashes[path] = repr(crash)
    all_findings = [f for findings in per_file.values() for f in findings]
    report = LintReport(all_findings)
    if as_json:
        payload: dict[str, object] = {
            "files": {
                path: [f.to_dict() for f in findings]
                for path, findings in per_file.items()
            },
            "crashes": crashes,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
        }
        if effects:
            payload["effects"] = {
                path: [{"program": prog, "pipeline": pipeline,
                        "stage": stage, "parallel_safety": safety}
                       for prog, pipeline, stage, safety in rows]
                for path, rows in per_file_effects.items()
            }
        out(json.dumps(payload, indent=2))
    else:
        for path, findings in per_file.items():
            status = ("crashed" if path in crashes
                      else "clean" if not findings else
                      f"{len(findings)} finding(s)")
            out(f"{path}: {status}")
            for f in findings:
                out(f"  {f}")
            for prog, pipeline, stage, safety in per_file_effects[path]:
                out(f"  {prog}/{pipeline}/{stage}: {safety}")
            if path in crashes:
                out(f"  non-lint failure: {crashes[path]}")
        out(f"{len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s), "
            f"{len(crashes)} crashed file(s)")
    if crashes:
        return 2
    if report.errors or (strict and report.warnings):
        return 1
    return 0
