"""The FG static linter: rule-based analysis of an assembled program.

Run automatically from :meth:`~repro.core.program.FGProgram.start`
(disable with ``FGProgram(lint=False)`` or ``REPRO_LINT=0``) and
standalone via ``repro lint``.  Error-severity findings abort ``start()``
with :class:`~repro.errors.LintError` *before* any process is spawned —
turning what today surfaces as a mid-run ``DeadlockError`` into a fast,
located diagnostic.

Rule catalog (see docs/ANALYSIS.md for the long-form description):

========  ========  =====================================================
ID        Severity  Checks
========  ========  =====================================================
FG101     warning   buffer pool smaller than the replica-expanded
                    pipeline depth (stall)
FG102     error     cycle in the intersecting-pipeline stage-order graph
FG103     error     stage style/arity contract violation (fn missing,
                    wrong parameter count for its style)
FG104     error     ``rounds=None`` pipeline with no stage that can
                    declare end-of-stream (guaranteed deadlock)
FG105     error     end-of-stream declared downstream of other stages —
                    stages before the declarer never see the caboose
FG106     warning   ``rounds=0`` pipeline (stages never see data)
FG107     error     dangling ``on_pipeline_failure`` hook (not callable,
                    or wrong arity)
FG108     error     bounded channel chain provably deadlock-prone
                    (wait-for-graph analysis over intersecting stages)
FG109     error     replicated stage carries per-round mutable state
                    (closure/global/attribute-write heuristic over the
                    stage function's bytecode)
FG110     warning   two concurrently-runnable stages (same or
                    intersecting pipelines) write the same shared cell
FG111     warning   an alias of an accepted buffer's data escapes the
                    stage and outlives the convey
FG112     error     a fused stage composes two or more write-carrying
                    stage functions
FG113     warning   the end-of-stream declarer writes shared state
                    other stages of its pipeline also use
FG114     warning   a stage closes over a kernel/channel/lock/open
                    file that cannot cross a process boundary
========  ========  =====================================================

Suppress individual rules per program with
``FGProgram(lint_ignore={"FG101"})`` or globally with
``REPRO_LINT_IGNORE=FG101,FG108``.

Every rule reads the program through the shared graph IR
(:class:`repro.plan.ir.ProgramGraph`) — the same structural view the
planner compiles and the provenance fingerprints hash — so structural
features added to the runtime (replication, dynamic pools, fusion) only
need to be modelled once.  FG110–FG114 additionally read the per-stage
effect sets inferred by :mod:`repro.check.dataflow`, the same analysis
that stamps ``parallel_safety`` onto every :class:`StageNode`.
"""

from __future__ import annotations

import inspect
import os
import warnings
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional

from repro.check import dataflow as _dataflow
from repro.check.dataflow import (
    iter_code_objects as _iter_code_objects,
    shared_state_evidence as _shared_state_evidence,
)
from repro.check.findings import Finding, LintReport, Rule, Severity
from repro.plan.ir import ProgramGraph
from repro.sim.waitfor import WaitForGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram
    from repro.core.stage import Stage

__all__ = ["RULES", "COLLECTOR", "EFFECTS", "lint_program",
           "ignored_rules", "normalize_rule_ids"]

#: when the ``repro lint`` CLI executes a program file, it points this at
#: a list and every :meth:`FGProgram.lint` pass appends
#: ``(program_name, findings)`` — letting the CLI report findings even
#: from programs that swallow LintError themselves.
COLLECTOR: Optional[list[tuple[str, list[Finding]]]] = None

#: companion collector for ``repro lint --effects``: every lint pass
#: appends ``(program_name, [(pipeline, stage, classification), ...])``
#: with the parallel-safety verdict of every stage.
EFFECTS: Optional[list[tuple[str, list[tuple[str, str, str]]]]] = None


RULES: dict[str, Rule] = {r.rule_id: r for r in [
    Rule("FG101", "pool-smaller-than-depth", Severity.WARNING,
         "a pipeline with fewer buffers than stages cannot keep every "
         "stage busy; the pipeline stalls on buffer recycling"),
    Rule("FG102", "stage-order-cycle", Severity.ERROR,
         "intersecting pipelines order their shared stages "
         "inconsistently; buffers would wait on each other in a cycle"),
    Rule("FG103", "stage-contract", Severity.ERROR,
         "a stage function is missing or does not match its style's "
         "calling convention (map: fn(ctx, buffer); full: fn(ctx))"),
    Rule("FG104", "no-eos-declarer", Severity.ERROR,
         "a rounds=None pipeline has no stage that can call "
         "convey_caboose; the pipeline can never terminate"),
    Rule("FG105", "caboose-unreachable", Severity.ERROR,
         "the end-of-stream declarer is not the first stage; stages "
         "upstream of it never see the caboose and never terminate"),
    Rule("FG106", "zero-rounds", Severity.WARNING,
         "a rounds=0 pipeline emits only the caboose; its stages never "
         "see a data buffer"),
    Rule("FG107", "dangling-failure-hook", Severity.ERROR,
         "on_pipeline_failure is set but is not callable as "
         "hook(stage, pipelines, exc)"),
    Rule("FG108", "bounded-chain-deadlock", Severity.ERROR,
         "a bounded channel chain between stages shared with another "
         "pipeline can absorb the whole buffer pool; the wait-for "
         "graph closes a cycle"),
    Rule("FG109", "replicated-stage-state", Severity.ERROR,
         "a replicated stage mutates state shared across its copies "
         "(closure or global writes); interchangeable replicas would "
         "race on it and the per-round results become order-dependent"),
    Rule("FG110", "cross-stage-write-race", Severity.WARNING,
         "two stages that can hold buffers concurrently (same or "
         "intersecting pipelines) write the same shared cell; under a "
         "parallel backend the result becomes schedule-dependent"),
    Rule("FG111", "conveyed-buffer-escape", Severity.WARNING,
         "a stage stores an alias of its accepted buffer's data where "
         "it outlives the convey; the next owner's writes stay visible "
         "through the stale alias (FGSan only catches this at runtime)"),
    Rule("FG112", "impure-fused-run", Severity.ERROR,
         "a fused stage composes two or more write-carrying stage "
         "functions; fusion must keep at most one shared-state writer "
         "per run or the write interleaving changes under the fused "
         "schedule"),
    Rule("FG113", "caboose-shared-state", Severity.WARNING,
         "the end-of-stream declarer writes shared state that other "
         "stages of the same pipeline also use; teardown order between "
         "the caboose and in-flight buffers is not guaranteed"),
    Rule("FG114", "unserializable-capture", Severity.WARNING,
         "a stage function directly captures a kernel, channel, raw "
         "lock, open file, or generator; the stage cannot cross a "
         "process boundary on a multiprocessing backend"),
]}


def normalize_rule_ids(ids: Iterable[str], *,
                       source: str = "lint_ignore") -> set[str]:
    """Strip/uppercase rule IDs, warning (not silently ignoring) any
    that name no known rule — a typo in a suppression list would
    otherwise disable nothing while looking like it worked."""
    normalized: set[str] = set()
    for raw in ids:
        rule_id = str(raw).strip().upper()
        if not rule_id:
            continue
        if rule_id not in RULES:
            known = f"FG101..FG{100 + len(RULES)}"
            warnings.warn(
                f"{source}: unknown lint rule id {rule_id!r} "
                f"(known rules: {known})",
                stacklevel=3)
        normalized.add(rule_id)
    return normalized


def ignored_rules(extra: Optional[Iterable[str]] = None) -> set[str]:
    """Rule IDs suppressed via ``REPRO_LINT_IGNORE`` plus ``extra``."""
    ignored = normalize_rule_ids(
        os.environ.get("REPRO_LINT_IGNORE", "").split(","),
        source="REPRO_LINT_IGNORE")
    if extra:
        ignored |= normalize_rule_ids(extra)
    return ignored


# -- helpers ----------------------------------------------------------------


def _positional_bounds(fn: Callable[..., Any]) -> Optional[tuple[int, float]]:
    """(min, max) positional arguments ``fn`` accepts, or None if
    unknown (builtins and other signature-less callables are skipped)."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    minimum = 0
    maximum: float = 0
    for param in sig.parameters.values():
        if param.kind in (param.POSITIONAL_ONLY,
                          param.POSITIONAL_OR_KEYWORD):
            maximum += 1
            if param.default is param.empty:
                minimum += 1
        elif param.kind is param.VAR_POSITIONAL:
            maximum = float("inf")
    return minimum, maximum


def _references_convey_caboose(fn: Optional[Callable[..., Any]]) -> bool:
    """Best-effort static test: can ``fn`` reach a convey_caboose call?"""
    if fn is None:
        return False
    return any("convey_caboose" in code.co_names
               for code in _iter_code_objects(fn))


def _stage_declares_eos(stage: "Stage") -> bool:
    return _references_convey_caboose(stage.fn)


# -- rule implementations ---------------------------------------------------


def _check_pool_depth(prog: "FGProgram",
                      graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        depth = p.effective_depth
        if p.nbuffers >= depth:
            continue
        detail = f"{depth} stage(s)"
        if depth != len(p.stages):
            expanded = ", ".join(
                f"{node.name} x{node.replica_count} replicas + sequencer"
                for node in p.stages if node.replicated)
            detail = (f"{depth} concurrent holder(s) once replication "
                      f"expands ({expanded})")
        yield Finding(
            "FG101", Severity.WARNING,
            f"pool of {p.nbuffers} buffer(s) is smaller than the "
            f"pipeline depth of {detail}; at most "
            f"{p.nbuffers} stage(s) can hold data at once",
            program=prog.name, pipeline=p.name)


def _check_stage_order_cycle(prog: "FGProgram",
                             graph: ProgramGraph) -> Iterator[Finding]:
    edges: dict[int, set[int]] = {}
    names: dict[int, str] = {}
    edge_pipelines: dict[tuple[int, int], str] = {}
    for p in graph.pipelines:
        for a, b in zip(p.stages, p.stages[1:]):
            names[id(a.stage)] = a.name
            names[id(b.stage)] = b.name
            edges.setdefault(id(a.stage), set()).add(id(b.stage))
            edges.setdefault(id(b.stage), set())
            edge_pipelines.setdefault((id(a.stage), id(b.stage)), p.name)
    graph = WaitForGraph()
    # stage names may theoretically collide; suffix ids to keep nodes
    # unique, strip them again when rendering
    node = {sid: f"{names[sid]}#{sid}" for sid in edges}
    for src, dsts in edges.items():
        for dst in dsts:
            graph.add_edge(node[src], node[dst])
    cycle = graph.find_cycle()
    if cycle is None:
        return
    display = [n.rsplit("#", 1)[0] for n in cycle]
    back = {v: k for k, v in node.items()}
    pipes = sorted({edge_pipelines[(back[a], back[b])]
                    for a, b in zip(cycle, cycle[1:])
                    if (back[a], back[b]) in edge_pipelines})
    yield Finding(
        "FG102", Severity.ERROR,
        f"stage order cycle {' -> '.join(display)} across pipeline(s) "
        f"{', '.join(pipes)}; a buffer conveyed around this loop waits "
        "on itself",
        program=prog.name, pipeline=pipes[0] if pipes else None,
        stage=display[0])


def _check_stage_contract(prog: "FGProgram",
                          graph: ProgramGraph) -> Iterator[Finding]:
    reported: set[int] = set()
    for p in graph.pipelines:
        for node in p.stages:
            s = node.stage
            if id(s) in reported:
                continue
            if s.fn is None:
                reported.add(id(s))
                yield Finding(
                    "FG103", Severity.ERROR,
                    f"stage {s.name!r} has no function bound (a "
                    "source-driven stage built with fn=None must be "
                    "assigned one before the program starts)",
                    program=prog.name, pipeline=p.name, stage=s.name)
                continue
            bounds = _positional_bounds(s.fn)
            if bounds is None:
                continue
            minimum, maximum = bounds
            want = 2 if s.style == "map" else 1
            shape = ("fn(ctx, buffer)" if s.style == "map" else "fn(ctx)")
            if minimum > want or maximum < want:
                reported.add(id(s))
                yield Finding(
                    "FG103", Severity.ERROR,
                    f"{s.style}-style stage {s.name!r} must be callable "
                    f"as {shape}, but its function takes "
                    f"{minimum}..{maximum} positional argument(s)",
                    program=prog.name, pipeline=p.name, stage=s.name)


def _check_eos_declarers(prog: "FGProgram",
                         graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        if p.rounds is not None:
            continue
        declarers = [i for i, node in enumerate(p.stages)
                     if _stage_declares_eos(node.stage)]
        if not declarers:
            if any(node.style == "full" for node in p.stages):
                # a full-control loop could still declare EOS through
                # state the scan cannot see; don't claim certainty
                continue
            yield Finding(
                "FG104", Severity.ERROR,
                "rounds=None but no stage references convey_caboose; "
                "nothing can ever declare end-of-stream, so the "
                "pipeline cannot terminate",
                program=prog.name, pipeline=p.name)
            continue
        first = min(declarers)
        if first > 0 and not any(_stage_declares_eos(node.stage)
                                 or node.style == "full"
                                 for node in p.stages[:first]):
            blind = ", ".join(node.name for node in p.stages[:first])
            yield Finding(
                "FG105", Severity.ERROR,
                f"end-of-stream is declared by stage "
                f"{p.stages[first].name!r} at position {first}; "
                f"upstream stage(s) {blind} never see the caboose and "
                "never terminate",
                program=prog.name, pipeline=p.name,
                stage=p.stages[first].name)


def _check_zero_rounds(prog: "FGProgram",
                       graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        if p.rounds == 0:
            yield Finding(
                "FG106", Severity.WARNING,
                "rounds=0: the source emits only the caboose and the "
                "stages never see a data buffer",
                program=prog.name, pipeline=p.name)


def _check_failure_hook(prog: "FGProgram",
                        graph: ProgramGraph) -> Iterator[Finding]:
    hook = prog.on_pipeline_failure
    if hook is None:
        return
    if not callable(hook):
        yield Finding(
            "FG107", Severity.ERROR,
            f"on_pipeline_failure is {type(hook).__name__!s}, not a "
            "callable hook(stage, pipelines, exc)",
            program=prog.name)
        return
    bounds = _positional_bounds(hook)
    if bounds is None:
        return
    minimum, maximum = bounds
    if minimum > 3 or maximum < 3:
        yield Finding(
            "FG107", Severity.ERROR,
            "on_pipeline_failure must be callable as "
            f"hook(stage, pipelines, exc), but it takes "
            f"{minimum}..{maximum} positional argument(s)",
            program=prog.name)


def _check_bounded_chains(prog: "FGProgram",
                          graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        if p.channel_capacity is None:
            continue  # every edge unbounded: nothing to bound
        for q in graph.pipelines:
            if q is p:
                continue
            q_ids = {id(node.stage) for node in q.stages}
            shared = [node for node in p.stages
                      if id(node.stage) in q_ids]
            for si, s in enumerate(shared):
                for t in shared[si + 1:]:
                    spos_p, tpos_p = p.index_of(s.stage), p.index_of(t.stage)
                    spos_q = q.index_of(s.stage)
                    tpos_q = q.index_of(t.stage)
                    if spos_p > tpos_p or spos_q > tpos_q:
                        continue  # inconsistent order is FG102's job
                    # edge-wise over the IR: a capacity-0 rendezvous
                    # edge parks nothing, and any unbounded edge in the
                    # chain (virtual-group queue, reorder channel
                    # behind a replicated stage) absorbs the whole pool
                    parking = p.chain_parking(spos_p, tpos_p)
                    if parking is None or p.nbuffers <= parking:
                        continue
                    wait = WaitForGraph()
                    wait.add_edge(
                        t.name, s.name,
                        f"awaiting {q.name} data produced via "
                        f"{s.name}")
                    wait.add_edge(
                        s.name, t.name,
                        f"awaiting space in the full {p.name} chain "
                        f"drained by {t.name}")
                    cycle = wait.find_cycle()
                    rendered = (wait.render_cycle(cycle)
                                if cycle else f"{s.name} <-> {t.name}")
                    yield Finding(
                        "FG108", Severity.ERROR,
                        f"{p.nbuffers} buffer(s) circulate but the "
                        f"bounded chain {s.name} -> {t.name} "
                        f"(capacity {p.channel_capacity} per channel) "
                        f"parks at most {parking}; if {t.name!r} is "
                        f"accepting from {q.name!r} the wait-for graph "
                        f"closes a cycle: {rendered}",
                        program=prog.name, pipeline=p.name, stage=s.name)


def _check_replicated_state(prog: "FGProgram",
                            graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        for node in p.stages:
            s = node.stage
            if not node.replicated or s.fn is None:
                continue
            evidence = _shared_state_evidence(s.fn)
            if any(n in ("convey", "convey_caboose")
                   for code in _iter_code_objects(s.fn)
                   for n in code.co_names):
                evidence.append(
                    "references convey (the replica sequencer owns "
                    "conveyance; replicated stages must only return "
                    "the buffer)")
            if evidence:
                listed = "; ".join(evidence[:3])
                if len(evidence) > 3:
                    listed += f"; and {len(evidence) - 3} more"
                yield Finding(
                    "FG109", Severity.ERROR,
                    f"stage {s.name!r} is declared with replicas but "
                    f"carries per-round mutable state: {listed}. "
                    "Interchangeable copies would race on it; keep the "
                    "stage single or move the state into buffer tags",
                    program=prog.name, pipeline=p.name, stage=s.name)


def _check_effects(prog: "FGProgram",
                   graph: ProgramGraph) -> Iterator[Finding]:
    """FG110/FG111/FG113: the effect-analysis rules, sharing one
    :func:`repro.check.dataflow.program_effects` pass."""
    effects = _dataflow.program_effects(graph)
    # FG110: concurrently-runnable stages writing one shared cell.
    # Program-wide scope: every pipeline of one program runs on the same
    # kernel at once, so even disjoint pipelines race on a shared cell.
    seen: set[tuple[frozenset[str], str, str]] = set()
    for c in effects.all_conflicts:
        key = (frozenset((c.stage_a, c.stage_b)), str(c.cell), c.kind)
        if key in seen:
            continue
        seen.add(key)
        where = (f"pipeline {c.pipeline_a!r}"
                 if c.pipeline_a == c.pipeline_b else
                 f"pipelines {c.pipeline_a!r} and "
                 f"{c.pipeline_b!r}")
        yield Finding(
            "FG110", Severity.WARNING,
            f"stages {c.stage_a!r} and {c.stage_b!r} ({where}) both "
            f"touch shared cell {str(c.cell)!r} ({c.kind}) with no "
            "ordering between them; a parallel backend makes the "
            "outcome schedule-dependent",
            program=prog.name, pipeline=c.pipeline_a, stage=c.stage_a)
    # FG111: buffer aliases escaping the stage
    for entry in effects.stages:
        for escape in entry.effects.buffer_escapes:
            yield Finding(
                "FG111", Severity.WARNING,
                f"stage {entry.name!r} {escape}; the alias outlives "
                "the convey, so the next owner's writes remain visible "
                "through it (copy the data instead)",
                program=prog.name, pipeline=entry.pipeline,
                stage=entry.name)
    # FG113: the EOS declarer's shared writes overlap its pipeline peers
    for p in graph.pipelines:
        for node in p.stages:
            if node.stage.fn is None or not _stage_declares_eos(node.stage):
                continue
            entry = effects.stage(node.name)
            if entry is None:
                continue
            peers: set[str] = set()
            for other in p.stages:
                if other.stage is node.stage:
                    continue
                other_entry = effects.stage(other.name)
                if other_entry is None:
                    continue
                for wa in entry.effects.writes:
                    for cb in (other_entry.effects.writes
                               | other_entry.effects.reads):
                        if _dataflow.cells_conflict(
                                wa, cb, a_writes=True,
                                b_writes=cb in other_entry.effects.writes):
                            peers.add(other.name)
            if peers:
                yield Finding(
                    "FG113", Severity.WARNING,
                    f"stage {node.name!r} declares end-of-stream and "
                    f"writes shared state also used by "
                    f"{', '.join(sorted(peers))}; nothing orders those "
                    "accesses against the caboose at teardown",
                    program=prog.name, pipeline=p.name, stage=node.name)


def _check_fused_purity(prog: "FGProgram",
                        graph: ProgramGraph) -> Iterator[Finding]:
    """FG112: a fused stage must compose at most one shared-state
    writer (the planner's purity guard enforces this; the rule catches
    hand-built compositions)."""
    reported: set[int] = set()
    for p in graph.pipelines:
        for node in p.stages:
            s = node.stage
            if not node.fused_from or s.fn is None or id(s) in reported:
                continue
            parts = getattr(s.fn, "_fg_effect_parts", None)
            if not parts:
                continue
            writers = [
                part for part in parts
                if _dataflow.classify_fn(part) == _dataflow.WRITE_SHARED]
            if len(writers) >= 2:
                reported.add(id(s))
                yield Finding(
                    "FG112", Severity.ERROR,
                    f"fused stage {s.name!r} composes "
                    f"{len(writers)} write-carrying stage functions "
                    f"(of {len(parts)} fused); at most one per run is "
                    "sound — split the run or make the parts pure",
                    program=prog.name, pipeline=p.name, stage=s.name)


def _check_unserializable(prog: "FGProgram",
                          graph: ProgramGraph) -> Iterator[Finding]:
    """FG114: direct captures that cannot cross a process boundary."""
    reported: set[int] = set()
    for p in graph.pipelines:
        for node in p.stages:
            s = node.stage
            if s.fn is None or id(s) in reported:
                continue
            reported.add(id(s))
            captured = _dataflow.unserializable_captures(s.fn)
            if captured:
                yield Finding(
                    "FG114", Severity.WARNING,
                    f"stage {s.name!r} cannot cross a process "
                    f"boundary: {'; '.join(captured)}",
                    program=prog.name, pipeline=p.name, stage=s.name)


_CHECKS = (
    _check_pool_depth,
    _check_stage_order_cycle,
    _check_stage_contract,
    _check_eos_declarers,
    _check_zero_rounds,
    _check_failure_hook,
    _check_bounded_chains,
    _check_replicated_state,
    _check_effects,
    _check_fused_purity,
    _check_unserializable,
)


def lint_program(prog: "FGProgram",
                 ignore: Optional[Iterable[str]] = None) -> LintReport:
    """Run every lint rule over ``prog`` and return the report.

    The program does not need to be started; rules operate on the
    declared structure (pipelines, stages, hooks).
    """
    suppressed = ignored_rules(ignore)
    graph = ProgramGraph.from_program(prog)
    report = LintReport()
    for check in _CHECKS:
        report.extend(f for f in check(prog, graph)
                      if f.rule_id not in suppressed)
    if EFFECTS is not None:
        EFFECTS.append((prog.name, [
            (p.name, node.name, node.parallel_safety or "unknown")
            for p in graph.pipelines for node in p.stages]))
    return report
