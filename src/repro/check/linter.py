"""The FG static linter: rule-based analysis of an assembled program.

Run automatically from :meth:`~repro.core.program.FGProgram.start`
(disable with ``FGProgram(lint=False)`` or ``REPRO_LINT=0``) and
standalone via ``repro lint``.  Error-severity findings abort ``start()``
with :class:`~repro.errors.LintError` *before* any process is spawned —
turning what today surfaces as a mid-run ``DeadlockError`` into a fast,
located diagnostic.

Rule catalog (see docs/ANALYSIS.md for the long-form description):

========  ========  =====================================================
ID        Severity  Checks
========  ========  =====================================================
FG101     warning   buffer pool smaller than the replica-expanded
                    pipeline depth (stall)
FG102     error     cycle in the intersecting-pipeline stage-order graph
FG103     error     stage style/arity contract violation (fn missing,
                    wrong parameter count for its style)
FG104     error     ``rounds=None`` pipeline with no stage that can
                    declare end-of-stream (guaranteed deadlock)
FG105     error     end-of-stream declared downstream of other stages —
                    stages before the declarer never see the caboose
FG106     warning   ``rounds=0`` pipeline (stages never see data)
FG107     error     dangling ``on_pipeline_failure`` hook (not callable,
                    or wrong arity)
FG108     error     bounded channel chain provably deadlock-prone
                    (wait-for-graph analysis over intersecting stages)
FG109     error     replicated stage carries per-round mutable state
                    (closure/global/attribute-write heuristic over the
                    stage function's bytecode)
========  ========  =====================================================

Suppress individual rules per program with
``FGProgram(lint_ignore={"FG101"})`` or globally with
``REPRO_LINT_IGNORE=FG101,FG108``.

Every rule reads the program through the shared graph IR
(:class:`repro.plan.ir.ProgramGraph`) — the same structural view the
planner compiles and the provenance fingerprints hash — so structural
features added to the runtime (replication, dynamic pools, fusion) only
need to be modelled once.
"""

from __future__ import annotations

import builtins
import dis
import inspect
import os
import types
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional

from repro.check.findings import Finding, LintReport, Rule, Severity
from repro.plan.ir import ProgramGraph
from repro.sim.waitfor import WaitForGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram
    from repro.core.stage import Stage

__all__ = ["RULES", "COLLECTOR", "lint_program", "ignored_rules"]

#: when the ``repro lint`` CLI executes a program file, it points this at
#: a list and every :meth:`FGProgram.lint` pass appends
#: ``(program_name, findings)`` — letting the CLI report findings even
#: from programs that swallow LintError themselves.
COLLECTOR: Optional[list[tuple[str, list[Finding]]]] = None


RULES: dict[str, Rule] = {r.rule_id: r for r in [
    Rule("FG101", "pool-smaller-than-depth", Severity.WARNING,
         "a pipeline with fewer buffers than stages cannot keep every "
         "stage busy; the pipeline stalls on buffer recycling"),
    Rule("FG102", "stage-order-cycle", Severity.ERROR,
         "intersecting pipelines order their shared stages "
         "inconsistently; buffers would wait on each other in a cycle"),
    Rule("FG103", "stage-contract", Severity.ERROR,
         "a stage function is missing or does not match its style's "
         "calling convention (map: fn(ctx, buffer); full: fn(ctx))"),
    Rule("FG104", "no-eos-declarer", Severity.ERROR,
         "a rounds=None pipeline has no stage that can call "
         "convey_caboose; the pipeline can never terminate"),
    Rule("FG105", "caboose-unreachable", Severity.ERROR,
         "the end-of-stream declarer is not the first stage; stages "
         "upstream of it never see the caboose and never terminate"),
    Rule("FG106", "zero-rounds", Severity.WARNING,
         "a rounds=0 pipeline emits only the caboose; its stages never "
         "see a data buffer"),
    Rule("FG107", "dangling-failure-hook", Severity.ERROR,
         "on_pipeline_failure is set but is not callable as "
         "hook(stage, pipelines, exc)"),
    Rule("FG108", "bounded-chain-deadlock", Severity.ERROR,
         "a bounded channel chain between stages shared with another "
         "pipeline can absorb the whole buffer pool; the wait-for "
         "graph closes a cycle"),
    Rule("FG109", "replicated-stage-state", Severity.ERROR,
         "a replicated stage mutates state shared across its copies "
         "(closure or global writes); interchangeable replicas would "
         "race on it and the per-round results become order-dependent"),
]}


def ignored_rules(extra: Optional[Iterable[str]] = None) -> set[str]:
    """Rule IDs suppressed via ``REPRO_LINT_IGNORE`` plus ``extra``."""
    ignored = {r.strip().upper()
               for r in os.environ.get("REPRO_LINT_IGNORE", "").split(",")
               if r.strip()}
    if extra:
        ignored.update(r.upper() for r in extra)
    return ignored


# -- helpers ----------------------------------------------------------------


def _positional_bounds(fn: Callable[..., Any]) -> Optional[tuple[int, float]]:
    """(min, max) positional arguments ``fn`` accepts, or None if
    unknown (builtins and other signature-less callables are skipped)."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    minimum = 0
    maximum: float = 0
    for param in sig.parameters.values():
        if param.kind in (param.POSITIONAL_ONLY,
                          param.POSITIONAL_OR_KEYWORD):
            maximum += 1
            if param.default is param.empty:
                minimum += 1
        elif param.kind is param.VAR_POSITIONAL:
            maximum = float("inf")
    return minimum, maximum


def _iter_code_objects(fn: Callable[..., Any], *,
                       max_depth: int = 4) -> Iterator[types.CodeType]:
    """Yield ``fn``'s code object and those reachable from it.

    Recurses through nested code constants (inner functions and
    comprehensions), closure cells holding functions (e.g. fork/join
    loops bound as siblings), and module-global functions the code
    references by name.  Bounded by ``max_depth`` and a seen-set, so
    arbitrary user code cannot loop the scan.
    """
    seen: set[int] = set()
    frontier: list[tuple[Any, int]] = [(fn, 0)]
    while frontier:
        obj, depth = frontier.pop()
        func = inspect.unwrap(obj) if callable(obj) else obj
        code = getattr(func, "__code__", None)
        if isinstance(obj, types.CodeType):
            code = obj
        if code is None or id(code) in seen or depth > max_depth:
            continue
        seen.add(id(code))
        yield code
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                frontier.append((const, depth + 1))
        closure = getattr(func, "__closure__", None) or ()
        globals_ns = getattr(func, "__globals__", {})
        for cell in closure:
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                continue
            if callable(value):
                frontier.append((value, depth + 1))
        for name in code.co_names:
            value = globals_ns.get(name)
            if isinstance(value, types.FunctionType):
                frontier.append((value, depth + 1))


def _references_convey_caboose(fn: Optional[Callable[..., Any]]) -> bool:
    """Best-effort static test: can ``fn`` reach a convey_caboose call?"""
    if fn is None:
        return False
    return any("convey_caboose" in code.co_names
               for code in _iter_code_objects(fn))


def _stage_declares_eos(stage: "Stage") -> bool:
    return _references_convey_caboose(stage.fn)


# -- rule implementations ---------------------------------------------------


def _check_pool_depth(prog: "FGProgram",
                      graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        depth = p.effective_depth
        if p.nbuffers >= depth:
            continue
        detail = f"{depth} stage(s)"
        if depth != len(p.stages):
            expanded = ", ".join(
                f"{node.name} x{node.replica_count} replicas + sequencer"
                for node in p.stages if node.replicated)
            detail = (f"{depth} concurrent holder(s) once replication "
                      f"expands ({expanded})")
        yield Finding(
            "FG101", Severity.WARNING,
            f"pool of {p.nbuffers} buffer(s) is smaller than the "
            f"pipeline depth of {detail}; at most "
            f"{p.nbuffers} stage(s) can hold data at once",
            program=prog.name, pipeline=p.name)


def _check_stage_order_cycle(prog: "FGProgram",
                             graph: ProgramGraph) -> Iterator[Finding]:
    edges: dict[int, set[int]] = {}
    names: dict[int, str] = {}
    edge_pipelines: dict[tuple[int, int], str] = {}
    for p in graph.pipelines:
        for a, b in zip(p.stages, p.stages[1:]):
            names[id(a.stage)] = a.name
            names[id(b.stage)] = b.name
            edges.setdefault(id(a.stage), set()).add(id(b.stage))
            edges.setdefault(id(b.stage), set())
            edge_pipelines.setdefault((id(a.stage), id(b.stage)), p.name)
    graph = WaitForGraph()
    # stage names may theoretically collide; suffix ids to keep nodes
    # unique, strip them again when rendering
    node = {sid: f"{names[sid]}#{sid}" for sid in edges}
    for src, dsts in edges.items():
        for dst in dsts:
            graph.add_edge(node[src], node[dst])
    cycle = graph.find_cycle()
    if cycle is None:
        return
    display = [n.rsplit("#", 1)[0] for n in cycle]
    back = {v: k for k, v in node.items()}
    pipes = sorted({edge_pipelines[(back[a], back[b])]
                    for a, b in zip(cycle, cycle[1:])
                    if (back[a], back[b]) in edge_pipelines})
    yield Finding(
        "FG102", Severity.ERROR,
        f"stage order cycle {' -> '.join(display)} across pipeline(s) "
        f"{', '.join(pipes)}; a buffer conveyed around this loop waits "
        "on itself",
        program=prog.name, pipeline=pipes[0] if pipes else None,
        stage=display[0])


def _check_stage_contract(prog: "FGProgram",
                          graph: ProgramGraph) -> Iterator[Finding]:
    reported: set[int] = set()
    for p in graph.pipelines:
        for node in p.stages:
            s = node.stage
            if id(s) in reported:
                continue
            if s.fn is None:
                reported.add(id(s))
                yield Finding(
                    "FG103", Severity.ERROR,
                    f"stage {s.name!r} has no function bound (a "
                    "source-driven stage built with fn=None must be "
                    "assigned one before the program starts)",
                    program=prog.name, pipeline=p.name, stage=s.name)
                continue
            bounds = _positional_bounds(s.fn)
            if bounds is None:
                continue
            minimum, maximum = bounds
            want = 2 if s.style == "map" else 1
            shape = ("fn(ctx, buffer)" if s.style == "map" else "fn(ctx)")
            if minimum > want or maximum < want:
                reported.add(id(s))
                yield Finding(
                    "FG103", Severity.ERROR,
                    f"{s.style}-style stage {s.name!r} must be callable "
                    f"as {shape}, but its function takes "
                    f"{minimum}..{maximum} positional argument(s)",
                    program=prog.name, pipeline=p.name, stage=s.name)


def _check_eos_declarers(prog: "FGProgram",
                         graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        if p.rounds is not None:
            continue
        declarers = [i for i, node in enumerate(p.stages)
                     if _stage_declares_eos(node.stage)]
        if not declarers:
            if any(node.style == "full" for node in p.stages):
                # a full-control loop could still declare EOS through
                # state the scan cannot see; don't claim certainty
                continue
            yield Finding(
                "FG104", Severity.ERROR,
                "rounds=None but no stage references convey_caboose; "
                "nothing can ever declare end-of-stream, so the "
                "pipeline cannot terminate",
                program=prog.name, pipeline=p.name)
            continue
        first = min(declarers)
        if first > 0 and not any(_stage_declares_eos(node.stage)
                                 or node.style == "full"
                                 for node in p.stages[:first]):
            blind = ", ".join(node.name for node in p.stages[:first])
            yield Finding(
                "FG105", Severity.ERROR,
                f"end-of-stream is declared by stage "
                f"{p.stages[first].name!r} at position {first}; "
                f"upstream stage(s) {blind} never see the caboose and "
                "never terminate",
                program=prog.name, pipeline=p.name,
                stage=p.stages[first].name)


def _check_zero_rounds(prog: "FGProgram",
                       graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        if p.rounds == 0:
            yield Finding(
                "FG106", Severity.WARNING,
                "rounds=0: the source emits only the caboose and the "
                "stages never see a data buffer",
                program=prog.name, pipeline=p.name)


def _check_failure_hook(prog: "FGProgram",
                        graph: ProgramGraph) -> Iterator[Finding]:
    hook = prog.on_pipeline_failure
    if hook is None:
        return
    if not callable(hook):
        yield Finding(
            "FG107", Severity.ERROR,
            f"on_pipeline_failure is {type(hook).__name__!s}, not a "
            "callable hook(stage, pipelines, exc)",
            program=prog.name)
        return
    bounds = _positional_bounds(hook)
    if bounds is None:
        return
    minimum, maximum = bounds
    if minimum > 3 or maximum < 3:
        yield Finding(
            "FG107", Severity.ERROR,
            "on_pipeline_failure must be callable as "
            f"hook(stage, pipelines, exc), but it takes "
            f"{minimum}..{maximum} positional argument(s)",
            program=prog.name)


def _check_bounded_chains(prog: "FGProgram",
                          graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        if p.channel_capacity is None:
            continue  # every edge unbounded: nothing to bound
        for q in graph.pipelines:
            if q is p:
                continue
            q_ids = {id(node.stage) for node in q.stages}
            shared = [node for node in p.stages
                      if id(node.stage) in q_ids]
            for si, s in enumerate(shared):
                for t in shared[si + 1:]:
                    spos_p, tpos_p = p.index_of(s.stage), p.index_of(t.stage)
                    spos_q = q.index_of(s.stage)
                    tpos_q = q.index_of(t.stage)
                    if spos_p > tpos_p or spos_q > tpos_q:
                        continue  # inconsistent order is FG102's job
                    # edge-wise over the IR: a capacity-0 rendezvous
                    # edge parks nothing, and any unbounded edge in the
                    # chain (virtual-group queue, reorder channel
                    # behind a replicated stage) absorbs the whole pool
                    parking = p.chain_parking(spos_p, tpos_p)
                    if parking is None or p.nbuffers <= parking:
                        continue
                    wait = WaitForGraph()
                    wait.add_edge(
                        t.name, s.name,
                        f"awaiting {q.name} data produced via "
                        f"{s.name}")
                    wait.add_edge(
                        s.name, t.name,
                        f"awaiting space in the full {p.name} chain "
                        f"drained by {t.name}")
                    cycle = wait.find_cycle()
                    rendered = (wait.render_cycle(cycle)
                                if cycle else f"{s.name} <-> {t.name}")
                    yield Finding(
                        "FG108", Severity.ERROR,
                        f"{p.nbuffers} buffer(s) circulate but the "
                        f"bounded chain {s.name} -> {t.name} "
                        f"(capacity {p.channel_capacity} per channel) "
                        f"parks at most {parking}; if {t.name!r} is "
                        f"accepting from {q.name!r} the wait-for graph "
                        f"closes a cycle: {rendered}",
                        program=prog.name, pipeline=p.name, stage=s.name)


#: method names whose call on a shared container is treated as mutation.
#: Deliberately omits ambiguous names (``sort``, ``write``, ``reverse``)
#: that are common as *pure* methods on schema/file objects.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "setdefault", "remove", "discard", "clear",
})

#: opcodes that pass the provenance of the value under construction
#: through unchanged (subscripts, arithmetic, stack shuffling).
_TRANSPARENT_OPS = frozenset({
    "LOAD_CONST", "BINARY_SUBSCR", "BINARY_SLICE", "BINARY_OP",
    "UNARY_NEGATIVE", "UNARY_NOT", "UNARY_INVERT",
    "COPY", "SWAP", "DUP_TOP", "DUP_TOP_TWO",
    "ROT_TWO", "ROT_THREE", "ROT_FOUR", "CACHE", "EXTENDED_ARG",
})

#: values of these types cannot hold cross-replica mutable state (for
#: the method-call branch; *rebinding* them is still flagged).
_IMMUTABLE_TYPES = (type(None), bool, int, float, complex, str, bytes,
                    tuple, frozenset, types.FunctionType,
                    types.BuiltinFunctionType, types.ModuleType, type)

_UNKNOWN = object()


def _closure_value(fn: Callable[..., Any], name: str) -> Any:
    """The object a free variable of ``fn`` is bound to, or _UNKNOWN."""
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is None or closure is None:
        return _UNKNOWN
    try:
        return closure[code.co_freevars.index(name)].cell_contents
    except (ValueError, IndexError):
        return _UNKNOWN


def _shared_state_evidence(fn: Callable[..., Any]) -> list[str]:
    """Evidence strings that ``fn`` mutates state its replicas share.

    A linear bytecode walk tracking coarse provenance of the object under
    construction: a load from a free variable or a module global marks it
    *shared*, a load from a local marks it *private*, and subscript /
    attribute / stack ops preserve the mark.  Mutation evidence is then

    * a mutating method (``append``, ``update``, ...) looked up on a
      shared object,
    * ``STORE_SUBSCR`` / ``STORE_ATTR`` whose target is shared,
    * rebinding a free variable (``STORE_DEREF``) or a global.

    Heuristic by design: it follows only straight-line provenance, so
    aliasing through locals escapes it — but that is exactly the
    contract FG109 documents (it catches the idiomatic per-round
    accumulator, not adversarial code).
    """
    globals_ns = getattr(inspect.unwrap(fn), "__globals__", {})
    evidence: list[str] = []

    def shared_global(name: str) -> bool:
        value = globals_ns.get(name, getattr(builtins, name, _UNKNOWN))
        if value is _UNKNOWN:
            return False
        return not isinstance(value, _IMMUTABLE_TYPES)

    def shared_free(name: str) -> bool:
        value = _closure_value(fn, name)
        if value is _UNKNOWN:
            return True  # unresolvable cell: assume shared
        return not isinstance(value, _IMMUTABLE_TYPES)

    for code in _iter_code_objects(fn):
        base_shared = False
        base_name = ""
        for instr in dis.get_instructions(code):
            op = instr.opname
            if op in ("LOAD_DEREF", "LOAD_CLASSDEREF"):
                base_name = str(instr.argval)
                base_shared = (base_name in code.co_freevars
                               and shared_free(base_name))
            elif op == "LOAD_GLOBAL":
                base_name = str(instr.argval)
                base_shared = shared_global(base_name)
            elif op in ("LOAD_METHOD", "LOAD_ATTR"):
                if base_shared and instr.argval in _MUTATING_METHODS:
                    evidence.append(
                        f"calls .{instr.argval}() on shared "
                        f"{base_name!r}")
                    base_shared = False
            elif op == "STORE_SUBSCR":
                if base_shared:
                    evidence.append(
                        f"assigns into shared {base_name!r}")
                base_shared = False
            elif op == "STORE_ATTR":
                if base_shared:
                    evidence.append(
                        f"sets .{instr.argval} on shared {base_name!r}")
                base_shared = False
            elif op == "STORE_DEREF":
                if instr.argval in code.co_freevars:
                    evidence.append(
                        f"rebinds closure variable {instr.argval!r}")
                base_shared = False
            elif op == "STORE_GLOBAL":
                evidence.append(f"rebinds global {instr.argval!r}")
                base_shared = False
            elif op.startswith("LOAD_FAST"):
                base_shared = False
                base_name = str(instr.argval)
            elif op not in _TRANSPARENT_OPS:
                base_shared = False
    return evidence


def _check_replicated_state(prog: "FGProgram",
                            graph: ProgramGraph) -> Iterator[Finding]:
    for p in graph.pipelines:
        for node in p.stages:
            s = node.stage
            if not node.replicated or s.fn is None:
                continue
            evidence = _shared_state_evidence(s.fn)
            if any(n in ("convey", "convey_caboose")
                   for code in _iter_code_objects(s.fn)
                   for n in code.co_names):
                evidence.append(
                    "references convey (the replica sequencer owns "
                    "conveyance; replicated stages must only return "
                    "the buffer)")
            if evidence:
                listed = "; ".join(evidence[:3])
                if len(evidence) > 3:
                    listed += f"; and {len(evidence) - 3} more"
                yield Finding(
                    "FG109", Severity.ERROR,
                    f"stage {s.name!r} is declared with replicas but "
                    f"carries per-round mutable state: {listed}. "
                    "Interchangeable copies would race on it; keep the "
                    "stage single or move the state into buffer tags",
                    program=prog.name, pipeline=p.name, stage=s.name)


_CHECKS = (
    _check_pool_depth,
    _check_stage_order_cycle,
    _check_stage_contract,
    _check_eos_declarers,
    _check_zero_rounds,
    _check_failure_hook,
    _check_bounded_chains,
    _check_replicated_state,
)


def lint_program(prog: "FGProgram",
                 ignore: Optional[Iterable[str]] = None) -> LintReport:
    """Run every lint rule over ``prog`` and return the report.

    The program does not need to be started; rules operate on the
    declared structure (pipelines, stages, hooks).
    """
    suppressed = ignored_rules(ignore)
    graph = ProgramGraph.from_program(prog)
    report = LintReport()
    for check in _CHECKS:
        report.extend(f for f in check(prog, graph)
                      if f.rule_id not in suppressed)
    return report
