"""FGSan: dynamic buffer-ownership sanitizer for FG programs.

FG's discipline — a buffer belongs to exactly one pipeline, is owned by
exactly one stage between accept and convey, and must not be touched
after it is conveyed downstream — is what makes the fixed pools safe
without locks.  Today the discipline is trusted; FGSan checks it.

Enable per program (``FGProgram(sanitize=True)``) or globally
(``REPRO_SANITIZE=1``).  Each buffer then carries an ownership state:

    POOLED -> (source emits) -> IN_FLIGHT -> (stage accepts) -> HELD
    HELD -> (stage conveys) -> IN_FLIGHT -> ... -> (sink recycles) -> POOLED
    HELD -> (map stage returns None) -> DROPPED (legitimate pool shrink)
    POOLED -> (source retires it) -> RETIRED (dynamic pool shrink;
    terminal — any later emit/convey/access is a violation)

Buffers grown at runtime (``FGProgram.add_buffers``) are registered via
:meth:`Sanitizer.track` the moment they are materialized, so dynamic
pools are checked exactly like static ones.

Violations raise :class:`~repro.errors.SanitizerError` from the exact
operation that broke the discipline and are counted under
``sanitizer.<kind>`` metrics through the program observer:

* ``use_after_convey`` — ``data``/``view()``/``put()`` on a conveyed buffer
* ``double_convey`` — conveying a buffer already in flight
* ``convey_unheld`` — conveying a pooled/dropped buffer never accepted
* ``cross_pipeline`` — a buffer delivered along a foreign pipeline
* ``caboose_write`` — ``put()``/``view()`` on the end-of-stream marker
* ``stale_round`` — a recycled buffer re-emitted with its previous round
* ``retired`` — a retired buffer re-emitted, conveyed, or written
* ``leak`` — buffers still held by a stage after a clean teardown
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.buffer import Buffer
    from repro.core.pipeline import Pipeline
    from repro.core.program import FGProgram
    from repro.core.stage import Stage

__all__ = ["Sanitizer", "sanitize_from_env"]

POOLED = "pooled"
IN_FLIGHT = "in-flight"
HELD = "held"
DROPPED = "dropped"
RETIRED = "retired"

_TRUTHY = ("1", "true", "yes", "on")


def sanitize_from_env() -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitizing."""
    return os.environ.get("REPRO_SANITIZE", "").lower() in _TRUTHY


class _Track:
    """Ownership record for one buffer."""

    __slots__ = ("state", "holder")

    def __init__(self) -> None:
        self.state = POOLED
        self.holder: Optional[str] = None


class Sanitizer:
    """Per-program ownership tracker; installed at assembly time."""

    def __init__(self, program: "FGProgram") -> None:
        self.program = program
        self._tracks: dict[int, _Track] = {}
        self._buffers: list["Buffer"] = []

    # -- installation -------------------------------------------------------

    def install(self) -> None:
        """Register every pooled buffer; called once from assembly."""
        for p in self.program.pipelines:
            for buf in self.program.buffers_of(p):
                self.track(buf)

    def track(self, buf: "Buffer") -> None:
        """Start tracking one buffer (assembly pools and buffers grown at
        runtime by ``FGProgram.add_buffers`` both come through here)."""
        self._tracks[id(buf)] = _Track()
        self._buffers.append(buf)
        buf._san = self

    def _track(self, buf: "Buffer") -> Optional[_Track]:
        return self._tracks.get(id(buf))

    # -- violation reporting ------------------------------------------------

    def violation(self, kind: str, message: str) -> None:
        """Count the violation and raise from the offending operation."""
        self.program.observer.sanitizer_violation(kind)
        raise SanitizerError(kind, message)

    # -- lifecycle hooks (called by FGProgram / StageContext / Buffer) ------

    def on_emit(self, pipeline: "Pipeline", buf: "Buffer") -> None:
        """Source re-emits a recycled buffer (after ``clear()``)."""
        track = self._track(buf)
        if track is None:
            return
        if buf.round != -1:
            self.violation(
                "stale_round",
                f"{buf!r} re-emitted on {pipeline.name!r} still carrying "
                f"round {buf.round} from its previous trip; clear() must "
                "reset round to -1 before the source restamps it")
        if track.state == RETIRED:
            self.violation(
                "retired",
                f"source of {pipeline.name!r} re-emitted {buf!r}, which "
                "was retired from its pool")
        if track.state != POOLED:
            self.violation(
                "cross_pipeline",
                f"source of {pipeline.name!r} emitted {buf!r} which is "
                f"{track.state} (holder: {track.holder}), not pooled")
        track.state = IN_FLIGHT
        track.holder = None

    def on_accept(self, stage: "Stage", pipeline: "Pipeline",
                  buf: "Buffer") -> None:
        if buf.is_caboose:
            return
        track = self._track(buf)
        if track is None:
            return
        if buf.pipeline is not pipeline:
            self.violation(
                "cross_pipeline",
                f"stage {stage.name!r} accepted {buf!r} from pipeline "
                f"{pipeline.name!r}, but the buffer is tied to "
                f"{buf.pipeline.name!r} — buffers cannot jump pipelines")
        if track.state != IN_FLIGHT:
            self.violation(
                "cross_pipeline",
                f"stage {stage.name!r} accepted {buf!r} which is "
                f"{track.state} (holder: {track.holder}); it was never "
                "conveyed to this stage")
        track.state = HELD
        track.holder = stage.name

    def on_retire(self, pipeline: "Pipeline", buf: "Buffer") -> None:
        """The source took a recycled buffer out of circulation
        (``FGProgram.retire_buffers``); the state is terminal."""
        track = self._track(buf)
        if track is None:
            return
        if track.state != POOLED:
            self.violation(
                "retired",
                f"source of {pipeline.name!r} retired {buf!r} which is "
                f"{track.state} (holder: {track.holder}); only a pooled "
                "buffer can leave circulation")
        track.state = RETIRED
        track.holder = None

    def on_convey(self, stage: "Stage", buf: "Buffer") -> None:
        if buf.is_caboose:
            return
        track = self._track(buf)
        if track is None:
            return
        if track.state == RETIRED:
            self.violation(
                "retired",
                f"stage {stage.name!r} conveyed {buf!r}, which was "
                "retired from its pool; retired buffers must never "
                "re-enter circulation")
        if track.state == IN_FLIGHT:
            self.violation(
                "double_convey",
                f"stage {stage.name!r} conveyed {buf!r} twice; it is "
                "already in flight downstream")
        if track.state != HELD:
            self.violation(
                "convey_unheld",
                f"stage {stage.name!r} conveyed {buf!r} which is "
                f"{track.state}; only a buffer accepted by the stage "
                "may be conveyed")
        track.state = IN_FLIGHT
        track.holder = stage.name

    def on_foreign_convey(self, stage: "Stage", buf: "Buffer") -> None:
        """Stage tried to convey a buffer of a pipeline it is not in."""
        self.violation(
            "cross_pipeline",
            f"stage {stage.name!r} conveyed {buf!r} along pipeline "
            f"{buf.pipeline.name!r}, which the stage does not belong "
            "to — buffers cannot jump from one pipeline to another")

    def on_recycle(self, pipeline: "Pipeline", buf: "Buffer") -> None:
        track = self._track(buf)
        if track is None:
            return
        if buf.pipeline is not pipeline:
            self.violation(
                "cross_pipeline",
                f"sink of {pipeline.name!r} received {buf!r}, which is "
                f"tied to pipeline {buf.pipeline.name!r}")
        if track.state != IN_FLIGHT:
            self.violation(
                "double_convey",
                f"sink of {pipeline.name!r} received {buf!r} which is "
                f"{track.state} (holder: {track.holder})")
        track.state = POOLED
        track.holder = None

    def on_drop(self, stage: "Stage", buf: "Buffer") -> None:
        """A map-style stage returned None: the accepted buffer is
        intentionally abandoned (the pool shrinks for the rest of the
        run).  A no-op when the stage conveyed the buffer manually and
        then returned None — the buffer is in flight, not dropped."""
        if buf.is_caboose:
            return
        track = self._track(buf)
        if track is not None and track.state == HELD:
            track.state = DROPPED
            track.holder = stage.name

    def on_straggler(self, buf: "Buffer") -> None:
        """Virtual-group dispatch dropped an in-flight buffer that raced
        past its pipeline's shutdown (member EOS); not a leak."""
        if buf.is_caboose:
            return
        track = self._track(buf)
        if track is not None and track.state == IN_FLIGHT:
            track.state = DROPPED
            track.holder = None

    def on_access(self, buf: "Buffer", op: str) -> None:
        """``data``/``view``/``put`` touched ``buf`` (from Buffer)."""
        if buf.is_caboose:
            if op in ("put", "view"):
                self.violation(
                    "caboose_write",
                    f"{op}() on the caboose of pipeline "
                    f"{buf.pipeline.name!r}; the end-of-stream marker "
                    "carries no data")
            return
        track = self._track(buf)
        if track is None:
            return
        if track.state == RETIRED and op in ("put", "view"):
            self.violation(
                "retired",
                f"{op}() on {buf!r} after it was retired from its pool; "
                "a retired buffer's storage is considered reclaimed")
        if track.state == IN_FLIGHT and track.holder is not None:
            self.violation(
                "use_after_convey",
                f"{op} on {buf!r} after stage {track.holder!r} conveyed "
                "it downstream; the buffer now belongs to the next "
                "stage")

    # -- teardown -----------------------------------------------------------

    def check_teardown(self) -> None:
        """After a clean run, no stage may still hold a buffer.

        Only ``HELD`` counts as a leak: a buffer ``IN_FLIGHT`` at
        teardown is sitting in a channel the EOS already passed — the
        normal end state for over-emitted buffers in ``rounds=None``
        pipelines — while ``HELD`` means a stage kept ownership to the
        end without conveying or dropping."""
        leaked = []
        for buf in self._buffers:
            track = self._tracks[id(buf)]
            if track.state != HELD:
                continue
            leaked.append(f"{buf!r} held by {track.holder!r}")
        if leaked:
            self.program.observer.sanitizer_violation("leak", len(leaked))
            raise SanitizerError(
                "leak",
                f"{len(leaked)} buffer(s) still owned by a stage after "
                "a clean run: " + "; ".join(leaked))
