"""repro.check: static analysis + dynamic checkers for FG programs.

Three layers of correctness analysis over FG programs (docs/ANALYSIS.md):

* :mod:`repro.check.linter` — rule-based static analysis (FG101–FG114)
  of an assembled :class:`~repro.core.program.FGProgram`; runs
  automatically in ``start()`` and standalone via ``repro lint``.
* :mod:`repro.check.dataflow` — the shared bytecode walker behind the
  linter's provenance rules and the planner's resource signatures, plus
  FGPar: per-stage read/write effect sets and the
  ``pure`` / ``read_shared`` / ``write_shared`` parallel-safety verdict
  recorded into :class:`repro.plan.ir.StageNode`.
* :mod:`repro.check.sanitizer` / :mod:`repro.check.races` — the opt-in
  runtime checkers: FGSan tracks buffer ownership
  (``FGProgram(sanitize=True)`` / ``REPRO_SANITIZE=1``), FGRace checks
  shared-cell accesses for happens-before ordering
  (``FGProgram(race_detect=True)`` / ``REPRO_RACE=1``, ``strict`` for
  the static-coverage cross-check).
"""

from repro.check.dataflow import (
    PURE,
    READ_SHARED,
    WRITE_SHARED,
    Cell,
    Effects,
    ProgramEffects,
    classify_fn,
    fn_effects,
    program_effects,
)
from repro.check.findings import Finding, LintReport, Rule, Severity
from repro.check.linter import (
    RULES,
    ignored_rules,
    lint_program,
    normalize_rule_ids,
)
from repro.check.races import RaceDetector, RaceFinding, race_from_env
from repro.check.sanitizer import Sanitizer, sanitize_from_env

__all__ = [
    "Cell",
    "Effects",
    "Finding",
    "LintReport",
    "ProgramEffects",
    "PURE",
    "READ_SHARED",
    "RaceDetector",
    "RaceFinding",
    "Rule",
    "RULES",
    "Sanitizer",
    "Severity",
    "WRITE_SHARED",
    "classify_fn",
    "fn_effects",
    "ignored_rules",
    "lint_program",
    "normalize_rule_ids",
    "program_effects",
    "race_from_env",
    "sanitize_from_env",
]
