"""repro.check: static pipeline linter + dynamic buffer sanitizer (FGSan).

Two layers of correctness analysis over FG programs (docs/ANALYSIS.md):

* :mod:`repro.check.linter` — rule-based static analysis of an
  assembled :class:`~repro.core.program.FGProgram`; runs automatically
  in ``start()`` and standalone via ``repro lint``.
* :mod:`repro.check.sanitizer` — FGSan, the opt-in runtime
  buffer-ownership tracker (``FGProgram(sanitize=True)`` or
  ``REPRO_SANITIZE=1``).
"""

from repro.check.findings import Finding, LintReport, Rule, Severity
from repro.check.linter import RULES, ignored_rules, lint_program
from repro.check.sanitizer import Sanitizer, sanitize_from_env

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "RULES",
    "Sanitizer",
    "Severity",
    "ignored_rules",
    "lint_program",
    "sanitize_from_env",
]
