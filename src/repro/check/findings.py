"""Structured lint findings: rule IDs, severities, and report rendering.

Every lint rule produces zero or more :class:`Finding` objects carrying
the rule ID, severity, a human-readable message, and the offending
pipeline/stage path.  A :class:`LintReport` aggregates them and renders
as text (one line per finding) or JSON (for tooling)."""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any, Iterable, Optional

__all__ = ["Severity", "Finding", "Rule", "LintReport"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make :meth:`~repro.core.program.FGProgram.start`
    raise :class:`~repro.errors.LintError`; ``WARNING`` findings are
    recorded on the program (``prog.lint_findings``) but do not stop it.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclasses.dataclass(frozen=True)
class Rule:
    """Static description of one lint rule (ID, severity, summary)."""

    rule_id: str
    title: str
    severity: Severity
    summary: str


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation located in a program."""

    rule_id: str
    severity: Severity
    message: str
    program: str = ""
    pipeline: Optional[str] = None
    stage: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def path(self) -> str:
        """The pipeline/stage location, e.g. ``fg/pass1.read/read0``."""
        parts = [self.program or "?"]
        if self.pipeline is not None:
            parts.append(self.pipeline)
        if self.stage is not None:
            parts.append(self.stage)
        return "/".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "program": self.program,
            "pipeline": self.pipeline,
            "stage": self.stage,
        }

    def __str__(self) -> str:
        return (f"{self.rule_id} {self.severity.value}: "
                f"{self.path}: {self.message}")


class LintReport:
    """The findings of one lint pass over one (or several) programs."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: list[Finding] = list(findings)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.is_error]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if not f.is_error]

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Any:
        return iter(self.findings)

    def render(self) -> str:
        """One line per finding, then a summary line."""
        lines = [str(f) for f in self.findings]
        lines.append(f"{len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "findings": [f.to_dict() for f in self.findings],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }, indent=2)
