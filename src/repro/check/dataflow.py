"""FGPar: static parallel-safety effect analysis over stage bytecode.

This module is the *one* bytecode walker behind every static analysis in
the repo.  Before it existed there were two independent walks — FG109's
provenance scan in :mod:`repro.check.linter` and ``resource_classes`` in
:mod:`repro.plan.fuse` — that drifted whenever either learned a new
opcode.  Both now delegate here, and on top of the shared walk this
module adds what the true-parallel backend (ROADMAP item 2) needs:
per-stage *effect sets* and a ``parallel_safety`` classification.

Three layers, bottom to top:

* :func:`iter_code_objects` — the walk itself.  ``follow_callables=True``
  reproduces the historical closure-/global-following frontier (used by
  the EOS scan, FG109 evidence, and resource signatures, which must see
  helper functions a stage calls); ``follow_callables=False`` restricts
  the walk to the function's own code plus nested code constants, which
  is the right scope for *effects*: a sibling closure shared between two
  stage functions acts on behalf of whichever stage calls it, and
  attributing its writes to both would fabricate cross-stage races.
* :func:`fn_effects` — an abstract interpretation of the restricted walk
  that infers which *cells* (closure variables, module globals, and
  attribute/const-key-subscript slots of objects reached through them) a
  stage function reads and writes.  Names defined inside the stage
  function (cellvars of its own nested functions) are invocation-local
  and never shared.
* :func:`classify_fn` / :func:`program_effects` — the verdicts: every
  stage is ``pure`` (touches no shared mutable state), ``read_shared``,
  or ``write_shared``; :class:`ProgramEffects` intersects the per-stage
  cell sets into the cross-stage conflict pairs that FG110 and the
  FGRace cross-check consume.

Cells are identified by the ``id()`` of the base object resolved at
analysis time, refined by a constant subscript key or attribute name
when the bytecode shows one.  A mutation with no visible key (e.g.
``state.pop(k)``) is a whole-object write and conflicts with any keyed
access of the same object; a keyed write conflicts with same-key
accesses and whole-object *writes* (a whole-object *read* is usually a
method call the scan could not classify — weak evidence, deliberately
not a conflict).  Variable-key subscripts are a known false negative,
exactly as documented for FG109.
"""

from __future__ import annotations

import builtins
import dataclasses
import dis
import inspect
import io
import sys
import threading
import types
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "PURE",
    "READ_SHARED",
    "WRITE_SHARED",
    "Cell",
    "Effects",
    "ProgramEffects",
    "StageEffects",
    "cells_conflict",
    "classify_fn",
    "fn_effects",
    "iter_code_objects",
    "program_effects",
    "reachable_names",
    "shared_state_evidence",
    "unserializable_captures",
]

#: the three parallel-safety verdicts, as stable strings (they go into
#: ``ProgramGraph.canonical()`` and therefore the provenance fingerprint)
PURE = "pure"
READ_SHARED = "read_shared"
WRITE_SHARED = "write_shared"

#: method names whose call on a shared container is treated as mutation.
#: Deliberately omits ambiguous names (``sort``, ``write``, ``reverse``)
#: that are common as *pure* methods on schema/file objects.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "setdefault", "remove", "discard", "clear",
})

#: opcodes that pass the provenance of the value under construction
#: through unchanged (subscripts, arithmetic, stack shuffling).
TRANSPARENT_OPS = frozenset({
    "LOAD_CONST", "BINARY_SUBSCR", "BINARY_SLICE", "BINARY_OP",
    "UNARY_NEGATIVE", "UNARY_NOT", "UNARY_INVERT",
    "COPY", "SWAP", "DUP_TOP", "DUP_TOP_TWO",
    "ROT_TWO", "ROT_THREE", "ROT_FOUR", "CACHE", "EXTENDED_ARG",
})

#: values of these types cannot hold cross-stage mutable state (for the
#: method-call branch; *rebinding* them is still a write to their cell).
IMMUTABLE_TYPES = (type(None), bool, int, float, complex, str, bytes,
                   tuple, frozenset, types.FunctionType,
                   types.BuiltinFunctionType, types.ModuleType, type)

_UNKNOWN = object()


def _is_method_load(instr: dis.Instruction) -> bool:
    """True when this instruction loads an attribute *as a callee* (the
    compiler's method-call form), as opposed to a plain attribute read.
    3.11 has a dedicated LOAD_METHOD; 3.12+ folds it into LOAD_ATTR with
    the low oparg bit set."""
    if instr.opname == "LOAD_METHOD":
        return True
    if instr.opname == "LOAD_ATTR" and sys.version_info >= (3, 12):
        return bool(instr.arg) and bool(instr.arg & 1)
    return False


def _is_callee_global(instr: dis.Instruction) -> bool:
    """True when a LOAD_GLOBAL is in callee position (the low oparg bit
    asks for the NULL push that precedes a call, 3.11+)."""
    return (instr.opname == "LOAD_GLOBAL"
            and bool(instr.arg) and bool(instr.arg & 1))


# -- the shared walk --------------------------------------------------------


def iter_code_objects(fn: Callable[..., Any], *,
                      follow_callables: bool = True,
                      max_depth: int = 4) -> Iterator[types.CodeType]:
    """Yield ``fn``'s code object and those reachable from it.

    Always recurses through nested code constants (inner functions and
    comprehensions).  With ``follow_callables`` it additionally follows
    closure cells holding functions and module-global functions the code
    references by name — the historical FG104/FG109/resource-class
    frontier.  Bounded by ``max_depth`` and a seen-set, so arbitrary
    user code cannot loop the scan.
    """
    seen: set[int] = set()
    frontier: list[tuple[Any, int]] = [(fn, 0)]
    while frontier:
        obj, depth = frontier.pop()
        func = inspect.unwrap(obj) if callable(obj) else obj
        code = getattr(func, "__code__", None)
        if isinstance(obj, types.CodeType):
            code = obj
        if code is None or id(code) in seen or depth > max_depth:
            continue
        seen.add(id(code))
        yield code
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                frontier.append((const, depth + 1))
        if not follow_callables:
            continue
        closure = getattr(func, "__closure__", None) or ()
        globals_ns = getattr(func, "__globals__", {})
        for cell in closure:
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                continue
            if callable(value):
                frontier.append((value, depth + 1))
        for name in code.co_names:
            value = globals_ns.get(name)
            if isinstance(value, types.FunctionType):
                frontier.append((value, depth + 1))


def reachable_names(fn: Callable[..., Any]) -> frozenset[str]:
    """Every ``co_names`` entry reachable from ``fn`` under the full
    closure-following walk — the input to resource-class signatures."""
    names: set[str] = set()
    for code in iter_code_objects(fn):
        names.update(code.co_names)
    return frozenset(names)


def _closure_cell(fn: Callable[..., Any], name: str) -> Any:
    """The cell object binding free variable ``name`` of ``fn``, or
    ``_UNKNOWN``."""
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is None or closure is None:
        return _UNKNOWN
    try:
        return closure[code.co_freevars.index(name)]
    except (ValueError, IndexError):
        return _UNKNOWN


def _closure_value(fn: Callable[..., Any], name: str) -> Any:
    """The object a free variable of ``fn`` is bound to, or ``_UNKNOWN``."""
    cell = _closure_cell(fn, name)
    if cell is _UNKNOWN:
        return _UNKNOWN
    try:
        return cell.cell_contents
    except ValueError:  # pragma: no cover - empty cell
        return _UNKNOWN


# -- FG109 parity layer -----------------------------------------------------


def shared_state_evidence(fn: Callable[..., Any]) -> list[str]:
    """Evidence strings that ``fn`` mutates state its replicas share.

    A linear bytecode walk tracking coarse provenance of the object under
    construction: a load from a free variable or a module global marks it
    *shared*, a load from a local marks it *private*, and subscript /
    attribute / stack ops preserve the mark.  Mutation evidence is then

    * a mutating method (``append``, ``update``, ...) looked up on a
      shared object,
    * ``STORE_SUBSCR`` / ``STORE_ATTR`` whose target is shared,
    * rebinding a free variable (``STORE_DEREF``) or a global.

    Heuristic by design: it follows only straight-line provenance, so
    aliasing through locals escapes it — but that is exactly the
    contract FG109 documents (it catches the idiomatic per-round
    accumulator, not adversarial code).
    """
    globals_ns = getattr(inspect.unwrap(fn), "__globals__", {})
    evidence: list[str] = []

    def shared_global(name: str) -> bool:
        value = globals_ns.get(name, getattr(builtins, name, _UNKNOWN))
        if value is _UNKNOWN:
            return False
        return not isinstance(value, IMMUTABLE_TYPES)

    def shared_free(name: str) -> bool:
        value = _closure_value(fn, name)
        if value is _UNKNOWN:
            return True  # unresolvable cell: assume shared
        return not isinstance(value, IMMUTABLE_TYPES)

    for code in iter_code_objects(fn):
        base_shared = False
        base_name = ""
        for instr in dis.get_instructions(code):
            op = instr.opname
            if op in ("LOAD_DEREF", "LOAD_CLASSDEREF"):
                base_name = str(instr.argval)
                base_shared = (base_name in code.co_freevars
                               and shared_free(base_name))
            elif op == "LOAD_GLOBAL":
                base_name = str(instr.argval)
                base_shared = shared_global(base_name)
            elif op in ("LOAD_METHOD", "LOAD_ATTR"):
                if base_shared and instr.argval in MUTATING_METHODS:
                    evidence.append(
                        f"calls .{instr.argval}() on shared "
                        f"{base_name!r}")
                    base_shared = False
            elif op == "STORE_SUBSCR":
                if base_shared:
                    evidence.append(
                        f"assigns into shared {base_name!r}")
                base_shared = False
            elif op == "STORE_ATTR":
                if base_shared:
                    evidence.append(
                        f"sets .{instr.argval} on shared {base_name!r}")
                base_shared = False
            elif op == "STORE_DEREF":
                if instr.argval in code.co_freevars:
                    evidence.append(
                        f"rebinds closure variable {instr.argval!r}")
                base_shared = False
            elif op == "STORE_GLOBAL":
                evidence.append(f"rebinds global {instr.argval!r}")
                base_shared = False
            elif op.startswith("LOAD_FAST"):
                base_shared = False
                base_name = str(instr.argval)
            elif op not in TRANSPARENT_OPS:
                base_shared = False
    return evidence


# -- effect extraction ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Cell:
    """One shared mutable location a stage function can touch.

    Identity (``obj_id`` + ``key``) is what conflict detection compares;
    ``label`` is the deterministic human-readable name (never an id), so
    findings and race reports read like the source.
    """

    #: ``id()`` of the resolved base object; 0 for unresolvable cells
    obj_id: int
    #: ``"['k']"`` for a const-key subscript slot, ``".attr"`` for an
    #: attribute slot, None for the whole object
    key: Optional[str]
    label: str = dataclasses.field(compare=False, hash=False, default="")

    @property
    def resolved(self) -> bool:
        return self.obj_id != 0

    def __str__(self) -> str:
        return self.label or f"<cell {self.obj_id}{self.key or ''}>"


def cells_conflict(a: Cell, b: Cell, *, a_writes: bool,
                   b_writes: bool) -> bool:
    """True when accesses to ``a`` and ``b`` can touch the same memory.

    Requires the same resolved base object and at least one write.  A
    whole-object write conflicts with everything on the object; a keyed
    write conflicts with same-key accesses and whole-object writes (a
    whole-object read — usually an unclassified method call — is
    deliberately not enough evidence against a keyed write).
    """
    if not (a_writes or b_writes):
        return False
    if not a.resolved or not b.resolved or a.obj_id != b.obj_id:
        return False
    if a.key == b.key:
        return True
    if a.key is None:
        return a_writes
    if b.key is None:
        return b_writes
    return False


@dataclasses.dataclass(frozen=True)
class Effects:
    """The inferred effect sets of one stage function."""

    reads: frozenset[Cell]
    writes: frozenset[Cell]
    #: shared names the scan could not resolve to an object but saw
    #: written (rebind of an unresolvable closure cell, ...)
    unresolved_writes: tuple[str, ...] = ()
    #: FG111 evidence: ways an alias of the stage's buffer can outlive
    #: its convey
    buffer_escapes: tuple[str, ...] = ()

    @property
    def classification(self) -> str:
        if self.writes or self.unresolved_writes:
            return WRITE_SHARED
        if self.reads:
            return READ_SHARED
        return PURE


class _EffectScan:
    """One abstract-interpretation pass over a stage function."""

    def __init__(self, fn: Callable[..., Any],
                 buffer_param: Optional[str]) -> None:
        self.fn = inspect.unwrap(fn)
        self.globals_ns: dict[str, Any] = getattr(
            self.fn, "__globals__", {})
        code0 = getattr(self.fn, "__code__", None)
        #: free variables of the stage function itself — the only names
        #: that can reach state shared with other stages
        self.own_free: frozenset[str] = frozenset(
            code0.co_freevars) if code0 is not None else frozenset()
        self.buffer_param = buffer_param
        self.reads: set[Cell] = set()
        self.writes: set[Cell] = set()
        self.unresolved_writes: set[str] = set()
        self.escapes: list[str] = []

    # -- cell construction ----------------------------------------------

    def _free_base(self, name: str) -> Optional[Cell]:
        """Cell for the object a shared free variable holds, or None
        when the value is immutable (nothing to race on)."""
        value = _closure_value(self.fn, name)
        if value is _UNKNOWN:
            return Cell(0, None, name)
        if isinstance(value, IMMUTABLE_TYPES):
            return None
        return Cell(id(value), None, name)

    def _global_base(self, name: str) -> Optional[Cell]:
        value = self.globals_ns.get(
            name, getattr(builtins, name, _UNKNOWN))
        if value is _UNKNOWN or isinstance(value, IMMUTABLE_TYPES):
            return None
        return Cell(id(value), None, name)

    def _deref_write_cell(self, name: str) -> Cell:
        """The cell a ``nonlocal``-style rebind writes: the closure cell
        object itself (shared by every function capturing the variable)."""
        cell = _closure_cell(self.fn, name)
        if cell is _UNKNOWN:
            return Cell(0, None, name)
        return Cell(id(cell), None, name)

    # -- the walk -------------------------------------------------------

    def run(self) -> Effects:
        for code in iter_code_objects(self.fn, follow_callables=False):
            self._scan_code(code)
        return Effects(
            reads=frozenset(self.reads), writes=frozenset(self.writes),
            unresolved_writes=tuple(sorted(self.unresolved_writes)),
            buffer_escapes=tuple(self.escapes))

    def _record_write(self, cell: Cell) -> None:
        if cell.resolved:
            self.writes.add(cell)
        else:
            self.unresolved_writes.add(cell.label)

    def _scan_code(self, code: types.CodeType) -> None:
        # provenance register: the shared cell (if any) of the value
        # most recently constructed, plus the alias flags FG111 needs
        base: Optional[Cell] = None
        base_key: Optional[str] = None  # const key loaded after base
        reg_alias = False               # register holds a buffer alias
        alias_pending = False           # an alias was loaded and not yet
        #                                 consumed (value side of a store)
        alias_locals: set[str] = set()
        if self.buffer_param is not None \
                and self.buffer_param in code.co_varnames:
            alias_locals.add(self.buffer_param)
        # pending-callee stack: one entry per callee load not yet
        # consumed by a CALL, so nested argument calls (``len(records)``
        # inside ``shared.append(...)``) pair with *their own* CALL and
        # never launder — or trip — the outer mutator.  Entries are
        # ("mut", label) for a mutating method on a shared base,
        # ("alias_fn", None) for ``ctx.accept`` / ``buf.view`` whose
        # result aliases the buffer, ("fn", None) for anything else.
        pending: list[tuple[str, Optional[str]]] = []
        call_made_alias = False

        for instr in dis.get_instructions(code):
            op = instr.opname
            if op in ("LOAD_DEREF", "LOAD_CLASSDEREF"):
                name = str(instr.argval)
                base_key = None
                reg_alias = False
                if name in self.own_free:
                    base = self._free_base(name)
                else:
                    base = None  # interior (stage-private) variable
            elif op == "LOAD_GLOBAL":
                base = self._global_base(str(instr.argval))
                base_key = None
                reg_alias = False
                if _is_callee_global(instr):
                    pending.append(("fn", None))
            elif op.startswith("LOAD_FAST"):
                name = str(instr.argval)
                base = None
                base_key = None
                reg_alias = name in alias_locals
                if reg_alias:
                    alias_pending = True
            elif op == "LOAD_CONST":
                if base is not None and base.key is None \
                        and isinstance(instr.argval, (str, int)):
                    base_key = f"[{instr.argval!r}]"
                # const loads never clobber the register (transparent)
            elif op in ("LOAD_METHOD", "LOAD_ATTR"):
                attr = str(instr.argval)
                is_method = _is_method_load(instr)
                if base is not None:
                    if attr in MUTATING_METHODS and is_method:
                        cell = dataclasses.replace(
                            base, key=base.key or base_key,
                            label=self._slot_label(base, base_key))
                        self._record_write(cell)
                        pending.append(("mut", cell.label))
                        base = None
                    else:
                        slot = Cell(base.obj_id, f".{attr}",
                                    f"{base.label}.{attr}")
                        self.reads.add(slot if base.key is None
                                       else base)
                        base = slot
                        if is_method:
                            pending.append(("fn", None))
                    base_key = None
                elif reg_alias and attr == "data":
                    pass  # buf.data: register stays an alias
                elif reg_alias:
                    if is_method and attr == "view":
                        pending.append(("alias_fn", None))
                    elif is_method:
                        pending.append(("fn", None))
                        reg_alias = False
                    else:
                        reg_alias = False
                elif attr == "accept" and is_method:
                    pending.append(("alias_fn", None))
                elif is_method:
                    pending.append(("fn", None))
            elif op == "BINARY_SUBSCR":
                if base is not None:
                    key = base.key or base_key
                    cell = dataclasses.replace(
                        base, key=key, label=self._slot_label(
                            base, base_key))
                    self.reads.add(cell)
                    base = cell
                    base_key = None
                # subscripting an alias keeps the alias (a slice of the
                # buffer's data still views its memory)
            elif op == "BINARY_SLICE":
                base_key = None
            elif op == "STORE_SUBSCR":
                if base is not None:
                    key = base.key or base_key
                    cell = dataclasses.replace(
                        base, key=key,
                        label=self._slot_label(base, base_key))
                    self._record_write(cell)
                    if alias_pending:
                        self.escapes.append(
                            f"stores a buffer alias into shared "
                            f"{cell.label!r}")
                base = None
                base_key = None
                alias_pending = False
                reg_alias = False
            elif op == "STORE_ATTR":
                if base is not None:
                    attr = str(instr.argval)
                    cell = Cell(base.obj_id, f".{attr}",
                                f"{base.label}.{attr}")
                    self._record_write(cell)
                    if alias_pending:
                        self.escapes.append(
                            f"stores a buffer alias into shared "
                            f"{cell.label!r}")
                base = None
                base_key = None
                alias_pending = False
                reg_alias = False
            elif op == "STORE_DEREF":
                name = str(instr.argval)
                if name in self.own_free:
                    self._record_write(self._deref_write_cell(name))
                    if alias_pending or reg_alias:
                        self.escapes.append(
                            f"stows a buffer alias in closure variable "
                            f"{name!r}")
                base = None
                base_key = None
                alias_pending = False
                reg_alias = False
            elif op == "STORE_GLOBAL":
                name = str(instr.argval)
                self._record_write(
                    Cell(id(self.globals_ns), f"[{name!r}]",
                         f"global {name}"))
                if alias_pending or reg_alias:
                    self.escapes.append(
                        f"stows a buffer alias in global {name!r}")
                base = None
                base_key = None
                alias_pending = False
                reg_alias = False
            elif op.startswith("STORE_FAST"):
                name = str(instr.argval)
                if reg_alias or call_made_alias:
                    alias_locals.add(name)
                else:
                    alias_locals.discard(name)
                base = None
                base_key = None
                alias_pending = False
                reg_alias = False
                call_made_alias = False
            elif (op.startswith("CALL")
                    and not op.startswith("CALL_INTRINSIC")) \
                    or op == "PRECALL":
                if op == "PRECALL":
                    continue  # 3.11 companion opcode; CALL follows
                kind, label = pending.pop() if pending else ("fn", None)
                if kind == "mut" and (alias_pending or reg_alias):
                    self.escapes.append(
                        f"passes a buffer alias into shared "
                        f"{label!r}")
                call_made_alias = kind == "alias_fn"
                base = None
                base_key = None
                # an alias-producing call leaves an alias on the stack,
                # still pending as e.g. an argument of an enclosing call
                alias_pending = call_made_alias
                reg_alias = call_made_alias
            elif op in TRANSPARENT_OPS:
                continue
            else:
                base = None
                base_key = None
                reg_alias = False

    @staticmethod
    def _slot_label(base: Cell, base_key: Optional[str]) -> str:
        key = base.key or base_key
        if key is None:
            return base.label
        if base.key is not None:
            return base.label
        return f"{base.label}{key}"


def fn_effects(fn: Callable[..., Any], *,
               buffer_param: Optional[str] = None) -> Effects:
    """Infer the shared-state effect sets of one stage function.

    Walks the function's own code and nested code constants only (see
    the module docstring for why sibling closures are excluded), except
    that a *fused* stage (``repro.plan.fuse``) stamps its constituent
    functions on the composed one as ``_fg_effect_parts`` and the
    composition's effects are the union of its parts'.
    """
    parts = getattr(fn, "_fg_effect_parts", None)
    if parts:
        reads: set[Cell] = set()
        writes: set[Cell] = set()
        unresolved: list[str] = []
        escapes: list[str] = []
        for part in parts:
            eff = fn_effects(part, buffer_param=_buffer_param_of(part))
            reads.update(eff.reads)
            writes.update(eff.writes)
            unresolved.extend(eff.unresolved_writes)
            escapes.extend(eff.buffer_escapes)
        return Effects(frozenset(reads), frozenset(writes),
                       tuple(sorted(set(unresolved))), tuple(escapes))
    return _EffectScan(fn, buffer_param).run()


def _buffer_param_of(fn: Callable[..., Any]) -> Optional[str]:
    """Name of the buffer parameter of a map-style ``fn(ctx, buf)``."""
    code = getattr(inspect.unwrap(fn), "__code__", None)
    if code is None or code.co_argcount < 2:
        return None
    return code.co_varnames[1]


def classify_fn(fn: Optional[Callable[..., Any]], *,
                style: str = "map") -> Optional[str]:
    """``pure`` / ``read_shared`` / ``write_shared`` for a stage
    function; None when there is no function to classify."""
    if fn is None:
        return None
    buffer_param = _buffer_param_of(fn) if style == "map" else None
    return fn_effects(fn, buffer_param=buffer_param).classification


# -- FG114: unserializable captures ----------------------------------------


#: types a stage closure cannot carry across a process boundary.
#: Deliberately *excludes* FG-native objects (Kernel, Process, Channel):
#: those have kernel-level identity a multiprocessing backend proxies
#: itself, and control channels are idiomatic FG (fork/join gating) —
#: flagging them would warn on every coordinating stage.
_UNSERIALIZABLE_TYPES: tuple[type, ...] = (
    io.IOBase, types.GeneratorType, type(threading.Lock()),
    type(threading.RLock()), threading.Thread, threading.Event,
    threading.Condition)


def unserializable_captures(fn: Callable[..., Any]) -> list[str]:
    """Names of closure cells / globals of ``fn`` directly holding a
    value that cannot cross a process boundary (raw lock, open file
    handle, generator, thread).

    Direct captures only: an object that merely *contains* a lock (every
    cluster node does) serializes via its own reduction, so transitive
    reachability would flag the entire runtime.
    """
    fn = inspect.unwrap(fn)
    bad = _UNSERIALIZABLE_TYPES
    found: list[str] = []
    code = getattr(fn, "__code__", None)
    if code is None:
        return found
    for name in code.co_freevars:
        value = _closure_value(fn, name)
        if value is not _UNKNOWN and isinstance(value, bad):
            found.append(
                f"closure variable {name!r} holds a "
                f"{type(value).__name__}")
    globals_ns = getattr(fn, "__globals__", {})
    for name in sorted(set(code.co_names)):
        value = globals_ns.get(name, _UNKNOWN)
        if value is not _UNKNOWN and isinstance(value, bad):
            found.append(f"global {name!r} holds a "
                         f"{type(value).__name__}")
    return found


# -- whole-program view -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StageEffects:
    """One stage's verdict within a program."""

    name: str
    pipeline: str
    style: str
    effects: Effects
    classification: Optional[str]
    #: ``id()`` of the stage function — the runtime key FGRace uses, so
    #: same-named stages of different programs on one kernel (every node
    #: of a cluster run) never alias each other's effect sets
    fn_id: int = 0


@dataclasses.dataclass(frozen=True)
class Conflict:
    """Two stages that can touch the same cell, at least one writing."""

    stage_a: str
    stage_b: str
    pipeline_a: str
    pipeline_b: str
    cell: Cell
    kind: str  # "write-write" | "write-read"


@dataclasses.dataclass
class ProgramEffects:
    """Per-stage effects + cross-stage conflict pairs for one program."""

    stages: list[StageEffects]
    #: conflicts between stages that can run concurrently (same pipeline
    #: or same intersecting-pipeline family) — FG110's scope
    conflicts: list[Conflict]
    #: conflicts across the whole program regardless of pipeline
    #: structure — the FGRace cross-check's prediction set
    all_conflicts: list[Conflict]

    def stage(self, name: str) -> Optional[StageEffects]:
        for entry in self.stages:
            if entry.name == name:
                return entry
        return None

    def predicted_pairs(self) -> set[tuple[frozenset[str], int,
                                           Optional[str]]]:
        """``(stage-name pair, cell obj_id, cell key)`` for every
        statically predicted conflict — what the FGRace strict mode
        checks dynamic races against."""
        return {(frozenset((c.stage_a, c.stage_b)), c.cell.obj_id,
                 c.cell.key) for c in self.all_conflicts}


def _family_index(graph: Any) -> dict[int, int]:
    """Union-find over intersecting pipelines: id(PipelineIR) -> family."""
    index = {id(p): i for i, p in enumerate(graph.pipelines)}
    parent = {i: i for i in index.values()}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for _stage, pipes in graph.intersections():
        roots = [find(index[id(p)]) for p in pipes]
        for r in roots[1:]:
            parent[r] = roots[0]
    return {pid: find(i) for pid, i in index.items()}


def program_effects(graph: Any) -> ProgramEffects:
    """Analyze every stage of a :class:`repro.plan.ir.ProgramGraph`.

    Duck-typed on the graph (pipelines / stages / intersections) so this
    module imports nothing from :mod:`repro.plan` — the IR imports *us*
    to stamp ``parallel_safety``.
    """
    entries: list[StageEffects] = []
    by_stage: dict[int, tuple[StageEffects, Any]] = {}
    for p in graph.pipelines:
        for node in p.stages:
            s = node.stage
            if id(s) in by_stage:
                continue
            fn = s.fn
            if fn is None:
                eff = Effects(frozenset(), frozenset())
                cls: Optional[str] = None
            else:
                buffer_param = (_buffer_param_of(fn)
                                if node.style == "map" else None)
                eff = fn_effects(fn, buffer_param=buffer_param)
                cls = eff.classification
            entry = StageEffects(name=node.name, pipeline=p.name,
                                 style=node.style, effects=eff,
                                 classification=cls,
                                 fn_id=0 if fn is None else id(fn))
            entries.append(entry)
            by_stage[id(s)] = (entry, p)
    families = _family_index(graph)
    scoped: list[Conflict] = []
    everywhere: list[Conflict] = []
    items = list(by_stage.values())
    for i, (a, pa) in enumerate(items):
        for b, pb in items[i + 1:]:
            found = _pair_conflicts(a, b)
            everywhere.extend(found)
            if found and families[id(pa)] == families[id(pb)]:
                scoped.extend(found)
    return ProgramEffects(stages=entries, conflicts=scoped,
                          all_conflicts=everywhere)


def _pair_conflicts(a: StageEffects, b: StageEffects) -> list[Conflict]:
    out: list[Conflict] = []
    for wa in a.effects.writes:
        for wb in b.effects.writes:
            if cells_conflict(wa, wb, a_writes=True, b_writes=True):
                out.append(Conflict(a.name, b.name, a.pipeline,
                                    b.pipeline, wa, "write-write"))
        for rb in b.effects.reads:
            if cells_conflict(wa, rb, a_writes=True, b_writes=False):
                out.append(Conflict(a.name, b.name, a.pipeline,
                                    b.pipeline, wa, "write-read"))
    for wb in b.effects.writes:
        for ra in a.effects.reads:
            if cells_conflict(wb, ra, a_writes=True, b_writes=False):
                out.append(Conflict(b.name, a.name, b.pipeline,
                                    a.pipeline, wb, "write-read"))
    return out
