"""ProvenanceRecord: one run's full identity, as a JSON document.

A provenance record captures everything needed to (a) re-execute a run
byte-exactly under the virtual-time kernel and (b) decide whether a
later re-execution *did* reproduce it:

* ``kind`` + ``args`` — which harness entry point to call and with what
  arguments (``"sort"`` → :func:`repro.bench.harness.run_sort`,
  ``"chaos_dsort"`` → :func:`repro.faults.chaos.run_chaos_dsort`);
* ``seeds`` — every seed the run consumed (workload generator, sorter
  config, fault plan);
* ``fault_plan`` — the serialized :class:`~repro.faults.plan.FaultPlan`
  (``None`` for fault-free runs), round-trippable via
  :meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`;
* ``tune_decisions`` — the in-run tuner decision log, harvested from the
  kernel trace's ``tune`` instants (zero per-app code);
* ``stage_graphs`` — fingerprint per assembled FG program, captured
  through the :class:`~repro.obs.observer.ProgramObserver` event path;
* ``repro_version`` / ``code_fingerprint`` — which source tree ran;
* ``digests`` — sha256 of the sorted output bytes, the metrics snapshot,
  and the scheduler event trace.

Everything except ``created`` (an optional wall-clock stamp, for humans)
is deterministic: recording the same run twice yields byte-identical
records, and :meth:`ProvenanceRecord.record_digest` — the record's own
identity — excludes ``created`` so the stamp never perturbs it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import IO, TYPE_CHECKING, Optional, Union

from repro.errors import ReproError
from repro.prov.fingerprint import canonical_json, digest_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import Tracer

__all__ = [
    "RECORD_VERSION",
    "ProvenanceRecord",
    "metrics_digest",
    "output_digest",
    "recovery_decision_log",
    "sched_decision_log",
    "trace_digest",
    "tune_decision_log",
]

#: bump when the record format changes incompatibly
RECORD_VERSION = 1


def output_digest(data: bytes) -> str:
    """sha256 over the raw output record bytes, in global order."""
    return hashlib.sha256(data).hexdigest()


def metrics_digest(snapshot: dict) -> str:
    """sha256 over a metrics-registry snapshot in canonical JSON."""
    return digest_json(snapshot)


def trace_digest(tracer: "Tracer") -> str:
    """sha256 over the full scheduler event timeline.

    The line format matches what the chaos harness has always hashed, so
    pre-provenance trace digests stay comparable.
    """
    h = hashlib.sha256()
    for ev in tracer.events:
        h.update(f"{ev.time:.9e}|{ev.process}|{ev.kind}|"
                 f"{ev.detail}\n".encode())
    return h.hexdigest()


def tune_decision_log(tracer: Optional["Tracer"]) -> list[dict]:
    """Every tuner decision the run recorded, from the trace's ``tune``
    instants — the zero-per-app-code capture path for
    :class:`~repro.tune.controller.TuneController` activity."""
    if tracer is None:
        return []
    from repro.sim.trace import TUNE

    return [{"time": ev.time, "process": ev.process, "detail": ev.detail}
            for ev in tracer.events if ev.kind == TUNE]


def recovery_decision_log(tracer: Optional["Tracer"]) -> list[dict]:
    """Every recovery decision the run recorded, from the trace's
    ``recover`` instants — the zero-per-app-code capture path for
    :class:`~repro.recover.RecoveryManager` activity (checkpoint resume,
    speculation, partition re-assignment)."""
    if tracer is None:
        return []
    from repro.sim.trace import RECOVER

    return [{"time": ev.time, "process": ev.process, "detail": ev.detail}
            for ev in tracer.events if ev.kind == RECOVER]


def sched_decision_log(tracer: Optional["Tracer"]) -> list[dict]:
    """Every multi-tenant scheduler decision the run recorded, from the
    trace's ``sched`` instants — the zero-per-app-code capture path for
    :class:`~repro.sched.Scheduler` activity (admission, placement,
    preemption, speculation grants)."""
    if tracer is None:
        return []
    from repro.sim.trace import SCHED

    return [{"time": ev.time, "process": ev.process, "detail": ev.detail}
            for ev in tracer.events if ev.kind == SCHED]


@dataclasses.dataclass
class ProvenanceRecord:
    """One run's identity; see the module docstring for field semantics."""

    kind: str
    args: dict = dataclasses.field(default_factory=dict)
    seeds: dict = dataclasses.field(default_factory=dict)
    fault_plan: Optional[dict] = None
    tune_decisions: list = dataclasses.field(default_factory=list)
    #: the recovery manager's decision trail (``recover`` trace instants;
    #: empty for runs without a RecoveryManager)
    recovery_decisions: list = dataclasses.field(default_factory=list)
    #: the multi-tenant scheduler's decision trail (``sched`` trace
    #: instants; empty for single-program runs)
    sched_decisions: list = dataclasses.field(default_factory=list)
    stage_graphs: dict = dataclasses.field(default_factory=dict)
    digests: dict = dataclasses.field(default_factory=dict)
    repro_version: str = ""
    code_fingerprint: str = ""
    record_version: int = RECORD_VERSION
    #: optional wall-clock stamp for humans; excluded from record_digest
    created: str = ""

    # -- identity -----------------------------------------------------------

    def record_digest(self) -> str:
        """sha256 identity of the record itself (``created`` excluded,
        so stamping a record never changes what it identifies)."""
        doc = self.to_json()
        doc.pop("created", None)
        return hashlib.sha256(canonical_json(doc).encode()).hexdigest()

    # -- serialization ------------------------------------------------------

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, doc: dict) -> "ProvenanceRecord":
        if not isinstance(doc, dict) or "kind" not in doc:
            raise ReproError(
                "not a provenance record: expected a JSON object with a "
                f"'kind' field, got {type(doc).__name__}")
        version = doc.get("record_version", RECORD_VERSION)
        if version > RECORD_VERSION:
            raise ReproError(
                f"provenance record version {version} is newer than this "
                f"code understands ({RECORD_VERSION}); upgrade repro")
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})

    def save(self, path_or_file: Union[str, IO[str]]) -> None:
        """Write the record as pretty-printed JSON (stable key order)."""
        doc = self.to_json()
        if isinstance(path_or_file, str):
            with open(path_or_file, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
        else:
            json.dump(doc, path_or_file, indent=2, sort_keys=True)
            path_or_file.write("\n")

    @classmethod
    def load(cls, path_or_file: Union[str, IO[str]]) -> "ProvenanceRecord":
        if isinstance(path_or_file, str):
            with open(path_or_file) as fh:
                doc = json.load(fh)
        else:
            doc = json.load(path_or_file)
        return cls.from_json(doc)

    # -- reporting ----------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human summary (used by ``repro replay``)."""
        lines = [f"provenance record: kind={self.kind} "
                 f"digest={self.record_digest()[:16]}…"]
        if self.created:
            lines.append(f"  created          {self.created}")
        lines.append(f"  repro version    {self.repro_version}")
        lines.append(f"  code fingerprint {self.code_fingerprint[:16]}…")
        args = " ".join(f"{k}={v}" for k, v in sorted(self.args.items())
                        if v is not None)
        lines.append(f"  args             {args}")
        if self.seeds:
            lines.append("  seeds            "
                         + " ".join(f"{k}={v}"
                                    for k, v in sorted(self.seeds.items())))
        lines.append(f"  fault plan       "
                     f"{'yes' if self.fault_plan else 'none'}")
        lines.append(f"  tune decisions   {len(self.tune_decisions)}")
        if self.recovery_decisions:
            lines.append(f"  recovery log     "
                         f"{len(self.recovery_decisions)} decisions")
        if self.sched_decisions:
            lines.append(f"  scheduler log    "
                         f"{len(self.sched_decisions)} decisions")
        lines.append(f"  stage graphs     {len(self.stage_graphs)}")
        for name, value in sorted(self.digests.items()):
            shown = f"{value[:16]}…" if value else "(not captured)"
            lines.append(f"  {name + ' sha256':16s} {shown}")
        return "\n".join(lines)
