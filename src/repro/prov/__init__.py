"""repro.prov: provenance capture and executable replay.

Every run under the virtual-time kernel is perfectly deterministic — the
same program, seeds, fault plan, and code produce byte-identical output,
metrics, and traces.  This package captures that identity as one unit
and makes it executable again:

* :mod:`repro.prov.fingerprint` — code fingerprint (sha256 of the whole
  ``repro`` source tree) and stage-graph fingerprints (declared pipeline
  structure), the identities that make records attributable and
  bisectable;
* :mod:`repro.prov.record` — :class:`ProvenanceRecord`, the per-run JSON
  document: harness entry point + args, seeds, serialized
  :class:`~repro.faults.plan.FaultPlan`, tune decision log, stage-graph
  fingerprints, code fingerprint, and sha256 digests of output /
  metrics / trace;
* :mod:`repro.prov.capture` — :class:`ProvenanceCapture`, the passive
  kernel attachment through which every
  :class:`~repro.core.program.FGProgram` reports its structure via the
  :class:`~repro.obs.observer.ProgramObserver` event path (zero per-app
  code: dsort, csort, chaos, and tuned runs all emit records the same
  way);
* :mod:`repro.prov.replay` — :func:`replay`, which re-executes a record
  byte-exactly and verifies the digests, and :func:`emit_script`, which
  renders a record as a standalone shareable reproduction script.

Surfaced as ``python -m repro replay`` plus ``--prov-out`` on the
``sort``, ``chaos``, and ``tune`` commands; the guide is
docs/PROVENANCE.md.  The CI golden-run gate records and replays dsort,
csort, and a chaos run on every push.
"""

from repro.prov.capture import ProvenanceCapture
from repro.prov.fingerprint import (
    canonical_json,
    code_fingerprint,
    digest_json,
    program_graph,
    stage_graph_fingerprint,
    version_info,
)
from repro.prov.record import (
    RECORD_VERSION,
    ProvenanceRecord,
    metrics_digest,
    output_digest,
    recovery_decision_log,
    sched_decision_log,
    trace_digest,
    tune_decision_log,
)
from repro.prov.replay import ReplayResult, emit_script, replay

__all__ = [
    "RECORD_VERSION",
    "ProvenanceCapture",
    "ProvenanceRecord",
    "ReplayResult",
    "canonical_json",
    "code_fingerprint",
    "digest_json",
    "emit_script",
    "metrics_digest",
    "output_digest",
    "program_graph",
    "recovery_decision_log",
    "replay",
    "sched_decision_log",
    "stage_graph_fingerprint",
    "trace_digest",
    "tune_decision_log",
    "version_info",
]
