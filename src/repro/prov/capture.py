"""ProvenanceCapture: passive run-time collection of provenance inputs.

A capture object attaches to a kernel (``ProvenanceCapture(kernel)``
sets ``kernel.provenance``) before the run starts.  From then on every
:class:`~repro.core.program.FGProgram` that starts on that kernel —
regardless of which application assembled it — reports its stage-graph
fingerprint through the :class:`~repro.obs.observer.ProgramObserver`
event path, with zero per-app code.  The harness entry points
(:func:`repro.bench.harness.run_sort`,
:func:`repro.faults.chaos.run_chaos_dsort`) attach a capture and fold
its output into the :class:`~repro.prov.record.ProvenanceRecord` they
build.

The capture is deliberately **passive**: it records nothing into the
metrics registry and the trace, so a captured run's digests equal an
uncaptured run's — capturing provenance can never perturb the thing
being captured.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.prov.fingerprint import stage_graph_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram
    from repro.sim.kernel import Kernel

__all__ = ["ProvenanceCapture"]


class ProvenanceCapture:
    """Collects stage-graph fingerprints from every program started on
    one kernel (pass restarts re-report the same fingerprints)."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: program name -> stage-graph fingerprint
        self.stage_graphs: dict[str, str] = {}
        #: total FGProgram.start() calls seen (restarts re-count)
        self.program_starts = 0
        kernel.provenance = self

    def on_program_start(self, program: "FGProgram") -> None:
        """Called via ProgramObserver when a program assembles."""
        self.program_starts += 1
        self.stage_graphs[program.name] = stage_graph_fingerprint(program)

    def detach(self) -> None:
        """Stop capturing on this kernel."""
        if getattr(self.kernel, "provenance", None) is self:
            self.kernel.provenance = None
