"""Executable replay: re-run a recorded run and verify it byte-exactly.

:func:`replay` dispatches on a record's ``kind``, re-executes the run
under the virtual-time kernel with the recorded arguments (including the
deserialized fault plan), captures a fresh provenance record, and
compares digest by digest.  The result distinguishes three situations:

* **reproduced** — every recorded digest matches; the run is byte-exact;
* **diverged** — a digest differs.  If the code fingerprint also differs
  the divergence is attributable to a code change (this is the bisection
  signal: replay the record at each candidate commit);
* **unattributable divergence** — digests differ but the code
  fingerprint matches: the run was not deterministic, which is itself a
  bug worth a report.

:func:`emit_script` turns a record into a standalone Python script that
embeds the record JSON and performs the same replay — the shareable form
of an incident reproduction (e-mail the script; running it re-creates
the chaos run and verifies the digests).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ReproError
from repro.prov.record import ProvenanceRecord

__all__ = ["ReplayResult", "emit_script", "replay"]

#: record kinds replay knows how to re-execute
REPLAYABLE_KINDS = ("sort", "chaos_dsort", "chaos_csort", "sched")


@dataclasses.dataclass
class ReplayResult:
    """Outcome of replaying one provenance record."""

    record: ProvenanceRecord
    #: the freshly captured record of the re-execution
    replayed: ProvenanceRecord
    #: digest name -> matched? (every digest the original captured)
    matches: dict[str, bool]
    #: True when the replaying tree is the recording tree
    code_match: bool
    #: True when every re-assembled program had the recorded structure
    stage_graphs_match: bool

    @property
    def ok(self) -> bool:
        """Byte-exact reproduction: all digests and stage graphs match."""
        return (all(self.matches.values()) and self.stage_graphs_match)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "matches": dict(self.matches),
            "code_match": self.code_match,
            "stage_graphs_match": self.stage_graphs_match,
            "recorded_digests": dict(self.record.digests),
            "replayed_digests": dict(self.replayed.digests),
            "recorded_code": self.record.code_fingerprint,
            "replayed_code": self.replayed.code_fingerprint,
        }

    def describe(self) -> str:
        lines = [f"replay of {self.record.kind} record "
                 f"{self.record.record_digest()[:16]}…:"]
        for name in sorted(self.matches):
            verdict = "match" if self.matches[name] else "MISMATCH"
            lines.append(f"  {name + ' digest':16s} {verdict}")
        lines.append("  stage graphs     "
                     + ("match" if self.stage_graphs_match else "MISMATCH"))
        lines.append("  code             "
                     + ("same tree" if self.code_match
                        else "different tree "
                             f"(recorded {self.record.code_fingerprint[:12]}…, "
                             f"now {self.replayed.code_fingerprint[:12]}…)"))
        if self.ok:
            lines.append("result: REPRODUCED byte-exactly")
        elif self.code_match:
            lines.append("result: DIVERGED under the *same* code — the "
                         "run is nondeterministic (file a bug)")
        else:
            lines.append("result: DIVERGED — attributable to a code "
                         "change since the recording")
        return "\n".join(lines)


def _replay_sort(record: ProvenanceRecord) -> ProvenanceRecord:
    from repro.bench.harness import run_sort
    from repro.pdm.records import RecordSchema

    a = dict(record.args)
    schema = RecordSchema(a.pop("record_bytes"))
    plan_doc = a.pop("plan", None)
    if plan_doc is not None:
        from repro.plan import Plan

        a["plan"] = Plan.from_json(plan_doc)
    run = run_sort(a.pop("sorter"), a.pop("distribution"), schema,
                   provenance=True, **a)
    assert run.provenance is not None
    return run.provenance


def _replay_chaos(record: ProvenanceRecord) -> ProvenanceRecord:
    from repro.faults.chaos import run_chaos_csort, run_chaos_dsort
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy

    a = dict(record.args)
    retry = a.pop("retry", None)
    plan = (FaultPlan.from_json(record.fault_plan)
            if record.fault_plan is not None else None)
    if record.kind == "chaos_csort":
        report = run_chaos_csort(
            plan=plan,
            retry=RetryPolicy(**retry) if retry is not None else None,
            **a)
    else:
        recover = a.pop("recover", None)
        if recover is not None:
            from repro.recover import RecoverPolicy

            recover = RecoverPolicy.from_json(recover)
        report = run_chaos_dsort(
            plan=plan,
            retry=RetryPolicy(**retry) if retry is not None else None,
            recover=recover,
            **a)
    if report.provenance is None:
        raise ReproError("chaos replay did not capture provenance "
                         "(tracing disabled?)")
    return report.provenance


def _replay_sched(record: ProvenanceRecord) -> ProvenanceRecord:
    from repro.sched import ArrivalTrace, Quota, run_schedule

    a = dict(record.args)
    report = run_schedule(
        ArrivalTrace.from_json(a.pop("trace")),
        quotas={tenant: Quota.from_json(doc)
                for tenant, doc in a.pop("quotas").items()},
        provenance=True,
        **a)
    if report.provenance is None:
        raise ReproError("sched replay did not capture provenance")
    return report.provenance


def replay(record: ProvenanceRecord) -> ReplayResult:
    """Re-execute ``record`` and compare every captured digest."""
    if record.kind == "sort":
        fresh = _replay_sort(record)
    elif record.kind in ("chaos_dsort", "chaos_csort"):
        fresh = _replay_chaos(record)
    elif record.kind == "sched":
        fresh = _replay_sched(record)
    else:
        raise ReproError(
            f"cannot replay record kind {record.kind!r}; replayable "
            f"kinds: {', '.join(REPLAYABLE_KINDS)}")
    matches = {name: bool(value) and fresh.digests.get(name) == value
               for name, value in record.digests.items() if value}
    return ReplayResult(
        record=record,
        replayed=fresh,
        matches=matches,
        code_match=record.code_fingerprint == fresh.code_fingerprint,
        stage_graphs_match=record.stage_graphs == fresh.stage_graphs,
    )


_SCRIPT_TEMPLATE = '''\
#!/usr/bin/env python3
"""Standalone replay of a recorded `repro` run.

Generated by `repro replay --script` from a provenance record
(kind: {kind}, record digest {digest}).

Running this script re-executes the recorded run byte-exactly under the
deterministic virtual-time kernel and verifies the output, metrics, and
trace digests against the record embedded below.  It needs the `repro`
package on PYTHONPATH (and numpy); nothing else.  Exit status 0 means
the run was reproduced byte-exactly.
"""

RECORD = r"""
{record_json}
"""


def main() -> int:
    import json

    from repro.prov import ProvenanceRecord, replay

    record = ProvenanceRecord.from_json(json.loads(RECORD))
    print(record.describe())
    print()
    result = replay(record)
    print(result.describe())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
'''


def emit_script(record: ProvenanceRecord,
                path: Optional[str] = None) -> str:
    """Render ``record`` as a standalone replay script.

    Returns the script text; also writes it to ``path`` when given.  The
    embedded JSON is pretty-printed with stable key order, so emitting
    the same record twice yields byte-identical scripts.
    """
    import json

    if record.kind not in REPLAYABLE_KINDS:
        raise ReproError(
            f"cannot emit a replay script for record kind "
            f"{record.kind!r}; replayable kinds: "
            f"{', '.join(REPLAYABLE_KINDS)}")
    text = _SCRIPT_TEMPLATE.format(
        kind=record.kind,
        digest=record.record_digest()[:16] + "…",
        record_json=json.dumps(record.to_json(), indent=2, sort_keys=True))
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text
