"""Fingerprints: stable identities for code and pipeline structure.

Provenance records (:mod:`repro.prov.record`) need two kinds of identity:

* **code fingerprint** — which source tree produced a run.  Computed as
  a sha256 over every ``.py`` file of the installed ``repro`` package
  (path-sorted, contents included), so any edit anywhere in the engine
  changes it.  This is what makes a recorded run *bisectable*: replay a
  record against a later tree, and a digest mismatch plus a fingerprint
  mismatch says "a code change altered this run's behaviour".
* **stage-graph fingerprint** — which pipeline structure a program
  assembled.  Computed from the declared structure only (pipeline names,
  stage names/styles/virtual groups, pool geometry, rounds, replica
  declarations), never from runtime state, so the fingerprint of a
  replayed program must equal the recorded one.

Both are pure functions of their inputs; nothing here reads clocks or
draws randomness.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from typing import TYPE_CHECKING, Any

from repro._version import __version__

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram

__all__ = [
    "canonical_json",
    "code_fingerprint",
    "digest_json",
    "program_graph",
    "stage_graph_fingerprint",
    "version_info",
]


def canonical_json(obj: Any) -> str:
    """The canonical serialization used for every provenance digest:
    sorted keys, no whitespace, so semantically equal documents hash
    equal."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_json(obj: Any) -> str:
    """sha256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """sha256 over the full source of the installed ``repro`` package.

    Stable within one source tree (cached per process); changes whenever
    any ``.py`` file of the package changes.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            h.update(rel.encode())
            h.update(b"\0")
            with open(path, "rb") as fh:
                h.update(fh.read())
            h.update(b"\0")
    return h.hexdigest()


def version_info() -> dict:
    """The code identity embedded in every exported artifact."""
    return {"repro_version": __version__,
            "code_fingerprint": code_fingerprint()}


def program_graph(program: "FGProgram") -> dict:
    """The declared structure of one FG program, as pure data.

    Captures exactly what :meth:`~repro.core.program.FGProgram.start`
    assembles — pipelines, stages, pool geometry, replica declarations —
    and nothing that varies at runtime.
    """
    pipelines = []
    for p in program.pipelines:
        stages = []
        for s in p.stages:
            entry: dict[str, Any] = {"name": s.name, "style": s.style}
            if s.virtual:
                entry["virtual_group"] = s.virtual_group
            if p.is_replicated(s):
                entry["replicas"] = p.replica_count(s)
            stages.append(entry)
        pipelines.append({
            "name": p.name,
            "stages": stages,
            "nbuffers": p.nbuffers,
            "buffer_bytes": p.buffer_bytes,
            "rounds": p.rounds,
            "aux_buffers": p.aux_buffers,
            "channel_capacity": p.channel_capacity,
        })
    return {"name": program.name, "pipelines": pipelines}


def stage_graph_fingerprint(program: "FGProgram") -> str:
    """sha256 of :func:`program_graph` in canonical JSON."""
    return digest_json(program_graph(program))
