"""Fingerprints: stable identities for code and pipeline structure.

Provenance records (:mod:`repro.prov.record`) need two kinds of identity:

* **code fingerprint** — which source tree produced a run.  Computed as
  a sha256 over every ``.py`` file of the installed ``repro`` package
  (path-sorted, contents included), so any edit anywhere in the engine
  changes it.  This is what makes a recorded run *bisectable*: replay a
  record against a later tree, and a digest mismatch plus a fingerprint
  mismatch says "a code change altered this run's behaviour".
* **stage-graph fingerprint** — which pipeline structure a program
  assembled.  Emitted from the shared graph IR
  (:meth:`repro.plan.ir.ProgramGraph.canonical` — the same view the
  linter and planner consume): pipeline names, stage
  names/styles/virtual groups/fusion provenance, pool geometry
  *including dynamic grow/retire deltas*, rounds, replica declarations,
  intersecting-stage edges, and the digest of any applied plan.  Two
  programs that can behave differently must fingerprint differently —
  including a pool grown mid-run versus one declared at that size, and
  a fused program versus its unfused original.

Both are pure functions of their inputs; nothing here reads clocks or
draws randomness.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from typing import TYPE_CHECKING, Any

from repro._version import __version__

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram

__all__ = [
    "canonical_json",
    "code_fingerprint",
    "digest_json",
    "program_graph",
    "stage_graph_fingerprint",
    "version_info",
]


def canonical_json(obj: Any) -> str:
    """The canonical serialization used for every provenance digest:
    sorted keys, no whitespace, so semantically equal documents hash
    equal."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_json(obj: Any) -> str:
    """sha256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """sha256 over the full source of the installed ``repro`` package.

    Stable within one source tree (cached per process); changes whenever
    any ``.py`` file of the package changes.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            h.update(rel.encode())
            h.update(b"\0")
            with open(path, "rb") as fh:
                h.update(fh.read())
            h.update(b"\0")
    return h.hexdigest()


def version_info() -> dict:
    """The code identity embedded in every exported artifact."""
    return {"repro_version": __version__,
            "code_fingerprint": code_fingerprint()}


def program_graph(program: "FGProgram") -> dict:
    """The structure of one FG program, as pure data.

    Delegates to the shared graph IR — one code path for the linter,
    the planner, and this fingerprint, so the three can never disagree
    about what a program's structure *is*.  Covers everything
    :meth:`~repro.core.program.FGProgram.start` assembles (pipelines,
    stages, pool geometry, replica declarations, intersections) plus
    the structural state PR 5 made dynamic: pool grow/retire deltas and
    planner fusion provenance, with the applied plan's digest.
    """
    from repro.plan.ir import ProgramGraph

    return ProgramGraph.from_program(program).canonical()


def stage_graph_fingerprint(program: "FGProgram") -> str:
    """sha256 of :func:`program_graph` in canonical JSON."""
    return digest_json(program_graph(program))
