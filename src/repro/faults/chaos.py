"""One-call chaos harness: a sorter under a seeded fault plan, verified.

:func:`run_chaos_dsort` and :func:`run_chaos_csort` build a faulted
cluster, sort a generated dataset, verify the striped output against the
dataset manifest, and return a :class:`ChaosReport` with everything a
caller needs to assert determinism: a digest of the output bytes, a
digest of the full scheduler event timeline, the fired fault events, and
the metrics snapshot.  Two calls with the same arguments must produce
byte-identical reports — that property is what the CLI's ``repro chaos
--check-determinism`` and the chaos property tests assert.

The dsort harness optionally runs under the fine-grained recovery
manager (``recover=RecoverPolicy(...)``): block-level checkpoints,
speculative backups, and partition re-assignment then absorb faults
below the pass-restart level, and every recovery decision lands in the
report and in the provenance record.  csort has no in-run recovery
machinery — its chaos coverage is the transient fault model absorbed by
the disk/NIC retry layer — so ``run_chaos_csort`` takes no ``recover``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Optional

from repro.errors import FaultError
from repro.faults.injector import FaultEvent
from repro.faults.plan import FaultPlan, chaos_plan

__all__ = ["ChaosReport", "run_chaos_csort", "run_chaos_dsort"]


@dataclasses.dataclass
class ChaosReport:
    """Everything observable about one chaos run (JSON-able via asdict)."""

    seed: int
    n_nodes: int
    total_records: int
    #: simulated seconds for the whole run
    elapsed: float
    #: cluster-wide pass restarts the recovery layer needed
    pass_restarts: int
    #: True when the striped output matched the manifest exactly
    verified: bool
    #: sha256 over the raw output record bytes, in global order
    output_digest: str
    #: sha256 over the scheduler event timeline ("" when tracing was off)
    trace_digest: str
    #: every fault the injector fired, in virtual-time order
    fault_events: list[FaultEvent]
    #: fault counts by kind (injector summary)
    fault_summary: dict
    #: full metrics snapshot (counters/gauges/histograms)
    metrics: dict
    #: sha256 over the metrics snapshot in canonical JSON
    metrics_digest: str = ""
    #: the run's provenance record (None when tracing was off or the
    #: run used non-default hardware); see repro.prov
    provenance: Optional[Any] = None
    #: which sorter ran ("dsort" or "csort")
    sorter: str = "dsort"
    #: the recovery manager's decision log (empty without ``recover``)
    recovery_decisions: list = dataclasses.field(default_factory=list)
    #: per-rank phase timings (one dict per rank; keys depend on the
    #: sorter) — lets callers aim fault windows at a specific pass
    rank_times: list = dataclasses.field(default_factory=list)

    def describe(self) -> str:
        """Multi-line human summary (used by ``repro chaos``)."""
        lines = [
            f"chaos {self.sorter}: seed={self.seed} nodes={self.n_nodes} "
            f"records={self.total_records}",
            f"  elapsed          {self.elapsed:.3f} simulated s",
            f"  verified         {self.verified}",
            f"  pass restarts    {self.pass_restarts}",
            f"  faults fired     {self.fault_summary.get('total', 0)} "
            f"{self.fault_summary.get('by_kind', {})}",
        ]
        if self.recovery_decisions:
            by_kind: dict[str, int] = {}
            for d in self.recovery_decisions:
                by_kind[d["kind"]] = by_kind.get(d["kind"], 0) + 1
            lines.append(f"  recovery         "
                         f"{len(self.recovery_decisions)} decisions "
                         f"{by_kind}")
        counters = self.metrics.get("counters", {})
        for key in ("retry.disk.retries", "retry.net.retransmits",
                    "recovery.pass_restarts"):
            if key in counters:
                value = counters[key]
                if isinstance(value, dict):
                    value = value.get("value", value)
                lines.append(f"  {key:16s} {value:g}")
        lines.append(f"  output sha256    {self.output_digest[:16]}…")
        if self.trace_digest:
            lines.append(f"  trace sha256     {self.trace_digest[:16]}…")
        return "\n".join(lines)


def _chaos_cluster(n_nodes: int, plan: "FaultPlan",
                   retry: Optional[Any], hardware: Optional[Any],
                   trace: bool,
                   mailbox_capacity_bytes: Optional[int] = None):
    """Kernel + capture + cluster shared by both chaos harnesses."""
    from repro.cluster.cluster import Cluster
    from repro.prov import ProvenanceCapture
    from repro.sim.trace import Tracer
    from repro.sim.virtual import VirtualTimeKernel

    kernel = VirtualTimeKernel(tracer=Tracer() if trace else None)
    kernel.enable_metrics()
    # provenance is only meaningful when the run is fully describable:
    # default hardware (the record stores no hardware model) and tracing
    # on (the trace digest is part of the record's identity)
    capture = (ProvenanceCapture(kernel)
               if trace and hardware is None else None)
    cluster = Cluster(n_nodes=n_nodes, hardware=hardware, kernel=kernel,
                      fault_plan=plan, retry_policy=retry,
                      mailbox_capacity_bytes=mailbox_capacity_bytes)
    return kernel, capture, cluster


def run_chaos_dsort(n_nodes: int = 3, records_per_node: int = 2000,
                    seed: int = 1234, *,
                    plan: Optional[FaultPlan] = None,
                    retry: Optional[Any] = None,
                    pass_retries: int = 2,
                    distribution: str = "uniform",
                    hardware: Optional[Any] = None,
                    block_records: int = 256,
                    vertical_block_records: int = 128,
                    out_block_records: int = 256,
                    oversample: int = 8,
                    recover: Optional[Any] = None,
                    mailbox_capacity_bytes: Optional[int] = None,
                    verify: bool = True,
                    trace: bool = True,
                    trace_path: Optional[str] = None) -> ChaosReport:
    """Run one seeded chaos dsort end to end and report on it.

    ``plan`` defaults to :func:`~repro.faults.plan.chaos_plan` derived
    from ``seed`` (transient disk faults + message drops everywhere).
    ``recover`` — a :class:`~repro.recover.RecoverPolicy` — runs the
    sort under the fine-grained recovery manager (checkpoints,
    speculative backups, partition re-assignment); its decision log
    lands in the report and the provenance record.  ``trace_path``
    optionally writes a Chrome-trace JSON (with fault markers) next to
    the run.  Deterministic: same arguments, same report.
    """
    # Imports are local so that ``import repro.faults`` stays light and
    # free of cycles (the cluster layer itself imports repro.faults).
    from repro.pdm.records import RecordSchema
    from repro.pdm.striped import StripedFile
    from repro.sorting.dsort import DsortConfig, run_dsort
    from repro.sorting.verify import verify_striped_output
    from repro.workloads.generator import generate_input

    from repro.prov import (
        ProvenanceRecord,
        metrics_digest,
        recovery_decision_log,
        trace_digest,
        tune_decision_log,
        version_info,
    )

    if plan is None:
        plan = chaos_plan(seed, n_nodes)
    kernel, capture, cluster = _chaos_cluster(
        n_nodes, plan, retry, hardware, trace,
        mailbox_capacity_bytes=mailbox_capacity_bytes)
    schema = RecordSchema.paper_16()
    manifest = generate_input(cluster, schema, records_per_node,
                              distribution, seed=seed)
    config = DsortConfig(block_records=block_records,
                         vertical_block_records=vertical_block_records,
                         out_block_records=out_block_records,
                         oversample=oversample, seed=seed,
                         pass_retries=pass_retries)
    manager = None
    owners = None
    if recover is not None:
        from repro.recover import RecoveryManager

        manager = RecoveryManager(cluster, recover)
        manager.start()
        reports = cluster.run(run_dsort, schema, config, manager)
        owners = manager.output_owners()
    else:
        reports = cluster.run(run_dsort, schema, config)
    elapsed = kernel.now()

    verified = False
    if verify:
        verify_striped_output(cluster, manifest, config.output_file,
                              out_block_records, owners=owners)
        verified = True
    out = StripedFile(cluster, config.output_file, schema,
                      out_block_records, owners=owners).read_all()
    output_digest = hashlib.sha256(out.tobytes()).hexdigest()

    run_trace_digest = ""
    if trace:
        run_trace_digest = trace_digest(kernel.tracer)
        if trace_path is not None:
            from repro.obs.chrome_trace import write_chrome_trace
            write_chrome_trace(trace_path, kernel.tracer,
                               metrics=kernel.metrics)

    snapshot = kernel.metrics.snapshot()
    run_metrics_digest = metrics_digest(snapshot)

    provenance = None
    if capture is not None:
        provenance = ProvenanceRecord(
            kind="chaos_dsort",
            args={"n_nodes": n_nodes,
                  "records_per_node": records_per_node,
                  "seed": seed,
                  "retry": (dataclasses.asdict(retry)
                            if retry is not None else None),
                  "pass_retries": pass_retries,
                  "distribution": distribution,
                  "block_records": block_records,
                  "vertical_block_records": vertical_block_records,
                  "out_block_records": out_block_records,
                  "oversample": oversample,
                  "recover": (recover.to_json()
                              if recover is not None else None),
                  "mailbox_capacity_bytes": mailbox_capacity_bytes,
                  "verify": verify},
            seeds={"workload": seed, "config": config.seed,
                   "fault_plan": plan.seed,
                   # backoff jitter draws from the injector's per-site
                   # Philox streams, all derived from the plan seed
                   "retry_jitter": plan.seed},
            fault_plan=plan.to_json(),
            tune_decisions=tune_decision_log(kernel.tracer),
            recovery_decisions=recovery_decision_log(kernel.tracer),
            stage_graphs=dict(capture.stage_graphs),
            digests={"output": output_digest,
                     "metrics": run_metrics_digest,
                     "trace": run_trace_digest},
            **version_info())

    injector = cluster.injector
    pass_restarts = max(
        (r.pass_restarts for r in reports
         if not getattr(r, "dead", False)), default=0)
    return ChaosReport(
        seed=seed, n_nodes=n_nodes,
        total_records=manifest.total_records,
        elapsed=elapsed,
        pass_restarts=pass_restarts,
        verified=verified,
        output_digest=output_digest,
        trace_digest=run_trace_digest,
        fault_events=list(injector.events) if injector is not None else [],
        fault_summary=(injector.summary() if injector is not None
                       else {"total": 0, "by_kind": {}}),
        metrics=snapshot,
        metrics_digest=run_metrics_digest,
        provenance=provenance,
        sorter="dsort",
        recovery_decisions=(manager.decision_log()
                            if manager is not None else []),
        rank_times=[{"rank": r.rank, "sampling": r.sampling_time,
                     "pass1": r.pass1_time, "pass2": r.pass2_time,
                     "dead": getattr(r, "dead", False)}
                    for r in reports])


def run_chaos_csort(n_nodes: int = 3, records_per_node: int = 1728,
                    seed: int = 1234, *,
                    plan: Optional[FaultPlan] = None,
                    retry: Optional[Any] = None,
                    distribution: str = "uniform",
                    hardware: Optional[Any] = None,
                    out_block_records: int = 128,
                    s_override: Optional[int] = None,
                    verify: bool = True,
                    trace: bool = True,
                    trace_path: Optional[str] = None) -> ChaosReport:
    """Run one seeded chaos csort end to end and report on it.

    Same report contract as :func:`run_chaos_dsort`, same default
    ``chaos_plan``.  csort relies entirely on the disk/NIC retry layer
    — it has no pass-level restarts and no recovery manager, so the
    fault plan must stay within the transient model (the default does).
    The default shape (1728 records/node on 3 nodes) is the smallest
    chaos-scale N with a legal columnsort plan whose r admits a
    128-record output stripe.
    """
    from repro.pdm.records import RecordSchema
    from repro.pdm.striped import StripedFile
    from repro.sorting.columnsort import CsortConfig, run_csort
    from repro.sorting.verify import verify_striped_output
    from repro.workloads.generator import generate_input

    from repro.prov import (
        ProvenanceRecord,
        metrics_digest,
        trace_digest,
        tune_decision_log,
        version_info,
    )

    if plan is None:
        plan = chaos_plan(seed, n_nodes)
    if plan.node_crashes:
        raise FaultError(
            "csort has no node-crash recovery; use run_chaos_dsort with "
            "a RecoverPolicy for crash chaos")
    kernel, capture, cluster = _chaos_cluster(n_nodes, plan, retry,
                                              hardware, trace)
    schema = RecordSchema.paper_16()
    manifest = generate_input(cluster, schema, records_per_node,
                              distribution, seed=seed)
    config = CsortConfig(out_block_records=out_block_records,
                         s_override=s_override)
    reports = cluster.run(run_csort, schema, config)
    elapsed = kernel.now()

    verified = False
    if verify:
        verify_striped_output(cluster, manifest, config.output_file,
                              out_block_records)
        verified = True
    out = StripedFile(cluster, config.output_file, schema,
                      out_block_records).read_all()
    output_digest = hashlib.sha256(out.tobytes()).hexdigest()

    run_trace_digest = ""
    if trace:
        run_trace_digest = trace_digest(kernel.tracer)
        if trace_path is not None:
            from repro.obs.chrome_trace import write_chrome_trace
            write_chrome_trace(trace_path, kernel.tracer,
                               metrics=kernel.metrics)

    snapshot = kernel.metrics.snapshot()
    run_metrics_digest = metrics_digest(snapshot)

    provenance = None
    if capture is not None:
        provenance = ProvenanceRecord(
            kind="chaos_csort",
            args={"n_nodes": n_nodes,
                  "records_per_node": records_per_node,
                  "seed": seed,
                  "retry": (dataclasses.asdict(retry)
                            if retry is not None else None),
                  "distribution": distribution,
                  "out_block_records": out_block_records,
                  "s_override": s_override,
                  "verify": verify},
            seeds={"workload": seed, "fault_plan": plan.seed,
                   "retry_jitter": plan.seed},
            fault_plan=plan.to_json(),
            tune_decisions=tune_decision_log(kernel.tracer),
            stage_graphs=dict(capture.stage_graphs),
            digests={"output": output_digest,
                     "metrics": run_metrics_digest,
                     "trace": run_trace_digest},
            **version_info())

    injector = cluster.injector
    return ChaosReport(
        seed=seed, n_nodes=n_nodes,
        total_records=manifest.total_records,
        elapsed=elapsed,
        pass_restarts=0,
        verified=verified,
        output_digest=output_digest,
        trace_digest=run_trace_digest,
        fault_events=list(injector.events) if injector is not None else [],
        fault_summary=(injector.summary() if injector is not None
                       else {"total": 0, "by_kind": {}}),
        metrics=snapshot,
        metrics_digest=run_metrics_digest,
        provenance=provenance,
        sorter="csort",
        rank_times=[{"rank": r.rank, "pass1": r.pass1_time,
                     "pass2": r.pass2_time, "pass3": r.pass3_time}
                    for r in reports])
