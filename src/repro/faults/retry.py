"""Bounded retry with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is pure data plus arithmetic: it never sleeps or
draws randomness itself.  Callers supply the kernel's ``sleep`` and a
per-site RNG (usually :meth:`~repro.faults.injector.FaultInjector.rng`),
which keeps retry timing — like the faults that trigger it — an exact
function of the plan seed and the virtual-time schedule.

Semantics, shared by the disk and network wiring:

* a *transient* :class:`~repro.errors.FaultInjected` is retried up to
  ``max_attempts`` total attempts, backing off
  ``base_delay * multiplier**(attempt-1)`` (capped at ``max_delay``) with
  up to ``jitter`` fractional reduction drawn from the RNG;
* a *permanent* fault is re-raised immediately — retrying cannot help;
* when attempts run out the caller gets
  :class:`~repro.errors.RetryExhausted` wrapping the last fault;
* ``op_timeout``, when set, bounds the modeled duration of one attempt:
  an attempt that would take longer is charged ``op_timeout`` seconds and
  counts as a transient failure (used by the disk layer to cut off
  straggler-slowed operations).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

from repro.errors import FaultError, FaultInjected, RetryExhausted

__all__ = ["RetryPolicy", "NO_RETRY"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff; see module docstring for semantics."""

    max_attempts: int = 4
    base_delay: float = 1e-3
    multiplier: float = 2.0
    max_delay: float = 0.1
    jitter: float = 0.5
    op_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise FaultError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise FaultError(
                f"backoff multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultError(
                f"jitter must be in [0, 1], got {self.jitter}")
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise FaultError(
                f"op_timeout must be positive, got {self.op_timeout}")

    def backoff(self, attempt: int, rng: Any = None) -> float:
        """Delay before retrying after failed attempt number ``attempt``
        (1-based).  Jitter shaves a deterministic fraction off the
        nominal delay (de-synchronizing retry storms), drawn from the
        caller's seeded RNG.  A jittered policy *requires* an RNG:
        silently skipping the jitter would give the same policy two
        different timelines depending on the call site, which is exactly
        the nondeterminism the seeded streams exist to rule out."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0:
            if rng is None:
                raise FaultError(
                    f"jittered backoff (jitter={self.jitter:g}) needs a "
                    "seeded rng; pass one (e.g. FaultInjector.rng) or "
                    "set jitter=0")
            delay *= 1.0 - self.jitter * float(rng.random())
        return delay

    def call(self, op: str, fn: Callable[[], Any], *,
             sleep: Callable[[float], None], rng: Any = None,
             on_retry: Optional[Callable[[int, BaseException], None]]
             = None) -> Any:
        """Run ``fn`` under this policy; returns its result.

        ``sleep`` consumes backoff time (the kernel's sleep);
        ``on_retry(attempt, exc)`` fires before each backoff — the wiring
        layers use it to bump retry counters.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except FaultInjected as exc:
                if exc.permanent:
                    raise
                if attempt >= self.max_attempts:
                    raise RetryExhausted(op, attempt, exc) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = self.backoff(attempt, rng)
                if delay > 0:
                    sleep(delay)


#: fail on the first fault — the pre-robustness behaviour
NO_RETRY = RetryPolicy(max_attempts=1)
