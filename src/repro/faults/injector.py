"""Runtime fault injection: turning a :class:`FaultPlan` into decisions.

The :class:`FaultInjector` is consulted by the cluster layers at well
defined *sites* — one per timed disk operation, one per wire message, one
per compute charge — and answers deterministically:

* every probabilistic draw comes from a per-site ``numpy`` Philox stream
  seeded with ``(plan.seed, crc32(site))``, so the draw sequence of one
  site is independent of every other site's traffic;
* draws are consumed in kernel execution order, which the virtual-time
  kernel serializes, so two runs of the same program with the same plan
  see identical faults at identical virtual times.

Every decision that fires is recorded as a :class:`FaultEvent` (and, when
the kernel carries a metrics registry or tracer, as ``faults.*`` counters
and ``fault`` trace events that the Chrome exporter renders as instant
markers).
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from repro.errors import FaultInjected
from repro.faults.plan import FaultPlan, in_window
from repro.sim.kernel import Kernel
from repro.sim.trace import FAULT

__all__ = ["FaultEvent", "FaultInjector"]


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One fault decision that fired, stamped in virtual time."""

    time: float
    kind: str     #: "disk" | "disk.permanent" | "net.drop" | "node.crash"
    site: str     #: e.g. "disk.3", "net.0->2"
    rank: int
    detail: str


class FaultInjector:
    """Deterministic oracle answering "does this operation fault?"."""

    def __init__(self, kernel: Kernel, plan: FaultPlan, n_nodes: int):
        self.kernel = kernel
        self.plan = plan
        self.n_nodes = n_nodes
        self.events: list[FaultEvent] = []
        self._rngs: dict[str, np.random.Generator] = {}
        #: timed-operation counter per disk (drives DiskFaultAt)
        self.disk_ops = [0] * n_nodes
        self._crash_at = {c.rank: c.at for c in plan.node_crashes}

    # -- deterministic streams ---------------------------------------------

    def rng(self, site: str) -> np.random.Generator:
        """The Philox stream for one site, created on first use."""
        gen = self._rngs.get(site)
        if gen is None:
            seq = np.random.SeedSequence(
                [self.plan.seed, zlib.crc32(site.encode("utf-8"))])
            gen = np.random.Generator(np.random.Philox(seq))
            self._rngs[site] = gen
        return gen

    # -- recording ----------------------------------------------------------

    def _record(self, kind: str, site: str, rank: int, detail: str) -> None:
        now = self.kernel.now()
        self.events.append(FaultEvent(now, kind, site, rank, detail))
        registry = self.kernel.metrics
        if registry is not None:
            registry.counter(f"faults.{kind}").inc()
        tracer = getattr(self.kernel, "tracer", None)
        if tracer is not None:
            name = (self.kernel.current_process().name
                    if self.kernel.in_process() else site)
            tracer.record(now, name, FAULT, f"{kind} @ {site}: {detail}")

    # -- node liveness ------------------------------------------------------

    def crashed(self, rank: int) -> bool:
        """True once ``rank``'s crash time has passed."""
        at = self._crash_at.get(rank)
        return at is not None and self.kernel.now() >= at

    def check_alive(self, rank: int, site: str) -> None:
        """Raise a permanent fault when ``rank`` has crashed."""
        if self.crashed(rank):
            self._record("node.crash", site, rank,
                         f"node {rank} is down (crashed at "
                         f"t={self._crash_at[rank]:g})")
            raise FaultInjected(f"node {rank} has crashed", site=site,
                                rank=rank, permanent=True)

    # -- disk site ----------------------------------------------------------

    def disk_op(self, rank: int, op: str, nbytes: int) -> None:
        """Consulted once per timed disk operation; raises on fault.

        Counts the operation (for :class:`~repro.faults.plan.DiskFaultAt`)
        even when no fault fires, so op indices are stable.
        """
        site = f"disk.{rank}"
        index = self.disk_ops[rank]
        self.disk_ops[rank] += 1
        self.check_alive(rank, site)
        for spec in self.plan.disk_fault_ats:
            if spec.rank == rank and spec.op_index == index:
                kind = "disk.permanent" if spec.permanent else "disk"
                self._record(kind, site, rank,
                             f"{op} op #{index} ({nbytes} B)")
                raise FaultInjected(
                    f"disk {op} op #{index} failed (scheduled)",
                    site=site, rank=rank, permanent=spec.permanent)
        now = self.kernel.now()
        for spec in self.plan.disk_faults:
            if spec.rank is not None and spec.rank != rank:
                continue
            if not in_window(spec.start, spec.end, now):
                continue
            if float(self.rng(site).random()) < spec.rate:
                kind = "disk.permanent" if spec.permanent else "disk"
                self._record(kind, site, rank,
                             f"{op} op #{index} ({nbytes} B)")
                raise FaultInjected(f"disk {op} media error",
                                    site=site, rank=rank,
                                    permanent=spec.permanent)

    def disk_factor(self, rank: int) -> float:
        """Service-time multiplier for ``rank``'s disk (stragglers)."""
        return self._straggler_factor(rank)

    # -- network site --------------------------------------------------------

    def message_fate(self, src: int, dst: int, nbytes: int) -> str:
        """``"deliver"`` or ``"drop"`` for one wire transmission.

        A crashed destination black-holes traffic: the sender sees the
        message vanish exactly as a drop (and its bounded retransmits
        exhaust).  The sender's own liveness is checked separately via
        :meth:`check_alive`.
        """
        site = f"net.{src}->{dst}"
        if self.crashed(dst):
            self._record("net.drop", site, src,
                         f"{nbytes} B black-holed: node {dst} is down")
            return "drop"
        now = self.kernel.now()
        for spec in self.plan.message_drops:
            if spec.src is not None and spec.src != src:
                continue
            if spec.dst is not None and spec.dst != dst:
                continue
            if not in_window(spec.start, spec.end, now):
                continue
            if float(self.rng(site).random()) < spec.rate:
                self._record("net.drop", site, src,
                             f"{nbytes} B dropped on the wire")
                return "drop"
        return "deliver"

    def wire_factor(self, rank: int) -> float:
        """Wire-time multiplier for ``rank``'s NICs (degradation)."""
        factor = 1.0
        now = self.kernel.now()
        for spec in self.plan.nic_degradations:
            if spec.rank is not None and spec.rank != rank:
                continue
            if in_window(spec.start, spec.end, now):
                factor *= spec.factor
        return factor

    # -- compute site --------------------------------------------------------

    def compute_factor(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (stragglers)."""
        return self._straggler_factor(rank)

    def _straggler_factor(self, rank: int) -> float:
        factor = 1.0
        now = self.kernel.now()
        for spec in self.plan.stragglers:
            if spec.rank == rank and in_window(spec.start, spec.end, now):
                factor *= spec.slowdown
        return factor

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Counts of fired faults by kind (JSON-able)."""
        by_kind: dict[str, int] = {}
        for ev in self.events:
            by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
        return {"total": len(self.events), "by_kind": by_kind}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultInjector seed={self.plan.seed} "
                f"fired={len(self.events)}>")
