"""Deterministic fault injection and retry machinery.

``repro.faults`` turns the happy-path simulated cluster into one that can
rehearse failure: a :class:`FaultPlan` declares *what* can go wrong
(transient/permanent disk faults, message drops, NIC degradation, node
crashes, stragglers), a :class:`FaultInjector` decides *when* it goes
wrong — deterministically, from the plan seed and per-site Philox
streams, so every chaos run is reproducible and bisectable — and a
:class:`RetryPolicy` defines how the disk and network layers absorb the
transient subset.  Permanent faults escalate to pipeline teardown
(:class:`~repro.errors.PipelineFailed`) and pass-level recovery in the
sorting layer.

See ``docs/ROBUSTNESS.md`` for the full fault model and recovery
semantics.
"""

from repro.faults.chaos import ChaosReport, run_chaos_csort, run_chaos_dsort
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import (
    DiskFaultAt,
    DiskFaults,
    FaultPlan,
    MessageDrops,
    NicDegradation,
    NodeCrash,
    Straggler,
    chaos_plan,
)
from repro.faults.retry import NO_RETRY, RetryPolicy

__all__ = [
    "ChaosReport",
    "DiskFaultAt",
    "DiskFaults",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MessageDrops",
    "NO_RETRY",
    "NicDegradation",
    "NodeCrash",
    "RetryPolicy",
    "Straggler",
    "chaos_plan",
    "run_chaos_csort",
    "run_chaos_dsort",
]
