"""Declarative, seeded fault plans.

A :class:`FaultPlan` is pure data: a seed plus a list of fault
specifications against the simulated cluster's disks, links, and nodes.
Nothing here draws random numbers or looks at a clock — the
:class:`~repro.faults.injector.FaultInjector` turns a plan into runtime
decisions, deriving every probabilistic draw from ``(seed, spec, site)``
so that two runs of the same program with the same plan produce the same
faults at the same virtual times.

Spec kinds:

* :class:`DiskFaults` — per-operation fault probability for a disk (or
  all disks) inside a virtual-time window; transient by default;
* :class:`DiskFaultAt` — one fault at exactly the Nth timed operation of
  one disk (the deterministic way to kill a specific pass);
* :class:`MessageDrops` — per-message drop probability on the wire;
* :class:`NicDegradation` — wire-time multiplier for one node's NICs;
* :class:`Straggler` — compute/disk slowdown multiplier for one node;
* :class:`NodeCrash` — the node fails permanently at a virtual time.

Example::

    plan = (FaultPlan(seed=7)
            .with_disk_faults(rate=0.02)
            .with_message_drops(rate=0.01)
            .with_straggler(rank=1, slowdown=3.0))
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import FaultError

__all__ = [
    "DiskFaults",
    "DiskFaultAt",
    "MessageDrops",
    "NicDegradation",
    "Straggler",
    "NodeCrash",
    "FaultPlan",
]


def _check_window(start: float, end: Optional[float]) -> None:
    if start < 0:
        raise FaultError(f"fault window start must be >= 0, got {start}")
    if end is not None and end < start:
        raise FaultError(f"fault window end {end} precedes start {start}")


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"fault rate must be in [0, 1], got {rate}")


def in_window(start: float, end: Optional[float], now: float) -> bool:
    """True when ``now`` falls inside the half-open window [start, end)."""
    return now >= start and (end is None or now < end)


@dataclasses.dataclass(frozen=True)
class DiskFaults:
    """Probabilistic per-operation disk faults.

    ``rank=None`` targets every disk.  ``permanent=False`` (transient)
    faults are retried by the disk's retry policy; permanent faults fail
    the operation immediately.
    """

    rate: float
    rank: Optional[int] = None
    permanent: bool = False
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        _check_window(self.start, self.end)


@dataclasses.dataclass(frozen=True)
class DiskFaultAt:
    """One fault at exactly operation ``op_index`` (0-based, counted per
    disk over the whole run, so the fault fires at most once)."""

    rank: int
    op_index: int
    permanent: bool = True

    def __post_init__(self) -> None:
        if self.op_index < 0:
            raise FaultError(f"op_index must be >= 0, got {self.op_index}")


@dataclasses.dataclass(frozen=True)
class MessageDrops:
    """Probabilistic message loss on the wire.

    ``src``/``dst`` of ``None`` match any sender/receiver.  Loopback
    messages never traverse the wire and are never dropped.
    """

    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        _check_window(self.start, self.end)


@dataclasses.dataclass(frozen=True)
class NicDegradation:
    """Multiply wire time for one node's NICs (``rank=None``: all)."""

    factor: float
    rank: Optional[int] = None
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise FaultError(
                f"degradation factor must be >= 1, got {self.factor}")
        _check_window(self.start, self.end)


@dataclasses.dataclass(frozen=True)
class Straggler:
    """Multiply one node's compute and disk service times."""

    rank: int
    slowdown: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise FaultError(
                f"straggler slowdown must be >= 1, got {self.slowdown}")
        _check_window(self.start, self.end)


@dataclasses.dataclass(frozen=True)
class NodeCrash:
    """The node fails permanently at virtual time ``at``: every later
    disk/compute/send operation it attempts raises a permanent fault, and
    messages addressed to it are black-holed (senders see drops)."""

    rank: int
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"crash time must be >= 0, got {self.at}")


class FaultPlan:
    """A seed plus an ordered list of fault specifications.

    Immutable in spirit: the ``with_*`` builders return ``self`` for
    chaining but must be called before the plan is handed to an injector.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.disk_faults: list[DiskFaults] = []
        self.disk_fault_ats: list[DiskFaultAt] = []
        self.message_drops: list[MessageDrops] = []
        self.nic_degradations: list[NicDegradation] = []
        self.stragglers: list[Straggler] = []
        self.node_crashes: list[NodeCrash] = []

    # -- builders -----------------------------------------------------------

    def with_disk_faults(self, rate: float, rank: Optional[int] = None,
                         permanent: bool = False, start: float = 0.0,
                         end: Optional[float] = None) -> "FaultPlan":
        self.disk_faults.append(DiskFaults(rate, rank, permanent,
                                           start, end))
        return self

    def with_disk_fault_at(self, rank: int, op_index: int,
                           permanent: bool = True) -> "FaultPlan":
        self.disk_fault_ats.append(DiskFaultAt(rank, op_index, permanent))
        return self

    def with_message_drops(self, rate: float, src: Optional[int] = None,
                           dst: Optional[int] = None, start: float = 0.0,
                           end: Optional[float] = None) -> "FaultPlan":
        self.message_drops.append(MessageDrops(rate, src, dst, start, end))
        return self

    def with_nic_degradation(self, factor: float,
                             rank: Optional[int] = None,
                             start: float = 0.0,
                             end: Optional[float] = None) -> "FaultPlan":
        self.nic_degradations.append(NicDegradation(factor, rank,
                                                    start, end))
        return self

    def with_straggler(self, rank: int, slowdown: float,
                       start: float = 0.0,
                       end: Optional[float] = None) -> "FaultPlan":
        self.stragglers.append(Straggler(rank, slowdown, start, end))
        return self

    def with_node_crash(self, rank: int, at: float) -> "FaultPlan":
        self.node_crashes.append(NodeCrash(rank, at))
        return self

    # -- serialization ------------------------------------------------------

    #: JSON field name -> (attribute, spec class); the round-trip contract
    #: provenance records rely on (see repro.prov)
    _SPEC_FIELDS = (
        ("disk_faults", DiskFaults),
        ("disk_fault_ats", DiskFaultAt),
        ("message_drops", MessageDrops),
        ("nic_degradations", NicDegradation),
        ("stragglers", Straggler),
        ("node_crashes", NodeCrash),
    )

    def to_json(self) -> dict:
        """The plan as pure JSON-able data; inverse of :meth:`from_json`.

        Round-trip exact: ``FaultPlan.from_json(plan.to_json())`` drives
        an injector to the identical fault timeline, which is what lets
        a provenance record re-create a chaos run byte-exactly.
        """
        doc: dict = {"seed": self.seed}
        for field, _ in self._SPEC_FIELDS:
            specs = getattr(self, field)
            if specs:
                doc[field] = [dataclasses.asdict(s) for s in specs]
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_json` (validating every
        spec through the normal constructors)."""
        if not isinstance(doc, dict):
            raise FaultError(
                f"fault-plan document must be a dict, got "
                f"{type(doc).__name__}")
        plan = cls(seed=doc.get("seed", 0))
        for field, spec_cls in cls._SPEC_FIELDS:
            for entry in doc.get(field, []):
                getattr(plan, field).append(spec_cls(**entry))
        unknown = set(doc) - {"seed"} - {f for f, _ in cls._SPEC_FIELDS}
        if unknown:
            raise FaultError(
                f"unknown fault-plan field(s) {sorted(unknown)}")
        return plan

    # -- introspection ------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not (self.disk_faults or self.disk_fault_ats
                    or self.message_drops or self.nic_degradations
                    or self.stragglers or self.node_crashes)

    def describe(self) -> str:
        """One line per spec, for logs and the chaos CLI."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for group in (self.disk_faults, self.disk_fault_ats,
                      self.message_drops, self.nic_degradations,
                      self.stragglers, self.node_crashes):
            lines.extend(f"  {spec}" for spec in group)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n = (len(self.disk_faults) + len(self.disk_fault_ats)
             + len(self.message_drops) + len(self.nic_degradations)
             + len(self.stragglers) + len(self.node_crashes))
        return f"<FaultPlan seed={self.seed} specs={n}>"


def chaos_plan(seed: int, n_nodes: int, *,
               disk_fault_rate: float = 0.02,
               drop_rate: float = 0.01,
               straggler_rank: Optional[int] = None,
               straggler_slowdown: float = 3.0,
               permanent_disk_op: Optional[int] = None,
               permanent_disk_rank: int = 0) -> FaultPlan:
    """The standard chaos recipe: transient disk faults everywhere,
    message drops everywhere, optionally one straggler node and one
    permanent disk fault (which forces a pass-level restart)."""
    plan = FaultPlan(seed=seed)
    if disk_fault_rate > 0:
        plan.with_disk_faults(rate=disk_fault_rate)
    if drop_rate > 0:
        plan.with_message_drops(rate=drop_rate)
    if straggler_rank is not None:
        if not 0 <= straggler_rank < n_nodes:
            raise FaultError(f"straggler rank {straggler_rank} out of "
                             f"range [0, {n_nodes})")
        plan.with_straggler(rank=straggler_rank,
                            slowdown=straggler_slowdown)
    if permanent_disk_op is not None:
        plan.with_disk_fault_at(rank=permanent_disk_rank,
                                op_index=permanent_disk_op)
    return plan
