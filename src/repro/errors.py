"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so user
code can catch library failures with a single ``except`` clause.  The
sub-hierarchies mirror the package layout: kernel/scheduling errors, cluster
and communication errors, FG pipeline errors, and sorting/verification
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for execution-kernel errors."""


class DeadlockError(KernelError):
    """All live processes are blocked and no timed event is pending.

    The message lists every blocked process together with what it is
    waiting on, which is usually enough to diagnose a mis-assembled
    pipeline (e.g. a stage accepting from a queue nothing conveys into).
    """


class KernelShutdown(KernelError):
    """Raised inside parked processes when the kernel aborts.

    This exception unwinds stage/user code during an abort; user code
    should never catch-and-swallow it.
    """


class KernelStateError(KernelError):
    """A kernel primitive was used from an invalid context.

    Examples: calling a blocking primitive from a thread that is not a
    kernel process, running a kernel twice, or spawning onto a finished
    kernel.
    """


class ProcessFailed(KernelError):
    """A kernel process raised an exception; wraps the original."""

    def __init__(self, process_name: str, original: BaseException):
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.process_name = process_name
        self.original = original


class ChannelClosed(KernelError):
    """A ``get``/``put`` was attempted on a closed channel with no data."""


# ---------------------------------------------------------------------------
# Cluster / communication errors
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster-hardware and communication errors."""


class CommError(ClusterError):
    """Error in the MPI-like message layer (bad rank, tag, size, ...)."""


class DiskError(ClusterError):
    """Error in the simulated-disk layer (bad block address, size, ...)."""


class StorageError(ClusterError):
    """Error in a storage backend (missing block, backend closed, ...)."""


# ---------------------------------------------------------------------------
# FG (core framework) errors
# ---------------------------------------------------------------------------


class FGError(ReproError):
    """Base class for FG pipeline-assembly and runtime errors."""


class PipelineStructureError(FGError):
    """A pipeline was assembled illegally.

    Examples: a stage appearing twice in one pipeline, virtual stages with
    mismatched roles, or conveying a buffer into a pipeline the buffer is
    not tied to (the paper: "buffers cannot jump from one pipeline to
    another").
    """


class StageError(FGError):
    """A stage misused its context (accept after caboose, bad convey, ...)."""


# ---------------------------------------------------------------------------
# Sorting / verification errors
# ---------------------------------------------------------------------------


class SortError(ReproError):
    """Base class for sorting-algorithm configuration errors."""


class ColumnsortShapeError(SortError):
    """The matrix shape violates columnsort's r >= 2*(s-1)**2 requirement."""


class VerificationError(ReproError):
    """An output failed a correctness check (sortedness, multiset, stripe)."""
