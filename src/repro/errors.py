"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so user
code can catch library failures with a single ``except`` clause.  The
sub-hierarchies mirror the package layout: kernel/scheduling errors, cluster
and communication errors, FG pipeline errors, and sorting/verification
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for execution-kernel errors."""


class DeadlockError(KernelError):
    """All live processes are blocked and no timed event is pending.

    The message lists every blocked process together with what it is
    waiting on, which is usually enough to diagnose a mis-assembled
    pipeline (e.g. a stage accepting from a queue nothing conveys into).
    """


class KernelShutdown(KernelError):
    """Raised inside parked processes when the kernel aborts.

    This exception unwinds stage/user code during an abort; user code
    should never catch-and-swallow it.
    """


class KernelStateError(KernelError):
    """A kernel primitive was used from an invalid context.

    Examples: calling a blocking primitive from a thread that is not a
    kernel process, running a kernel twice, or spawning onto a finished
    kernel.
    """


class ProcessFailed(KernelError):
    """A kernel process raised an exception; wraps the original."""

    def __init__(self, process_name: str, original: BaseException):
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.process_name = process_name
        self.original = original


class ChannelClosed(KernelError):
    """A ``get``/``put`` was attempted on a closed channel with no data."""


# ---------------------------------------------------------------------------
# Cluster / communication errors
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster-hardware and communication errors."""


class CommError(ClusterError):
    """Error in the MPI-like message layer (bad rank, tag, size, ...)."""


class DiskError(ClusterError):
    """Error in the simulated-disk layer (bad block address, size, ...)."""


class StorageError(ClusterError):
    """Error in a storage backend (missing block, backend closed, ...)."""


class ConfigError(ClusterError):
    """A cluster or scheduler was constructed with invalid parameters.

    Raised eagerly at construction time (zero/negative mailbox capacity,
    node-count vs. partition-count mismatches, ...) so a bad config fails
    with a clear message instead of a late deadlock mid-run.
    """


# ---------------------------------------------------------------------------
# Multi-tenant scheduler errors
# ---------------------------------------------------------------------------


class SchedError(ReproError):
    """Base class for multi-tenant scheduler (:mod:`repro.sched`) errors."""


class AdmissionError(SchedError):
    """A job spec can never be admitted (demands exceed its tenant's
    quota or the cluster's capacity outright), or names an unknown
    tenant/kind.  Raised at submit time, not queue time."""


class JobPreempted(SchedError):
    """Control-flow signal raised *inside* a job's processes at a
    cooperative safe point when the scheduler has requested preemption.

    Job wrappers catch it, release the job's node allocation, and
    re-queue the job; it must never escape to the kernel (a kernel-level
    process failure aborts every tenant's work)."""


# ---------------------------------------------------------------------------
# Fault injection / robustness errors
# ---------------------------------------------------------------------------


class FaultError(ReproError):
    """Base class for deterministic-fault-injection errors."""


class FaultInjected(FaultError):
    """A fault scheduled by a :class:`~repro.faults.FaultPlan` fired.

    ``transient`` faults are retryable at the operation level (the
    component's :class:`~repro.faults.RetryPolicy` backs off and retries);
    ``permanent`` faults fail fast and surface to the pipeline/pass layer,
    where recovery means tearing down and re-running coarser work.
    """

    def __init__(self, message: str, *, site: str = "?",
                 rank: int = -1, permanent: bool = False):
        detail = "permanent" if permanent else "transient"
        super().__init__(f"injected {detail} {site} fault"
                         f"{f' at rank {rank}' if rank >= 0 else ''}: "
                         f"{message}")
        self.site = site
        self.rank = rank
        self.permanent = permanent


class RetryExhausted(FaultError):
    """An operation kept failing through every attempt its
    :class:`~repro.faults.RetryPolicy` allowed; wraps the last fault."""

    def __init__(self, op: str, attempts: int, last: BaseException):
        super().__init__(f"{op} failed after {attempts} attempt(s): "
                         f"{last!r}")
        self.op = op
        self.attempts = attempts
        self.last = last


# ---------------------------------------------------------------------------
# FG (core framework) errors
# ---------------------------------------------------------------------------


class FGError(ReproError):
    """Base class for FG pipeline-assembly and runtime errors."""


class PipelineStructureError(FGError):
    """A pipeline was assembled illegally.

    Examples: a stage appearing twice in one pipeline, virtual stages with
    mismatched roles, or conveying a buffer into a pipeline the buffer is
    not tied to (the paper: "buffers cannot jump from one pipeline to
    another").
    """


class StageError(FGError):
    """A stage misused its context (accept after caboose, bad convey, ...)."""


class SpeculationLost(FGError):
    """A speculative backup race was decided against this contender.

    Raised *by* a merge stage (primary or backup) when the recovery
    manager declares the other contender the winner of a pass range.
    It rides the normal stage-failure path — the loser's pipelines are
    poisoned and their buffers drained through the standard teardown —
    and :func:`repro.sorting.dsort.dsort.run_dsort` treats a
    :class:`PipelineFailed` whose causes are all ``SpeculationLost`` as
    a successful pass (the winner's output is already durable)."""


class LintError(FGError):
    """The static linter (:mod:`repro.check`) found error-severity
    findings in an assembled program.

    Raised from :meth:`~repro.core.program.FGProgram.start` before any
    process is spawned, so a structurally broken program fails fast
    instead of deadlocking mid-run.  :attr:`findings` carries the
    structured :class:`~repro.check.Finding` list (errors and warnings).
    """

    def __init__(self, findings: "list[object]"):
        self.findings = list(findings)
        errors = [f for f in self.findings
                  if getattr(f, "is_error", False)]
        super().__init__(
            f"lint failed with {len(errors)} error(s):\n"
            + "\n".join(f"  {f}" for f in errors))


class SanitizerError(FGError):
    """FGSan (the dynamic buffer sanitizer) detected an ownership
    violation: use-after-convey, double-convey, cross-pipeline convey,
    a write to a caboose, stale-round reuse, or a buffer leaked at
    teardown.  Only raised when sanitizing is enabled
    (``FGProgram(sanitize=True)`` or ``REPRO_SANITIZE=1``)."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class RaceError(FGError):
    """FGRace (the happens-before race detector) found shared-state
    accesses unordered by any convey edge, or — in strict mode — a
    dynamic race the static effect analysis failed to predict.  Only
    raised when race detection is enabled
    (``FGProgram(race_detect=True)`` or ``REPRO_RACE=1``)."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class StageFailure:
    """One entry of a :class:`PipelineFailed` causal chain (not an
    exception itself: it records *where* a failure happened)."""

    def __init__(self, pipeline: str, stage: str, cause: BaseException):
        self.pipeline = pipeline
        self.stage = stage
        self.cause = cause

    def __str__(self) -> str:
        return (f"pipeline {self.pipeline!r} failed at stage "
                f"{self.stage!r}: {self.cause!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StageFailure {self}>"


class PipelineFailed(FGError):
    """One or more pipelines were torn down after a stage raised.

    Unlike :class:`~repro.errors.ProcessFailed` — which aborts the whole
    kernel — this error is raised by
    :meth:`~repro.core.program.FGProgram.wait` after the *surviving*
    pipelines ran to completion: a failed stage poisons only its own
    pipeline(s).  :attr:`failures` lists the stage-level causal chain in
    failure order; ``__cause__`` is the first original exception.
    """

    def __init__(self, failures: "list[StageFailure]"):
        self.failures = list(failures)
        super().__init__("; ".join(str(f) for f in self.failures))
        if self.failures:
            self.__cause__ = self.failures[0].cause

    @property
    def pipelines(self) -> "list[str]":
        """Names of the failed pipelines, in failure order, deduplicated."""
        seen: dict[str, None] = {}
        for f in self.failures:
            seen.setdefault(f.pipeline, None)
        return list(seen)


# ---------------------------------------------------------------------------
# Sorting / verification errors
# ---------------------------------------------------------------------------


class SortError(ReproError):
    """Base class for sorting-algorithm configuration errors."""


class ColumnsortShapeError(SortError):
    """The matrix shape violates columnsort's r >= 2*(s-1)**2 requirement."""


class VerificationError(ReproError):
    """An output failed a correctness check (sortedness, multiset, stripe)."""
