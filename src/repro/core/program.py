"""FGProgram: pipeline assembly and execution.

This module is FG's "framework generator": given pipeline descriptions, it

1. detects **intersecting** pipelines (a stage object appearing in several
   pipelines gets one thread and per-pipeline queues),
2. groups **virtual** stages (one thread + one shared queue per group) and
   virtualizes the sources/sinks of their pipeline *families*,
3. materializes buffer pools, inter-stage queues, and the sink-to-source
   recycling channels, and
4. spawns one kernel process per thread FG would create, runs them, and
   joins them.

The source/sink protocol:

* the **source** emits recycled buffers, stamping ``round``; for
  ``rounds=N`` it emits the caboose after N emissions; for ``rounds=None``
  it emits until a :class:`~repro.core.virtual.Stop` token arrives on the
  recycle channel;
* the **sink** recycles every data buffer back to the source and, on
  receiving the caboose, sends the Stop token (so unknown-length pipelines
  shut down cleanly).

Typical use, inside a per-node SPMD main::

    prog = FGProgram(kernel, env={"node": node, "comm": comm})
    prog.add_pipeline("work", [read, sort, write],
                      nbuffers=4, buffer_bytes=1 << 20, rounds=16)
    prog.run()

Two runtime mechanisms back the ``repro.tune`` subsystem:

* **stage replication** — a stage declared in a pipeline's ``replicas``
  mapping runs as N interchangeable copies consuming from the shared
  inbound channel; every accepted buffer takes a monotonically increasing
  *ticket*, and a synthetic sequencer process restores ticket order
  before the successor stage, so downstream observes exactly the
  single-copy order.  The caboose terminates replicas by a live-counter
  relay: each replica that sees it decrements the live count and re-puts
  it for its siblings; the last one forwards it to the sequencer (all
  data tickets are already in the reorder channel by then, because each
  replica conveys its buffer before it can accept the caboose).
  :meth:`FGProgram.add_replica` grows a replica set mid-run.

* **dynamic buffer pools** — :meth:`FGProgram.add_buffers` materializes
  and circulates extra buffers while the program runs (the recycle
  channel is unbounded, so this never blocks);
  :meth:`FGProgram.retire_buffers` asks the source to take buffers out
  of circulation as they come back around.  Both are sanitizer-aware:
  grown buffers are tracked from birth, retired buffers move to a
  terminal RETIRED state that flags any later use.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.check.linter import normalize_rule_ids
from repro.check.races import race_from_env
from repro.check.sanitizer import Sanitizer, sanitize_from_env
from repro.core.buffer import Buffer
from repro.core.context import StageContext
from repro.core.pipeline import Pipeline
from repro.core.stage import Stage, StageStats
from repro.core.virtual import Family, Stop, VirtualGroup
from repro.errors import (
    KernelShutdown,
    LintError,
    PipelineFailed,
    PipelineStructureError,
    StageError,
    StageFailure,
)
from repro.obs.observer import ProgramObserver
from repro.sim.channel import Channel
from repro.sim.kernel import Kernel, Process

__all__ = ["FGProgram", "ReplicaSet"]


class _Skip:
    """Reorder-channel token: a replica dropped the buffer of ``ticket``
    (its map function returned None), so the sequencer must not wait for
    that ticket."""

    __slots__ = ("ticket",)

    def __init__(self, ticket: int) -> None:
        self.ticket = ticket

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Skip #{self.ticket}>"


class _Seq:
    """Reorder-channel envelope: ``buffer`` was accepted as ``ticket``."""

    __slots__ = ("ticket", "buffer")

    def __init__(self, ticket: int, buffer: Buffer) -> None:
        self.ticket = ticket
        self.buffer = buffer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Seq #{self.ticket} {self.buffer!r}>"


class ReplicaSet:
    """Runtime state of one replicated stage (shared by its replicas).

    All counters are mutated between blocking points only, which the
    cooperative kernels make atomic.
    """

    def __init__(self, pipeline: Pipeline, stage: Stage,
                 seq_stage: Stage, reorder: Channel) -> None:
        self.pipeline = pipeline
        self.stage = stage
        #: synthetic sequencer stage (not part of the pipeline's stages)
        self.seq_stage = seq_stage
        #: replicas -> sequencer channel ((ticket, buffer) envelopes)
        self.reorder = reorder
        #: replicas currently accepting (the caboose relay counts this down)
        self.live = 0
        #: total replicas ever spawned (names the next replica process)
        self.total = 0
        #: next acceptance ticket (assigned without blocking after get())
        self.next_ticket = 0
        #: set once the caboose reached the sequencer; add_replica refuses
        self.finished = False
        #: per-replica contexts, indexed by replica number
        self.contexts: list[StageContext] = []


class FGProgram:
    """A set of pipelines assembled and run together on one node."""

    def __init__(self, kernel: Kernel, env: Optional[dict[str, Any]] = None,
                 name: str = "fg", *,
                 lint: Optional[bool] = None,
                 lint_ignore: Optional[Iterable[str]] = None,
                 sanitize: Optional[bool] = None,
                 race_detect: Optional[Union[bool, str]] = None) -> None:
        self.kernel = kernel
        self.env: dict[str, Any] = dict(env) if env else {}
        self.name = name
        self.pipelines: list[Pipeline] = []
        #: the single event path for stage stats and metrics (repro.obs)
        self.observer = ProgramObserver(self)
        # static lint gate: runs in start() unless disabled per program
        # (lint=False) or globally (REPRO_LINT=0); suppress individual
        # rules with lint_ignore={"FG101", ...} or REPRO_LINT_IGNORE
        if lint is None:
            lint = os.environ.get("REPRO_LINT", "1").lower() not in (
                "0", "false", "off", "no")
        self._lint_enabled = lint
        self._lint_ignore = (normalize_rule_ids(
            lint_ignore, source="FGProgram(lint_ignore=...)")
            if lint_ignore else set())
        #: findings of the automatic lint pass (errors raise from start())
        self.lint_findings: list[Any] = []
        # FGSan: opt-in dynamic buffer-ownership sanitizer
        if sanitize is None:
            sanitize = sanitize_from_env()
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(self) if sanitize else None)
        # FGRace: opt-in happens-before race detector; True collects and
        # raises from wait(), "strict" additionally hard-fails on any
        # dynamic race the static effect analysis did not predict
        if race_detect is None:
            race_detect = race_from_env()
        if race_detect:
            self.kernel.enable_race_detection(
                strict=race_detect == "strict")
        #: optional hook fired once per stage failure, from inside the
        #: failing stage's process: ``hook(stage, pipelines, exc)``.  Used
        #: for cross-node compensation (e.g. dsort flushing end markers so
        #: peer receive stages are not left waiting on a dead sender).
        self.on_pipeline_failure: Optional[
            Callable[[Stage, list[Pipeline], BaseException], None]] = None
        #: the :class:`~repro.plan.plan.Plan` applied at start() (via
        #: ``kernel.plan`` or a direct ``plan.apply(program)``); its
        #: digest becomes part of the structural fingerprint
        self.applied_plan: Optional[Any] = None
        #: dynamic-pool deltas per pipeline id — buffers grown into /
        #: retired from circulation after construction.  Part of the
        #: program's structural identity (see repro.plan.ir).
        self._pool_grown: dict[int, int] = {}
        self._pool_retired: dict[int, int] = {}
        self._started = False
        self._procs: list[Process] = []
        # graceful-teardown state (see _stage_failed)
        self._failures: list[StageFailure] = []
        self._poisoned: set[int] = set()
        self._flushed: set[int] = set()
        # materialized at assembly:
        self._in_q: dict[tuple[int, int], Channel] = {}
        self._sink_q: dict[int, Channel] = {}
        self._recycle: dict[int, Channel] = {}
        self._groups: dict[str, VirtualGroup] = {}
        self._families: list[Family] = []
        self._contexts: dict[int, StageContext] = {}
        self._stage_eos: set[tuple[int, int]] = set()
        self._buffers: dict[int, list[Buffer]] = {}
        #: replica sets keyed by (id(pipeline), id(stage))
        self._replica_sets: dict[tuple[int, int], ReplicaSet] = {}
        #: buffers the source still has to take out of circulation
        self._retire_pending: dict[int, int] = {}
        #: next buffer index per pipeline (dynamic pool growth)
        self._next_buf_index: dict[int, int] = {}

    # -- construction -----------------------------------------------------------

    def add_pipeline(self, name: str, stages: Sequence[Stage], *,
                     nbuffers: int, buffer_bytes: int,
                     rounds: Optional[int] = None,
                     aux_buffers: bool = False,
                     channel_capacity: Optional[int] = None,
                     replicas: Optional[Mapping[str, int]] = None,
                     role: Optional[str] = None
                     ) -> Pipeline:
        """Describe a pipeline; FG adds the source and sink itself.

        ``channel_capacity`` bounds every inter-stage queue of this
        pipeline (None keeps the historical unbounded queues); the sink
        and recycle channels stay unbounded so the recycling protocol
        never wedges.  ``replicas`` maps stage names to replica counts
        (see the module docstring; count 1 still wires the sequencer so
        :meth:`add_replica` can grow the set at runtime).
        """
        if self._started:
            raise PipelineStructureError(
                "cannot add pipelines after the program started")
        pipeline = Pipeline(name, stages, nbuffers=nbuffers,
                            buffer_bytes=buffer_bytes, rounds=rounds,
                            aux_buffers=aux_buffers,
                            channel_capacity=channel_capacity,
                            replicas=replicas, role=role)
        self.pipelines.append(pipeline)
        return pipeline

    # -- queue lookups (used by StageContext) -----------------------------------------

    def in_queue(self, pipeline: Pipeline, stage: Stage) -> Channel:
        """The queue feeding ``stage`` within ``pipeline``."""
        return self._in_q[(id(pipeline), id(stage))]

    def out_queue(self, pipeline: Pipeline, stage: Stage) -> Channel:
        """The queue ``stage`` conveys into within ``pipeline``.

        For a replicated stage this is the reorder channel feeding its
        sequencer; only the sequencer itself conveys into the true
        successor (see :meth:`_successor_queue`).
        """
        rset = self._replica_sets.get((id(pipeline), id(stage)))
        if rset is not None:
            return rset.reorder
        return self._successor_queue(pipeline, stage)

    def _successor_queue(self, pipeline: Pipeline, stage: Stage) -> Channel:
        """The queue of the stage after ``stage`` (or the sink queue)."""
        pos = pipeline.position_of(stage)
        if pos + 1 < len(pipeline.stages):
            nxt = pipeline.stages[pos + 1]
            return self._in_q[(id(pipeline), id(nxt))]
        return self._sink_q[id(pipeline)]

    def mark_stage_eos(self, pipeline: Pipeline, stage: Stage) -> None:
        """Record that ``stage`` declared end-of-stream on ``pipeline``
        (virtual-group dispatch drops that pipeline's later buffers)."""
        self._stage_eos.add((id(pipeline), id(stage)))

    def buffers_of(self, pipeline: Pipeline) -> list[Buffer]:
        """The buffer pool materialized for ``pipeline``."""
        return self._buffers[id(pipeline)]

    # -- assembly ---------------------------------------------------------------------

    def _unique_stages(self) -> list[Stage]:
        seen: dict[int, Stage] = {}
        for p in self.pipelines:
            for s in p.stages:
                seen.setdefault(id(s), s)
        return list(seen.values())

    def _pipelines_of(self, stage: Stage) -> list[Pipeline]:
        return [p for p in self.pipelines if stage in p]

    def _validate_and_group(self) -> None:
        self._groups = {}
        for p in self.pipelines:
            group_keys_here: set[str] = set()
            for s in p.stages:
                if not s.virtual:
                    continue
                if s.virtual_group in group_keys_here:
                    raise PipelineStructureError(
                        f"virtual group {s.virtual_group!r} appears twice "
                        f"in pipeline {p.name!r}")
                group_keys_here.add(s.virtual_group)
                group = self._groups.setdefault(
                    s.virtual_group, VirtualGroup(key=s.virtual_group))
                group.members.append((p, s))
        for stage in self._unique_stages():
            owners = self._pipelines_of(stage)
            if stage.virtual and len(owners) > 1:
                raise PipelineStructureError(
                    f"virtual stage {stage.name!r} appears in several "
                    "pipelines; create one member instance per pipeline "
                    "with the same virtual_group instead")
            if (not stage.virtual and stage.style == "map"
                    and len(owners) > 1):
                raise PipelineStructureError(
                    f"map-style stage {stage.name!r} is shared by "
                    f"{len(owners)} pipelines; intersecting stages must be "
                    "full-control (Stage.source_driven)")

    def _compute_families(self) -> None:
        """Union-find over pipelines linked by virtual groups."""
        parent: dict[int, int] = {id(p): id(p) for p in self.pipelines}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for group in self._groups.values():
            pipes = group.pipelines
            for other in pipes[1:]:
                union(id(pipes[0]), id(other))
        virtual_pids = {id(p) for g in self._groups.values()
                        for p in g.pipelines}
        roots: dict[int, Family] = {}
        self._families = []
        # walk in pipeline-definition order: family numbering (and hence
        # channel names, thread names, traces) must not depend on id()
        # hashes
        for p in self.pipelines:
            if id(p) not in virtual_pids:
                continue
            root = find(id(p))
            family = roots.get(root)
            if family is None:
                family = Family()
                roots[root] = family
                self._families.append(family)
            family.pipelines.append(p)

    def _family_of(self, pipeline: Pipeline) -> Optional[Family]:
        for family in self._families:
            if any(p is pipeline for p in family.pipelines):
                return family
        return None

    def _assemble(self) -> None:
        if not self.pipelines:
            raise PipelineStructureError("program has no pipelines")
        self._validate_and_group()
        self._compute_families()
        # shared queues for virtual groups
        for group in self._groups.values():
            group.shared_queue = Channel(
                self.kernel, name=f"{self.name}.vgroup[{group.key}].in")
        # per-family shared sink queue and recycle channel
        for i, family in enumerate(self._families):
            family.sink_queue = Channel(
                self.kernel, name=f"{self.name}.family{i}.sink")
            family.recycle = Channel(
                self.kernel, name=f"{self.name}.family{i}.recycle")
        # per-pipeline plumbing
        for p in self.pipelines:
            family = self._family_of(p)
            for s in p.stages:
                if s.virtual:
                    queue = self._groups[s.virtual_group].shared_queue
                else:
                    queue = Channel(
                        self.kernel, capacity=p.channel_capacity,
                        name=f"{self.name}.{p.name}->{s.name}")
                    queue.owner = f"{self.name}.{p.name}"
                self._in_q[(id(p), id(s))] = queue
            if family is not None:
                self._sink_q[id(p)] = family.sink_queue
                self._recycle[id(p)] = family.recycle
            else:
                self._sink_q[id(p)] = Channel(
                    self.kernel, name=f"{self.name}.{p.name}->sink")
                self._sink_q[id(p)].owner = f"{self.name}.{p.name}"
                self._recycle[id(p)] = Channel(
                    self.kernel, name=f"{self.name}.{p.name}.recycle")
                self._recycle[id(p)].owner = f"{self.name}.{p.name}"
            pool = [Buffer(p, i, p.buffer_bytes, with_aux=p.aux_buffers)
                    for i in range(p.nbuffers)]
            self._buffers[id(p)] = pool
            self._next_buf_index[id(p)] = p.nbuffers
            # Recycle channels are unbounded, so pre-filling never blocks.
            for buf in pool:
                self._recycle[id(p)].put(buf)
            # replica sets: reorder channel + synthetic sequencer stage
            for s in p.stages:
                if not p.is_replicated(s):
                    continue
                seq_stage = Stage(f"{s.name}~seq", None, style="full")
                reorder = Channel(
                    self.kernel,
                    name=f"{self.name}.{p.name}.{s.name}~reorder")
                reorder.owner = f"{self.name}.{p.name}"
                rset = ReplicaSet(p, s, seq_stage, reorder)
                self._replica_sets[(id(p), id(s))] = rset
                for _ in range(p.replica_count(s)):
                    self._new_replica_context(rset)
        # contexts for non-virtual stages
        for stage in self._unique_stages():
            if stage.virtual:
                continue
            self._contexts[id(stage)] = StageContext(
                self, stage, self._pipelines_of(stage))
        # per-member contexts for virtual groups
        for group in self._groups.values():
            for p, s in group.members:
                group.contexts[id(p)] = StageContext(self, s, [p])
        self._register_waitfor_labels()
        if self.sanitizer is not None:
            self.sanitizer.install()

    def _spawn_name(self, stage: Stage) -> str:
        """The kernel-process name a stage runs under (see start())."""
        if stage.virtual:
            return f"{self.name}.vgroup[{stage.virtual_group}]"
        return f"{self.name}.{stage.name}"

    def _replica_name(self, rset: ReplicaSet, idx: int) -> str:
        return f"{self.name}.{rset.stage.name}[r{idx}]"

    def _seq_name(self, rset: ReplicaSet) -> str:
        return f"{self.name}.{rset.stage.name}~seq"

    def _new_replica_context(self, rset: ReplicaSet) -> int:
        """Allocate the context (and index) for one more replica."""
        idx = rset.total
        rset.total += 1
        rset.live += 1
        ctx = StageContext(self, rset.stage, [rset.pipeline])
        ctx.replica = idx
        rset.contexts.append(ctx)
        return idx

    def _register_waitfor_labels(self) -> None:
        """Tell every channel which process names produce into and
        consume from it, so a runtime deadlock report can extract the
        concrete wait-for cycle (see :mod:`repro.sim.waitfor`)."""
        for i, family in enumerate(self._families):
            src = f"{self.name}.family{i}.source"
            snk = f"{self.name}.family{i}.sink"
            family.sink_queue.consumers.add(snk)
            family.recycle.producers.add(snk)
            family.recycle.consumers.add(src)
        for p in self.pipelines:
            family = self._family_of(p)
            if family is not None:
                i = self._families.index(family)
                source = f"{self.name}.family{i}.source"
            else:
                source = f"{self.name}.{p.name}.source"
                sink = f"{self.name}.{p.name}.sink"
                self._sink_q[id(p)].consumers.add(sink)
                self._recycle[id(p)].producers.add(sink)
                self._recycle[id(p)].consumers.add(source)
            producer = source
            for s in p.stages:
                queue = self._in_q[(id(p), id(s))]
                queue.producers.add(producer)
                rset = self._replica_sets.get((id(p), id(s)))
                if rset is None:
                    queue.consumers.add(self._spawn_name(s))
                    producer = self._spawn_name(s)
                else:
                    for idx in range(rset.total):
                        name = self._replica_name(rset, idx)
                        queue.consumers.add(name)
                        rset.reorder.producers.add(name)
                    rset.reorder.consumers.add(self._seq_name(rset))
                    producer = self._seq_name(rset)
            self._sink_q[id(p)].producers.add(producer)

    # -- graceful teardown --------------------------------------------------------------

    def _stage_failed(self, stage: Stage, pipelines: Sequence[Pipeline],
                      exc: BaseException) -> None:
        """Poison ``pipelines`` after ``stage`` raised ``exc``.

        Runs in the failing stage's process.  Records the stage-level
        causal chain, conveys a caboose past the dead stage on every
        affected pipeline — so downstream stages drain, sinks send Stop,
        and sources wind down — and fires :attr:`on_pipeline_failure` for
        cross-node compensation.  Sibling pipelines keep running; the
        failure surfaces from :meth:`wait` as
        :class:`~repro.errors.PipelineFailed`.
        """
        for p in pipelines:
            self._failures.append(StageFailure(p.name, stage.name, exc))
            self._poisoned.add(id(p))
            self.observer.poisoned(p)
            self.out_queue(p, stage).put(Buffer.caboose(p, self.sanitizer))
        if self.on_pipeline_failure is not None:
            try:
                self.on_pipeline_failure(stage, list(pipelines), exc)
            except KernelShutdown:
                raise
            except BaseException:  # noqa: BLE001 - compensation is
                pass                # best-effort; the root cause is kept

    def _flush_poisoned_source(self, p: Pipeline) -> None:
        """Emit one caboose into a poisoned pipeline so stages upstream
        of the dead one (still blocked accepting) drain and exit.  Only
        fires when the source had not emitted its natural caboose yet."""
        if id(p) in self._poisoned and id(p) not in self._flushed:
            self._flushed.add(id(p))
            self._in_q[(id(p), id(p.stages[0]))].put(Buffer.caboose(p, self.sanitizer))

    # -- runner loops -------------------------------------------------------------------

    def _maybe_retire(self, p: Pipeline, buf: Buffer) -> bool:
        """Source-side half of :meth:`retire_buffers`: take ``buf`` out
        of circulation if a retirement is pending.  Returns True when the
        buffer was retired (the source must not emit it)."""
        pending = self._retire_pending.get(id(p), 0)
        if not pending:
            return False
        self._retire_pending[id(p)] = pending - 1
        p.nbuffers -= 1
        self._pool_retired[id(p)] = self._pool_retired.get(id(p), 0) + 1
        if self.sanitizer is not None:
            self.sanitizer.on_retire(p, buf)
        self.observer.pool_resized(p, -1, p.nbuffers)
        return True

    def _run_source(self, p: Pipeline) -> None:
        recycle = self._recycle[id(p)]
        first = self._in_q[(id(p), id(p.stages[0]))]
        emitted = 0
        while p.rounds is None or emitted < p.rounds:
            item = recycle.get()
            if isinstance(item, Stop):
                self._flush_poisoned_source(p)
                return
            if self._maybe_retire(p, item):
                continue
            item.clear()
            if self.sanitizer is not None:
                self.sanitizer.on_emit(p, item)
            item.round = emitted
            self.observer.emitted(p)
            first.put(item)
            emitted += 1
        first.put(Buffer.caboose(p, self.sanitizer))

    def _run_sink(self, p: Pipeline) -> None:
        sink_q = self._sink_q[id(p)]
        recycle = self._recycle[id(p)]
        while True:
            buf = sink_q.get()
            if buf.is_caboose:
                recycle.put(Stop(p))
                return
            if self.sanitizer is not None:
                self.sanitizer.on_recycle(p, buf)
            self.observer.recycled(p)
            recycle.put(buf)

    def _run_source_group(self, family: Family) -> None:
        recycle = family.recycle
        pending: dict[int, Pipeline] = {id(p): p for p in family.pipelines}
        emitted: dict[int, int] = {id(p): 0 for p in family.pipelines}
        for p in list(family.pipelines):
            if p.rounds == 0:
                self._in_q[(id(p), id(p.stages[0]))].put(Buffer.caboose(p, self.sanitizer))
                pending.pop(id(p))
        while pending:
            item = recycle.get()
            if isinstance(item, Stop):
                if id(item.pipeline) in pending:
                    self._flush_poisoned_source(item.pipeline)
                pending.pop(id(item.pipeline), None)
                continue
            p = item.pipeline
            pid = id(p)
            if pid not in pending:
                continue  # stale buffer of an already-finished pipeline
            if self._maybe_retire(p, item):
                continue
            item.clear()
            if self.sanitizer is not None:
                self.sanitizer.on_emit(p, item)
            item.round = emitted[pid]
            self.observer.emitted(p)
            first = self._in_q[(pid, id(p.stages[0]))]
            first.put(item)
            emitted[pid] += 1
            if p.rounds is not None and emitted[pid] == p.rounds:
                first.put(Buffer.caboose(p, self.sanitizer))
                pending.pop(pid)

    def _run_sink_group(self, family: Family) -> None:
        remaining = {id(p) for p in family.pipelines}
        while remaining:
            buf = family.sink_queue.get()
            if buf.is_caboose:
                family.recycle.put(Stop(buf.pipeline))
                remaining.discard(id(buf.pipeline))
            else:
                if self.sanitizer is not None:
                    self.sanitizer.on_recycle(buf.pipeline, buf)
                self.observer.recycled(buf.pipeline)
                family.recycle.put(buf)

    def _run_map_stage(self, stage: Stage, ctx: StageContext) -> None:
        self.observer.stage_started(stage)
        try:
            while True:
                buf = ctx.accept()
                if buf.is_caboose:
                    ctx.forward(buf)
                    return
                try:
                    out = stage.fn(ctx, buf)
                except KernelShutdown:
                    raise
                except BaseException as exc:  # noqa: BLE001 - poison, not
                    self._stage_failed(stage, ctx.pipelines, exc)  # abort
                    return
                if out is not None:
                    ctx.convey(out)
                elif self.sanitizer is not None:
                    self.sanitizer.on_drop(stage, buf)
        finally:
            self.observer.stage_finished(stage)

    def _run_replica(self, rset: ReplicaSet, idx: int) -> None:
        """One copy of a replicated stage: a map loop that tickets every
        acceptance and hands the result to the sequencer.

        The ticket is taken with no blocking point between the channel
        get and the increment, so ticket order equals delivery order —
        exactly the order a single copy would have processed the buffers.
        """
        stage, p = rset.stage, rset.pipeline
        ctx = rset.contexts[idx]
        in_q = self._in_q[(id(p), id(stage))]
        reorder = rset.reorder
        self.observer.stage_started(stage)
        try:
            while True:
                t0 = self.kernel.now()
                buf = in_q.get()
                wait = self.kernel.now() - t0
                if buf.is_caboose:
                    # caboose relay: every sibling must see it once; the
                    # last live replica forwards it to the sequencer (all
                    # data envelopes are already in the reorder channel,
                    # since each sibling conveyed before re-accepting)
                    rset.live -= 1
                    if rset.live > 0:
                        in_q.put(buf)
                    else:
                        reorder.put(buf)
                    return
                ticket = rset.next_ticket
                rset.next_ticket += 1
                self.observer.accepted(stage, wait)
                if self.sanitizer is not None:
                    self.sanitizer.on_accept(stage, p, buf)
                race = self.kernel.race
                if race is not None:
                    race.on_stage_access(stage)
                try:
                    out = stage.fn(ctx, buf)
                except KernelShutdown:
                    raise
                except BaseException as exc:  # noqa: BLE001 - poison
                    self._stage_failed(stage, [p], exc)
                    rset.live -= 1
                    return
                if out is None:
                    if self.sanitizer is not None:
                        self.sanitizer.on_drop(stage, buf)
                    reorder.put(_Skip(ticket))
                else:
                    if self.sanitizer is not None:
                        self.sanitizer.on_convey(stage, out)
                    reorder.put(_Seq(ticket, out))
                    self.observer.conveyed(stage, out)
        finally:
            self.observer.stage_finished(stage)

    def _run_sequencer(self, rset: ReplicaSet) -> None:
        """Restore ticket order downstream of a replica set.

        Envelopes arrive in completion order; the sequencer holds
        out-of-order ones (at most pool-size many) and releases
        consecutive tickets to the true successor queue.  A caboose ends
        the set: any still-held envelopes are flushed in ticket order
        first, so a poisoned teardown cannot strand buffers here.
        """
        stage, p = rset.stage, rset.pipeline
        seq = rset.seq_stage
        out_q = self._successor_queue(p, stage)
        reorder = rset.reorder
        self.observer.stage_started(seq)
        try:
            next_ticket = 0
            held: dict[int, Optional[Buffer]] = {}  # None = skipped

            def release(entry: Optional[Buffer]) -> None:
                if entry is None:
                    return
                if self.sanitizer is not None:
                    self.sanitizer.on_convey(seq, entry)
                out_q.put(entry)
                self.observer.conveyed(seq, entry)

            while True:
                t0 = self.kernel.now()
                item = reorder.get()
                wait = self.kernel.now() - t0
                if isinstance(item, Buffer):
                    if not item.is_caboose:
                        raise StageError(
                            f"sequencer of {stage.name!r} received a raw "
                            f"data buffer {item!r}; replicated stages "
                            "must not convey manually (FG109)")
                    for ticket in sorted(held):
                        release(held[ticket])
                    held.clear()
                    rset.finished = True
                    out_q.put(item)
                    return
                self.observer.accepted(seq, wait)
                if isinstance(item, _Skip):
                    held[item.ticket] = None
                else:
                    if self.sanitizer is not None:
                        self.sanitizer.on_accept(seq, p, item.buffer)
                    held[item.ticket] = item.buffer
                while next_ticket in held:
                    release(held.pop(next_ticket))
                    next_ticket += 1
        except KernelShutdown:
            raise
        except BaseException as exc:  # noqa: BLE001 - poison, not abort
            rset.finished = True
            self._failures.append(
                StageFailure(p.name, seq.name, exc))
            self._poisoned.add(id(p))
            self.observer.poisoned(p)
            out_q.put(Buffer.caboose(p, self.sanitizer))
        finally:
            self.observer.stage_finished(seq)

    def _run_full_stage(self, stage: Stage, ctx: StageContext) -> None:
        self.observer.stage_started(stage)
        try:
            try:
                stage.fn(ctx)
            except KernelShutdown:
                raise
            except BaseException as exc:  # noqa: BLE001 - poison, not abort
                self._stage_failed(stage, ctx.pipelines, exc)
        finally:
            self.observer.stage_finished(stage)

    def _run_virtual_group(self, group: VirtualGroup) -> None:
        live = {id(p) for p in group.pipelines}
        for _, s in group.members:
            self.observer.stage_started(s)
        try:
            while live:
                t0 = self.kernel.now()
                buf = group.shared_queue.get()
                wait = self.kernel.now() - t0
                pid = id(buf.pipeline)
                if pid not in live:
                    if self.sanitizer is not None:
                        self.sanitizer.on_straggler(buf)
                    continue  # buffer raced past this pipeline's shutdown
                stage = group.member_stage(pid)
                ctx = group.contexts[pid]
                if buf.is_caboose:
                    self.out_queue(buf.pipeline, stage).put(buf)
                    live.discard(pid)
                    continue
                if (pid, id(stage)) in self._stage_eos:
                    if self.sanitizer is not None:
                        self.sanitizer.on_straggler(buf)
                    continue  # member declared EOS itself; drop stragglers
                # shared-queue wait is attributed to the member whose
                # buffer ended it — the best available approximation
                self.observer.accepted(stage, wait)
                if self.sanitizer is not None:
                    self.sanitizer.on_accept(stage, buf.pipeline, buf)
                race = self.kernel.race
                if race is not None:
                    race.on_stage_access(stage)
                try:
                    out = stage.fn(ctx, buf)
                except KernelShutdown:
                    raise
                except BaseException as exc:  # noqa: BLE001 - poison only
                    self._stage_failed(stage, [buf.pipeline], exc)  # member
                    live.discard(pid)
                    continue
                if out is not None:
                    ctx.convey(out)
                elif self.sanitizer is not None:
                    self.sanitizer.on_drop(stage, buf)
                if (pid, id(stage)) in self._stage_eos:
                    live.discard(pid)
        finally:
            for _, s in group.members:
                self.observer.stage_finished(s)

    # -- execution ------------------------------------------------------------------------

    def lint(self, ignore: Optional[Iterable[str]] = None) -> list[Any]:
        """Run the static linter over this program's declared structure.

        Returns the findings (also stored on :attr:`lint_findings`).
        Called automatically from :meth:`start` unless linting is
        disabled; may also be called directly before starting.
        """
        from repro.check import linter as _linter
        merged = set(self._lint_ignore)
        if ignore:
            merged.update(ignore)
        report = _linter.lint_program(self, ignore=merged)
        self.lint_findings = list(report)
        if _linter.COLLECTOR is not None:
            _linter.COLLECTOR.append((self.name, list(report)))
        return self.lint_findings

    def start(self) -> list[Process]:
        """Assemble and spawn every FG thread; returns the processes.

        The static linter (:mod:`repro.check.linter`) runs first;
        error-severity findings raise :class:`~repro.errors.LintError`
        before any process is spawned.
        """
        if self._started:
            raise PipelineStructureError("program already started")
        self._started = True
        # the pipeline compiler runs between declaration and lint: a
        # Plan installed on the kernel (run_sort(plan=...), or
        # plan.install(kernel)) fuses fusable stage runs and stamps
        # this program, so the lint pass and the structural fingerprint
        # both see the *planned* graph
        plan = getattr(self.kernel, "plan", None)
        if plan is not None:
            plan.apply(self)
        if self._lint_enabled:
            findings = self.lint()
            errors = [f for f in findings if f.is_error]
            if errors:
                raise LintError(findings)
        race = getattr(self.kernel, "race", None)
        if race is not None:
            # FGRace consumes the *planned* graph (post-fusion), so the
            # effect sets it replays match the stages actually spawned
            from repro.check.dataflow import program_effects
            from repro.plan.ir import ProgramGraph
            race.register_program(
                program_effects(ProgramGraph.from_program(self)))
        self._assemble()
        self.observer.program_started()
        procs: list[Process] = []
        spawned_sources: set[int] = set()
        for p in self.pipelines:
            family = self._family_of(p)
            if family is None:
                procs.append(self.kernel.spawn(
                    self._run_source, p, name=f"{self.name}.{p.name}.source"))
                procs.append(self.kernel.spawn(
                    self._run_sink, p, name=f"{self.name}.{p.name}.sink"))
        for i, family in enumerate(self._families):
            procs.append(self.kernel.spawn(
                self._run_source_group, family,
                name=f"{self.name}.family{i}.source"))
            procs.append(self.kernel.spawn(
                self._run_sink_group, family,
                name=f"{self.name}.family{i}.sink"))
        for group in self._groups.values():
            procs.append(self.kernel.spawn(
                self._run_virtual_group, group,
                name=f"{self.name}.vgroup[{group.key}]"))
        replicated: set[int] = set()
        for rset in self._replica_sets.values():
            replicated.add(id(rset.stage))
            for idx in range(rset.total):
                procs.append(self.kernel.spawn(
                    self._run_replica, rset, idx,
                    name=self._replica_name(rset, idx)))
            procs.append(self.kernel.spawn(
                self._run_sequencer, rset, name=self._seq_name(rset)))
        for stage in self._unique_stages():
            if stage.virtual or id(stage) in replicated:
                continue
            ctx = self._contexts[id(stage)]
            runner = (self._run_map_stage if stage.style == "map"
                      else self._run_full_stage)
            procs.append(self.kernel.spawn(
                runner, stage, ctx, name=f"{self.name}.{stage.name}"))
        self._procs = procs
        return procs

    def wait(self) -> None:
        """Join every FG process (call from inside a kernel process).

        When stages failed, the surviving pipelines first run to
        completion; then stranded buffers are drained back to their
        pools and :class:`~repro.errors.PipelineFailed` is raised with
        the stage-level causal chain.
        """
        for proc in self._procs:
            proc.join()
        if self._failures:
            self._drain_poisoned()
            raise PipelineFailed(list(self._failures))
        if self.sanitizer is not None:
            # leak check only on clean runs: poisoned pipelines park
            # their buffers through _drain_poisoned instead
            self.sanitizer.check_teardown()
        race = getattr(self.kernel, "race", None)
        if race is not None:
            race.check_teardown()

    def _drain_poisoned(self) -> None:
        """Return buffers stranded in poisoned pipelines' queues to their
        pools.  Runs after every FG process joined, so the queues are
        inert; shared (family/group) queues are drained once."""
        seen: set[int] = set()
        drained: dict[int, int] = {}
        for p in self.pipelines:
            if id(p) not in self._poisoned:
                continue
            queues = [self._in_q[(id(p), id(s))] for s in p.stages]
            queues.extend(rset.reorder
                          for (pid, _), rset in self._replica_sets.items()
                          if pid == id(p))
            queues.append(self._sink_q[id(p)])
            for q in queues:
                if id(q) in seen:
                    continue
                seen.add(id(q))
                while True:
                    ok, item = q.try_get()
                    if not ok:
                        break
                    if isinstance(item, _Seq):
                        item = item.buffer
                    if isinstance(item, Buffer) and not item.is_caboose:
                        owner = item.pipeline
                        self._recycle[id(owner)].put(item)
                        drained[id(owner)] = drained.get(id(owner), 0) + 1
        for p in self.pipelines:
            count = drained.get(id(p), 0)
            if count:
                self.observer.drained(p, count)

    def run(self) -> None:
        """``start()`` + ``wait()`` — the usual way to execute a program."""
        self.start()
        self.wait()

    # -- runtime tuning (repro.tune mechanisms) -------------------------------------------

    def replica_set(self, pipeline: Pipeline,
                    stage: Union[Stage, str]) -> ReplicaSet:
        """The replica set of ``stage`` in ``pipeline`` (started programs
        only; the stage must have been declared in ``replicas``)."""
        if isinstance(stage, str):
            matches = [s for s in pipeline.stages if s.name == stage]
            if not matches:
                raise PipelineStructureError(
                    f"pipeline {pipeline.name!r} has no stage {stage!r}")
            stage = matches[0]
        rset = self._replica_sets.get((id(pipeline), id(stage)))
        if rset is None:
            raise PipelineStructureError(
                f"stage {stage.name!r} was not declared replicated in "
                f"pipeline {pipeline.name!r}; pass replicas={{...}} to "
                "add_pipeline (count 1 wires the sequencer)")
        return rset

    def replica_sets(self) -> list[ReplicaSet]:
        """Every replica set of this program (assembled at start)."""
        return list(self._replica_sets.values())

    def add_replica(self, pipeline: Pipeline,
                    stage: Union[Stage, str]) -> bool:
        """Spawn one more replica of a replicated stage, mid-run.

        Returns False (and spawns nothing) when the replica set already
        saw its caboose — the new copy could never receive work.
        """
        if not self._started:
            raise PipelineStructureError(
                "add_replica needs a started program; declare the initial "
                "count in the pipeline's replicas mapping instead")
        rset = self.replica_set(pipeline, stage)
        if rset.finished or rset.live == 0:
            return False
        idx = self._new_replica_context(rset)
        name = self._replica_name(rset, idx)
        in_q = self._in_q[(id(rset.pipeline), id(rset.stage))]
        in_q.consumers.add(name)
        rset.reorder.producers.add(name)
        proc = self.kernel.spawn(self._run_replica, rset, idx, name=name)
        self._procs.append(proc)
        self.observer.replica_added(rset.stage, rset.live)
        return True

    def add_buffers(self, pipeline: Pipeline, count: int = 1) -> int:
        """Grow a started pipeline's buffer pool by ``count`` buffers.

        The new buffers are materialized, registered with the sanitizer,
        and put straight on the recycle channel (unbounded, so this never
        blocks); the source picks them up on its next round.  Returns the
        new pool size.
        """
        if count < 1:
            raise PipelineStructureError(
                f"add_buffers: count must be >= 1, got {count}")
        if not self._started:
            raise PipelineStructureError(
                "add_buffers needs a started program; size the pool with "
                "nbuffers before start instead")
        pool = self._buffers[id(pipeline)]
        recycle = self._recycle[id(pipeline)]
        for _ in range(count):
            idx = self._next_buf_index[id(pipeline)]
            self._next_buf_index[id(pipeline)] = idx + 1
            buf = Buffer(pipeline, idx, pipeline.buffer_bytes,
                         with_aux=pipeline.aux_buffers)
            if self.sanitizer is not None:
                self.sanitizer.track(buf)
            pool.append(buf)
            recycle.put(buf)
        pipeline.nbuffers += count
        self._pool_grown[id(pipeline)] = (
            self._pool_grown.get(id(pipeline), 0) + count)
        self.observer.pool_resized(pipeline, count, pipeline.nbuffers)
        return pipeline.nbuffers

    def retire_buffers(self, pipeline: Pipeline, count: int = 1) -> int:
        """Shrink a started pipeline's pool by up to ``count`` buffers.

        Retirement is cooperative: the source takes the next ``count``
        recycled buffers out of circulation instead of re-emitting them
        (a buffer mid-flight cannot be revoked).  At least one buffer
        always stays in circulation.  Returns how many retirements were
        actually scheduled.
        """
        if count < 1:
            raise PipelineStructureError(
                f"retire_buffers: count must be >= 1, got {count}")
        if not self._started:
            raise PipelineStructureError(
                "retire_buffers needs a started program; size the pool "
                "with nbuffers before start instead")
        pending = self._retire_pending.get(id(pipeline), 0)
        headroom = pipeline.nbuffers - pending - 1
        granted = max(0, min(count, headroom))
        if granted:
            self._retire_pending[id(pipeline)] = pending + granted
        return granted

    # -- introspection -------------------------------------------------------------------------

    def pool_deltas(self, pipeline: Pipeline) -> tuple[int, int]:
        """``(grown, retired)`` buffer counts for a pipeline's dynamic
        pool since construction — the state
        :class:`repro.plan.ir.ProgramGraph` folds into the structural
        fingerprint so a grown pool is not provenance-identical to a
        declared one."""
        return (self._pool_grown.get(id(pipeline), 0),
                self._pool_retired.get(id(pipeline), 0))

    @property
    def finished(self) -> bool:
        """True once every spawned FG process has exited (the feedback
        controller of :mod:`repro.tune` polls this to stop itself)."""
        return self._started and all(not proc.alive for proc in self._procs)

    @property
    def thread_count(self) -> int:
        """Number of FG threads (processes) this program spawned —
        the quantity Figure 5(b)'s virtual stages reduce from Θ(k) to Θ(1)."""
        return len(self._procs)

    def stage_stats(self) -> dict[str, StageStats]:
        """Per-stage statistics, keyed by stage name."""
        return {s.name: s.stats for s in self._unique_stages()}

    @property
    def total_buffer_bytes(self) -> int:
        """Memory held by every pipeline's buffer pool (aux included) —
        the quantity the paper promises "fits within the physical RAM"
        because pools are small and fixed."""
        total = 0
        for p in self.pipelines:
            per_buffer = p.buffer_bytes * (2 if p.aux_buffers else 1)
            total += p.nbuffers * per_buffer
        return total

    def report(self) -> str:
        """Text summary of per-stage activity after a run."""
        lines = [f"FG program {self.name!r}: "
                 f"{len(self.pipelines)} pipeline(s), "
                 f"{self.thread_count} thread(s), "
                 f"{self.total_buffer_bytes} buffer byte(s)"]
        header = (f"{'stage':24s} {'accepts':>8s} {'conveys':>8s} "
                  f"{'wait(s)':>10s} {'busy(s)':>10s}")
        lines.append(header)
        lines.append("-" * len(header))
        for name, stats in self.stage_stats().items():
            lines.append(f"{name:24s} {stats.accepts:8d} "
                         f"{stats.conveys:8d} {stats.accept_wait:10.4f} "
                         f"{stats.busy:10.4f}")
        return "\n".join(lines)
