"""FGProgram: pipeline assembly and execution.

This module is FG's "framework generator": given pipeline descriptions, it

1. detects **intersecting** pipelines (a stage object appearing in several
   pipelines gets one thread and per-pipeline queues),
2. groups **virtual** stages (one thread + one shared queue per group) and
   virtualizes the sources/sinks of their pipeline *families*,
3. materializes buffer pools, inter-stage queues, and the sink-to-source
   recycling channels, and
4. spawns one kernel process per thread FG would create, runs them, and
   joins them.

The source/sink protocol:

* the **source** emits recycled buffers, stamping ``round``; for
  ``rounds=N`` it emits the caboose after N emissions; for ``rounds=None``
  it emits until a :class:`~repro.core.virtual.Stop` token arrives on the
  recycle channel;
* the **sink** recycles every data buffer back to the source and, on
  receiving the caboose, sends the Stop token (so unknown-length pipelines
  shut down cleanly).

Typical use, inside a per-node SPMD main::

    prog = FGProgram(kernel, env={"node": node, "comm": comm})
    prog.add_pipeline("work", [read, sort, write],
                      nbuffers=4, buffer_bytes=1 << 20, rounds=16)
    prog.run()
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.check.sanitizer import Sanitizer, sanitize_from_env
from repro.core.buffer import Buffer
from repro.core.context import StageContext
from repro.core.pipeline import Pipeline
from repro.core.stage import Stage, StageStats
from repro.core.virtual import Family, Stop, VirtualGroup
from repro.errors import (
    KernelShutdown,
    LintError,
    PipelineFailed,
    PipelineStructureError,
    StageFailure,
)
from repro.obs.observer import ProgramObserver
from repro.sim.channel import Channel
from repro.sim.kernel import Kernel, Process

__all__ = ["FGProgram"]


class FGProgram:
    """A set of pipelines assembled and run together on one node."""

    def __init__(self, kernel: Kernel, env: Optional[dict[str, Any]] = None,
                 name: str = "fg", *,
                 lint: Optional[bool] = None,
                 lint_ignore: Optional[Iterable[str]] = None,
                 sanitize: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.env: dict[str, Any] = dict(env) if env else {}
        self.name = name
        self.pipelines: list[Pipeline] = []
        #: the single event path for stage stats and metrics (repro.obs)
        self.observer = ProgramObserver(self)
        # static lint gate: runs in start() unless disabled per program
        # (lint=False) or globally (REPRO_LINT=0); suppress individual
        # rules with lint_ignore={"FG101", ...} or REPRO_LINT_IGNORE
        if lint is None:
            lint = os.environ.get("REPRO_LINT", "1").lower() not in (
                "0", "false", "off", "no")
        self._lint_enabled = lint
        self._lint_ignore = set(lint_ignore) if lint_ignore else set()
        #: findings of the automatic lint pass (errors raise from start())
        self.lint_findings: list[Any] = []
        # FGSan: opt-in dynamic buffer-ownership sanitizer
        if sanitize is None:
            sanitize = sanitize_from_env()
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(self) if sanitize else None)
        #: optional hook fired once per stage failure, from inside the
        #: failing stage's process: ``hook(stage, pipelines, exc)``.  Used
        #: for cross-node compensation (e.g. dsort flushing end markers so
        #: peer receive stages are not left waiting on a dead sender).
        self.on_pipeline_failure: Optional[
            Callable[[Stage, list[Pipeline], BaseException], None]] = None
        self._started = False
        self._procs: list[Process] = []
        # graceful-teardown state (see _stage_failed)
        self._failures: list[StageFailure] = []
        self._poisoned: set[int] = set()
        self._flushed: set[int] = set()
        # materialized at assembly:
        self._in_q: dict[tuple[int, int], Channel] = {}
        self._sink_q: dict[int, Channel] = {}
        self._recycle: dict[int, Channel] = {}
        self._groups: dict[str, VirtualGroup] = {}
        self._families: list[Family] = []
        self._contexts: dict[int, StageContext] = {}
        self._stage_eos: set[tuple[int, int]] = set()
        self._buffers: dict[int, list[Buffer]] = {}

    # -- construction -----------------------------------------------------------

    def add_pipeline(self, name: str, stages: Sequence[Stage], *,
                     nbuffers: int, buffer_bytes: int,
                     rounds: Optional[int] = None,
                     aux_buffers: bool = False,
                     channel_capacity: Optional[int] = None) -> Pipeline:
        """Describe a pipeline; FG adds the source and sink itself.

        ``channel_capacity`` bounds every inter-stage queue of this
        pipeline (None keeps the historical unbounded queues); the sink
        and recycle channels stay unbounded so the recycling protocol
        never wedges.
        """
        if self._started:
            raise PipelineStructureError(
                "cannot add pipelines after the program started")
        pipeline = Pipeline(name, stages, nbuffers=nbuffers,
                            buffer_bytes=buffer_bytes, rounds=rounds,
                            aux_buffers=aux_buffers,
                            channel_capacity=channel_capacity)
        self.pipelines.append(pipeline)
        return pipeline

    # -- queue lookups (used by StageContext) -----------------------------------------

    def in_queue(self, pipeline: Pipeline, stage: Stage) -> Channel:
        """The queue feeding ``stage`` within ``pipeline``."""
        return self._in_q[(id(pipeline), id(stage))]

    def out_queue(self, pipeline: Pipeline, stage: Stage) -> Channel:
        """The queue ``stage`` conveys into within ``pipeline``."""
        pos = pipeline.position_of(stage)
        if pos + 1 < len(pipeline.stages):
            nxt = pipeline.stages[pos + 1]
            return self._in_q[(id(pipeline), id(nxt))]
        return self._sink_q[id(pipeline)]

    def mark_stage_eos(self, pipeline: Pipeline, stage: Stage) -> None:
        """Record that ``stage`` declared end-of-stream on ``pipeline``
        (virtual-group dispatch drops that pipeline's later buffers)."""
        self._stage_eos.add((id(pipeline), id(stage)))

    def buffers_of(self, pipeline: Pipeline) -> list[Buffer]:
        """The buffer pool materialized for ``pipeline``."""
        return self._buffers[id(pipeline)]

    # -- assembly ---------------------------------------------------------------------

    def _unique_stages(self) -> list[Stage]:
        seen: dict[int, Stage] = {}
        for p in self.pipelines:
            for s in p.stages:
                seen.setdefault(id(s), s)
        return list(seen.values())

    def _pipelines_of(self, stage: Stage) -> list[Pipeline]:
        return [p for p in self.pipelines if stage in p]

    def _validate_and_group(self) -> None:
        self._groups = {}
        for p in self.pipelines:
            group_keys_here: set[str] = set()
            for s in p.stages:
                if not s.virtual:
                    continue
                if s.virtual_group in group_keys_here:
                    raise PipelineStructureError(
                        f"virtual group {s.virtual_group!r} appears twice "
                        f"in pipeline {p.name!r}")
                group_keys_here.add(s.virtual_group)
                group = self._groups.setdefault(
                    s.virtual_group, VirtualGroup(key=s.virtual_group))
                group.members.append((p, s))
        for stage in self._unique_stages():
            owners = self._pipelines_of(stage)
            if stage.virtual and len(owners) > 1:
                raise PipelineStructureError(
                    f"virtual stage {stage.name!r} appears in several "
                    "pipelines; create one member instance per pipeline "
                    "with the same virtual_group instead")
            if (not stage.virtual and stage.style == "map"
                    and len(owners) > 1):
                raise PipelineStructureError(
                    f"map-style stage {stage.name!r} is shared by "
                    f"{len(owners)} pipelines; intersecting stages must be "
                    "full-control (Stage.source_driven)")

    def _compute_families(self) -> None:
        """Union-find over pipelines linked by virtual groups."""
        parent: dict[int, int] = {id(p): id(p) for p in self.pipelines}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for group in self._groups.values():
            pipes = group.pipelines
            for other in pipes[1:]:
                union(id(pipes[0]), id(other))
        by_id = {id(p): p for p in self.pipelines}
        virtual_pids = {id(p) for g in self._groups.values()
                        for p in g.pipelines}
        roots: dict[int, Family] = {}
        self._families = []
        for pid in virtual_pids:
            root = find(pid)
            family = roots.get(root)
            if family is None:
                family = Family()
                roots[root] = family
                self._families.append(family)
            family.pipelines.append(by_id[pid])

    def _family_of(self, pipeline: Pipeline) -> Optional[Family]:
        for family in self._families:
            if any(p is pipeline for p in family.pipelines):
                return family
        return None

    def _assemble(self) -> None:
        if not self.pipelines:
            raise PipelineStructureError("program has no pipelines")
        self._validate_and_group()
        self._compute_families()
        # shared queues for virtual groups
        for group in self._groups.values():
            group.shared_queue = Channel(
                self.kernel, name=f"{self.name}.vgroup[{group.key}].in")
        # per-family shared sink queue and recycle channel
        for i, family in enumerate(self._families):
            family.sink_queue = Channel(
                self.kernel, name=f"{self.name}.family{i}.sink")
            family.recycle = Channel(
                self.kernel, name=f"{self.name}.family{i}.recycle")
        # per-pipeline plumbing
        for p in self.pipelines:
            family = self._family_of(p)
            for s in p.stages:
                if s.virtual:
                    queue = self._groups[s.virtual_group].shared_queue
                else:
                    queue = Channel(
                        self.kernel, capacity=p.channel_capacity,
                        name=f"{self.name}.{p.name}->{s.name}")
                    queue.owner = f"{self.name}.{p.name}"
                self._in_q[(id(p), id(s))] = queue
            if family is not None:
                self._sink_q[id(p)] = family.sink_queue
                self._recycle[id(p)] = family.recycle
            else:
                self._sink_q[id(p)] = Channel(
                    self.kernel, name=f"{self.name}.{p.name}->sink")
                self._sink_q[id(p)].owner = f"{self.name}.{p.name}"
                self._recycle[id(p)] = Channel(
                    self.kernel, name=f"{self.name}.{p.name}.recycle")
                self._recycle[id(p)].owner = f"{self.name}.{p.name}"
            pool = [Buffer(p, i, p.buffer_bytes, with_aux=p.aux_buffers)
                    for i in range(p.nbuffers)]
            self._buffers[id(p)] = pool
            # Recycle channels are unbounded, so pre-filling never blocks.
            for buf in pool:
                self._recycle[id(p)].put(buf)
        # contexts for non-virtual stages
        for stage in self._unique_stages():
            if stage.virtual:
                continue
            self._contexts[id(stage)] = StageContext(
                self, stage, self._pipelines_of(stage))
        # per-member contexts for virtual groups
        for group in self._groups.values():
            for p, s in group.members:
                group.contexts[id(p)] = StageContext(self, s, [p])
        self._register_waitfor_labels()
        if self.sanitizer is not None:
            self.sanitizer.install()

    def _spawn_name(self, stage: Stage) -> str:
        """The kernel-process name a stage runs under (see start())."""
        if stage.virtual:
            return f"{self.name}.vgroup[{stage.virtual_group}]"
        return f"{self.name}.{stage.name}"

    def _register_waitfor_labels(self) -> None:
        """Tell every channel which process names produce into and
        consume from it, so a runtime deadlock report can extract the
        concrete wait-for cycle (see :mod:`repro.sim.waitfor`)."""
        for i, family in enumerate(self._families):
            src = f"{self.name}.family{i}.source"
            snk = f"{self.name}.family{i}.sink"
            family.sink_queue.consumers.add(snk)
            family.recycle.producers.add(snk)
            family.recycle.consumers.add(src)
        for p in self.pipelines:
            family = self._family_of(p)
            if family is not None:
                i = self._families.index(family)
                source = f"{self.name}.family{i}.source"
            else:
                source = f"{self.name}.{p.name}.source"
                sink = f"{self.name}.{p.name}.sink"
                self._sink_q[id(p)].consumers.add(sink)
                self._recycle[id(p)].producers.add(sink)
                self._recycle[id(p)].consumers.add(source)
            producer = source
            for s in p.stages:
                queue = self._in_q[(id(p), id(s))]
                queue.producers.add(producer)
                queue.consumers.add(self._spawn_name(s))
                producer = self._spawn_name(s)
            self._sink_q[id(p)].producers.add(producer)

    # -- graceful teardown --------------------------------------------------------------

    def _stage_failed(self, stage: Stage, pipelines: Sequence[Pipeline],
                      exc: BaseException) -> None:
        """Poison ``pipelines`` after ``stage`` raised ``exc``.

        Runs in the failing stage's process.  Records the stage-level
        causal chain, conveys a caboose past the dead stage on every
        affected pipeline — so downstream stages drain, sinks send Stop,
        and sources wind down — and fires :attr:`on_pipeline_failure` for
        cross-node compensation.  Sibling pipelines keep running; the
        failure surfaces from :meth:`wait` as
        :class:`~repro.errors.PipelineFailed`.
        """
        for p in pipelines:
            self._failures.append(StageFailure(p.name, stage.name, exc))
            self._poisoned.add(id(p))
            self.observer.poisoned(p)
            self.out_queue(p, stage).put(Buffer.caboose(p, self.sanitizer))
        if self.on_pipeline_failure is not None:
            try:
                self.on_pipeline_failure(stage, list(pipelines), exc)
            except KernelShutdown:
                raise
            except BaseException:  # noqa: BLE001 - compensation is
                pass                # best-effort; the root cause is kept

    def _flush_poisoned_source(self, p: Pipeline) -> None:
        """Emit one caboose into a poisoned pipeline so stages upstream
        of the dead one (still blocked accepting) drain and exit.  Only
        fires when the source had not emitted its natural caboose yet."""
        if id(p) in self._poisoned and id(p) not in self._flushed:
            self._flushed.add(id(p))
            self._in_q[(id(p), id(p.stages[0]))].put(Buffer.caboose(p, self.sanitizer))

    # -- runner loops -------------------------------------------------------------------

    def _run_source(self, p: Pipeline) -> None:
        recycle = self._recycle[id(p)]
        first = self._in_q[(id(p), id(p.stages[0]))]
        emitted = 0
        while p.rounds is None or emitted < p.rounds:
            item = recycle.get()
            if isinstance(item, Stop):
                self._flush_poisoned_source(p)
                return
            item.clear()
            if self.sanitizer is not None:
                self.sanitizer.on_emit(p, item)
            item.round = emitted
            self.observer.emitted(p)
            first.put(item)
            emitted += 1
        first.put(Buffer.caboose(p, self.sanitizer))

    def _run_sink(self, p: Pipeline) -> None:
        sink_q = self._sink_q[id(p)]
        recycle = self._recycle[id(p)]
        while True:
            buf = sink_q.get()
            if buf.is_caboose:
                recycle.put(Stop(p))
                return
            if self.sanitizer is not None:
                self.sanitizer.on_recycle(p, buf)
            self.observer.recycled(p)
            recycle.put(buf)

    def _run_source_group(self, family: Family) -> None:
        recycle = family.recycle
        pending: dict[int, Pipeline] = {id(p): p for p in family.pipelines}
        emitted: dict[int, int] = {id(p): 0 for p in family.pipelines}
        for p in list(family.pipelines):
            if p.rounds == 0:
                self._in_q[(id(p), id(p.stages[0]))].put(Buffer.caboose(p, self.sanitizer))
                pending.pop(id(p))
        while pending:
            item = recycle.get()
            if isinstance(item, Stop):
                if id(item.pipeline) in pending:
                    self._flush_poisoned_source(item.pipeline)
                pending.pop(id(item.pipeline), None)
                continue
            p = item.pipeline
            pid = id(p)
            if pid not in pending:
                continue  # stale buffer of an already-finished pipeline
            item.clear()
            if self.sanitizer is not None:
                self.sanitizer.on_emit(p, item)
            item.round = emitted[pid]
            self.observer.emitted(p)
            first = self._in_q[(pid, id(p.stages[0]))]
            first.put(item)
            emitted[pid] += 1
            if p.rounds is not None and emitted[pid] == p.rounds:
                first.put(Buffer.caboose(p, self.sanitizer))
                pending.pop(pid)

    def _run_sink_group(self, family: Family) -> None:
        remaining = {id(p) for p in family.pipelines}
        while remaining:
            buf = family.sink_queue.get()
            if buf.is_caboose:
                family.recycle.put(Stop(buf.pipeline))
                remaining.discard(id(buf.pipeline))
            else:
                if self.sanitizer is not None:
                    self.sanitizer.on_recycle(buf.pipeline, buf)
                self.observer.recycled(buf.pipeline)
                family.recycle.put(buf)

    def _run_map_stage(self, stage: Stage, ctx: StageContext) -> None:
        self.observer.stage_started(stage)
        try:
            while True:
                buf = ctx.accept()
                if buf.is_caboose:
                    ctx.forward(buf)
                    return
                try:
                    out = stage.fn(ctx, buf)
                except KernelShutdown:
                    raise
                except BaseException as exc:  # noqa: BLE001 - poison, not
                    self._stage_failed(stage, ctx.pipelines, exc)  # abort
                    return
                if out is not None:
                    ctx.convey(out)
                elif self.sanitizer is not None:
                    self.sanitizer.on_drop(stage, buf)
        finally:
            self.observer.stage_finished(stage)

    def _run_full_stage(self, stage: Stage, ctx: StageContext) -> None:
        self.observer.stage_started(stage)
        try:
            try:
                stage.fn(ctx)
            except KernelShutdown:
                raise
            except BaseException as exc:  # noqa: BLE001 - poison, not abort
                self._stage_failed(stage, ctx.pipelines, exc)
        finally:
            self.observer.stage_finished(stage)

    def _run_virtual_group(self, group: VirtualGroup) -> None:
        live = {id(p) for p in group.pipelines}
        for _, s in group.members:
            self.observer.stage_started(s)
        try:
            while live:
                t0 = self.kernel.now()
                buf = group.shared_queue.get()
                wait = self.kernel.now() - t0
                pid = id(buf.pipeline)
                if pid not in live:
                    if self.sanitizer is not None:
                        self.sanitizer.on_straggler(buf)
                    continue  # buffer raced past this pipeline's shutdown
                stage = group.member_stage(pid)
                ctx = group.contexts[pid]
                if buf.is_caboose:
                    self.out_queue(buf.pipeline, stage).put(buf)
                    live.discard(pid)
                    continue
                if (pid, id(stage)) in self._stage_eos:
                    if self.sanitizer is not None:
                        self.sanitizer.on_straggler(buf)
                    continue  # member declared EOS itself; drop stragglers
                # shared-queue wait is attributed to the member whose
                # buffer ended it — the best available approximation
                self.observer.accepted(stage, wait)
                if self.sanitizer is not None:
                    self.sanitizer.on_accept(stage, buf.pipeline, buf)
                try:
                    out = stage.fn(ctx, buf)
                except KernelShutdown:
                    raise
                except BaseException as exc:  # noqa: BLE001 - poison only
                    self._stage_failed(stage, [buf.pipeline], exc)  # member
                    live.discard(pid)
                    continue
                if out is not None:
                    ctx.convey(out)
                elif self.sanitizer is not None:
                    self.sanitizer.on_drop(stage, buf)
                if (pid, id(stage)) in self._stage_eos:
                    live.discard(pid)
        finally:
            for _, s in group.members:
                self.observer.stage_finished(s)

    # -- execution ------------------------------------------------------------------------

    def lint(self, ignore: Optional[Iterable[str]] = None) -> list[Any]:
        """Run the static linter over this program's declared structure.

        Returns the findings (also stored on :attr:`lint_findings`).
        Called automatically from :meth:`start` unless linting is
        disabled; may also be called directly before starting.
        """
        from repro.check import linter as _linter
        merged = set(self._lint_ignore)
        if ignore:
            merged.update(ignore)
        report = _linter.lint_program(self, ignore=merged)
        self.lint_findings = list(report)
        if _linter.COLLECTOR is not None:
            _linter.COLLECTOR.append((self.name, list(report)))
        return self.lint_findings

    def start(self) -> list[Process]:
        """Assemble and spawn every FG thread; returns the processes.

        The static linter (:mod:`repro.check.linter`) runs first;
        error-severity findings raise :class:`~repro.errors.LintError`
        before any process is spawned.
        """
        if self._started:
            raise PipelineStructureError("program already started")
        self._started = True
        if self._lint_enabled:
            findings = self.lint()
            errors = [f for f in findings if f.is_error]
            if errors:
                raise LintError(findings)
        self._assemble()
        procs: list[Process] = []
        spawned_sources: set[int] = set()
        for p in self.pipelines:
            family = self._family_of(p)
            if family is None:
                procs.append(self.kernel.spawn(
                    self._run_source, p, name=f"{self.name}.{p.name}.source"))
                procs.append(self.kernel.spawn(
                    self._run_sink, p, name=f"{self.name}.{p.name}.sink"))
        for i, family in enumerate(self._families):
            procs.append(self.kernel.spawn(
                self._run_source_group, family,
                name=f"{self.name}.family{i}.source"))
            procs.append(self.kernel.spawn(
                self._run_sink_group, family,
                name=f"{self.name}.family{i}.sink"))
        for group in self._groups.values():
            procs.append(self.kernel.spawn(
                self._run_virtual_group, group,
                name=f"{self.name}.vgroup[{group.key}]"))
        for stage in self._unique_stages():
            if stage.virtual:
                continue
            ctx = self._contexts[id(stage)]
            runner = (self._run_map_stage if stage.style == "map"
                      else self._run_full_stage)
            procs.append(self.kernel.spawn(
                runner, stage, ctx, name=f"{self.name}.{stage.name}"))
        self._procs = procs
        return procs

    def wait(self) -> None:
        """Join every FG process (call from inside a kernel process).

        When stages failed, the surviving pipelines first run to
        completion; then stranded buffers are drained back to their
        pools and :class:`~repro.errors.PipelineFailed` is raised with
        the stage-level causal chain.
        """
        for proc in self._procs:
            proc.join()
        if self._failures:
            self._drain_poisoned()
            raise PipelineFailed(list(self._failures))
        if self.sanitizer is not None:
            # leak check only on clean runs: poisoned pipelines park
            # their buffers through _drain_poisoned instead
            self.sanitizer.check_teardown()

    def _drain_poisoned(self) -> None:
        """Return buffers stranded in poisoned pipelines' queues to their
        pools.  Runs after every FG process joined, so the queues are
        inert; shared (family/group) queues are drained once."""
        seen: set[int] = set()
        drained: dict[int, int] = {}
        for p in self.pipelines:
            if id(p) not in self._poisoned:
                continue
            queues = [self._in_q[(id(p), id(s))] for s in p.stages]
            queues.append(self._sink_q[id(p)])
            for q in queues:
                if id(q) in seen:
                    continue
                seen.add(id(q))
                while True:
                    ok, item = q.try_get()
                    if not ok:
                        break
                    if isinstance(item, Buffer) and not item.is_caboose:
                        owner = item.pipeline
                        self._recycle[id(owner)].put(item)
                        drained[id(owner)] = drained.get(id(owner), 0) + 1
        for p in self.pipelines:
            count = drained.get(id(p), 0)
            if count:
                self.observer.drained(p, count)

    def run(self) -> None:
        """``start()`` + ``wait()`` — the usual way to execute a program."""
        self.start()
        self.wait()

    # -- introspection -------------------------------------------------------------------------

    @property
    def thread_count(self) -> int:
        """Number of FG threads (processes) this program spawned —
        the quantity Figure 5(b)'s virtual stages reduce from Θ(k) to Θ(1)."""
        return len(self._procs)

    def stage_stats(self) -> dict[str, StageStats]:
        """Per-stage statistics, keyed by stage name."""
        return {s.name: s.stats for s in self._unique_stages()}

    @property
    def total_buffer_bytes(self) -> int:
        """Memory held by every pipeline's buffer pool (aux included) —
        the quantity the paper promises "fits within the physical RAM"
        because pools are small and fixed."""
        total = 0
        for p in self.pipelines:
            per_buffer = p.buffer_bytes * (2 if p.aux_buffers else 1)
            total += p.nbuffers * per_buffer
        return total

    def report(self) -> str:
        """Text summary of per-stage activity after a run."""
        lines = [f"FG program {self.name!r}: "
                 f"{len(self.pipelines)} pipeline(s), "
                 f"{self.thread_count} thread(s), "
                 f"{self.total_buffer_bytes} buffer byte(s)"]
        header = (f"{'stage':24s} {'accepts':>8s} {'conveys':>8s} "
                  f"{'wait(s)':>10s} {'busy(s)':>10s}")
        lines.append(header)
        lines.append("-" * len(header))
        for name, stats in self.stage_stats().items():
            lines.append(f"{name:24s} {stats.accepts:8d} "
                         f"{stats.conveys:8d} {stats.accept_wait:10.4f} "
                         f"{stats.busy:10.4f}")
        return "\n".join(lines)
