"""Stage contexts: how stage functions accept, convey, and reach services.

A :class:`StageContext` is handed to every stage function.  It knows which
pipelines the stage belongs to, resolves the queues materialized by the
program, reports per-stage activity through the program's
:class:`~repro.obs.observer.ProgramObserver`, and exposes the program
environment (``node``, ``comm``, ...) that stage functions use for disk
I/O, communication, and compute charging.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.core.buffer import Buffer
from repro.core.pipeline import Pipeline
from repro.core.stage import Stage
from repro.errors import StageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram

__all__ = ["StageContext"]


class StageContext:
    """Runtime interface between one stage and its program."""

    def __init__(self, program: "FGProgram", stage: Stage,
                 pipelines: list[Pipeline]) -> None:
        self.program = program
        self.stage = stage
        #: pipelines containing this stage, in registration order
        self.pipelines = pipelines
        self.kernel = program.kernel
        #: replica index when this context belongs to one copy of a
        #: replicated stage (None for ordinary stages); the copies are
        #: interchangeable, so stage functions should only need this
        #: for diagnostics
        self.replica: Optional[int] = None

    # -- environment -------------------------------------------------------

    @property
    def env(self) -> dict[str, Any]:
        """The program environment (shared services such as node, comm)."""
        return self.program.env

    @property
    def node(self):
        """Shortcut for ``env['node']`` (the cluster node, if provided)."""
        return self.program.env.get("node")

    @property
    def comm(self):
        """Shortcut for ``env['comm']`` (the communicator, if provided)."""
        return self.program.env.get("comm")

    # -- pipeline resolution ---------------------------------------------------

    def _resolve(self, pipeline: Optional[Pipeline]) -> Pipeline:
        if pipeline is not None:
            if not any(p is pipeline for p in self.pipelines):
                raise StageError(
                    f"stage {self.stage.name!r} does not belong to pipeline "
                    f"{pipeline.name!r}")
            return pipeline
        if len(self.pipelines) == 1:
            return self.pipelines[0]
        raise StageError(
            f"stage {self.stage.name!r} belongs to "
            f"{len(self.pipelines)} pipelines; accept/convey_caboose must "
            "name one (the paper: a common stage 'must specify which "
            "pipeline to accept from')")

    # -- accept / convey ----------------------------------------------------------

    def accept(self, pipeline: Optional[Pipeline] = None) -> Buffer:
        """Accept the next buffer from this stage's predecessor.

        For a stage in several (intersecting) pipelines, ``pipeline`` picks
        which predecessor queue to accept from.  Blocks until a buffer (or
        the caboose) is available.
        """
        p = self._resolve(pipeline)
        queue = self.program.in_queue(p, self.stage)
        t0 = self.kernel.now()
        buf = queue.get()
        self.program.observer.accepted(self.stage,
                                       self.kernel.now() - t0)
        sanitizer = self.program.sanitizer
        if sanitizer is not None:
            sanitizer.on_accept(self.stage, p, buf)
        race = self.kernel.race
        if race is not None and not buf.is_caboose:
            # the stage fn never runs for the caboose — replaying its
            # effect set for one would fabricate an end-of-stream race
            race.on_stage_access(self.stage)
        return buf

    def convey(self, buffer: Buffer) -> None:
        """Convey ``buffer`` to this stage's successor in the buffer's
        own pipeline (buffers never jump pipelines)."""
        p = buffer.pipeline
        sanitizer = self.program.sanitizer
        if not any(q is p for q in self.pipelines):
            if sanitizer is not None:
                sanitizer.on_foreign_convey(self.stage, buffer)
            raise StageError(
                f"stage {self.stage.name!r} cannot convey a buffer tied to "
                f"pipeline {p.name!r}, which it does not belong to")
        if sanitizer is not None:
            sanitizer.on_convey(self.stage, buffer)
        self.program.out_queue(p, self.stage).put(buffer)
        self.program.observer.conveyed(self.stage, buffer)

    def convey_caboose(self, pipeline: Optional[Pipeline] = None) -> None:
        """Declare end-of-stream on a pipeline whose length was unknown.

        Conveys a caboose to the successor; the sink will instruct the
        source to stop emitting.  Intended for the *first* stage of a
        ``rounds=None`` pipeline (e.g. dsort's receive stage) — stages
        upstream of the caller would otherwise never terminate.
        """
        p = self._resolve(pipeline)
        self.program.mark_stage_eos(p, self.stage)
        self.program.out_queue(p, self.stage).put(Buffer.caboose(p, self.program.sanitizer))
        self.program.observer.conveyed(self.stage)

    def forward(self, caboose: Buffer) -> None:
        """Pass a received caboose to the successor (map loops use this)."""
        if not caboose.is_caboose:
            raise StageError("forward() is for cabooses; use convey()")
        self.program.out_queue(caboose.pipeline, self.stage).put(caboose)
