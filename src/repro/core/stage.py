"""FG stages: the programmer-defined units of pipeline work.

Two authoring styles, both plain synchronous Python (the paper: "the
programmer writes a straightforward function containing only synchronous
calls"):

* **map style** (:meth:`Stage.map`) — a function ``fn(ctx, buffer)`` called
  once per data buffer; FG runs the accept/convey loop, forwards the
  caboose, and exits.  This covers read/sort/permute/write-type stages and
  is the only style allowed for *virtual* stages.

* **full-control style** (:meth:`Stage.source_driven`) — a function
  ``fn(ctx)`` that owns its accept/convey loop.  Required for stages with
  irregular consumption patterns: unbalanced communication stages and the
  merge stage of intersecting pipelines.

A single :class:`Stage` object placed in several pipelines makes those
pipelines **intersect** at it: FG creates one thread for the stage, and the
stage must name the pipeline it accepts from (paper, Section IV).

A stage constructed with ``virtual=True`` joins the **virtual group** named
by ``virtual_group`` (default: the stage's name): all stages of a group
share one thread and one input queue, and FG automatically virtualizes the
sources and sinks of their pipelines.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

from repro.errors import PipelineStructureError

__all__ = ["Stage", "StageStats"]


@dataclasses.dataclass
class StageStats:
    """Per-stage timing and throughput counters (kernel seconds).

    Updated exclusively through the program's
    :class:`~repro.obs.observer.ProgramObserver` — the single event path
    that also mirrors every stage event into the kernel's metrics registry
    when one is enabled (``kernel.enable_metrics()``).
    """

    accepts: int = 0
    conveys: int = 0
    accept_wait: float = 0.0   #: time spent blocked waiting for buffers
    started_at: float = 0.0
    finished_at: float = 0.0
    #: copies of this stage that ran (replicated stages aggregate their
    #: accepts/conveys/waits across all copies into this one record)
    replicas: int = 1

    @property
    def span(self) -> float:
        """Wall-span of the stage from start to finish."""
        return max(0.0, self.finished_at - self.started_at)

    @property
    def busy(self) -> float:
        """Span minus accept-wait: an upper bound on useful work time."""
        return max(0.0, self.span - self.accept_wait)


class Stage:
    """One pipeline stage.  Construct via :meth:`map` or :meth:`source_driven`."""

    def __init__(self, name: str, fn: Callable[..., Any], *, style: str,
                 virtual: bool = False,
                 virtual_group: Optional[str] = None) -> None:
        if style not in ("map", "full"):
            raise PipelineStructureError(f"unknown stage style {style!r}")
        if virtual and style != "map":
            raise PipelineStructureError(
                f"virtual stage {name!r} must be map-style (shared-thread "
                "dispatch calls the function once per buffer)")
        self.name = name
        self.fn = fn
        self.style = style
        self.virtual = virtual
        self.virtual_group = (virtual_group if virtual_group is not None
                              else name) if virtual else None
        #: original stage names when this stage was produced by planner
        #: fusion (repro.plan.fuse); empty for hand-written stages.  Part
        #: of the structural fingerprint: a fused program must not be
        #: provenance-identical to the unfused one.
        self.fused_from: tuple[str, ...] = ()
        self.stats = StageStats()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def map(cls, name: str, fn: Callable[..., Any], *, virtual: bool = False,
            virtual_group: Optional[str] = None) -> "Stage":
        """A per-buffer stage: ``fn(ctx, buffer) -> buffer | None``.

        FG accepts each buffer, calls ``fn``, and conveys the returned
        buffer (return ``None`` to drop it — e.g. a filter).  The caboose
        is forwarded automatically and ends the stage.
        """
        return cls(name, fn, style="map", virtual=virtual,
                   virtual_group=virtual_group)

    @classmethod
    def source_driven(cls, name: str, fn: Callable[..., Any]) -> "Stage":
        """A full-control stage: ``fn(ctx)`` owns its accept/convey loop."""
        return cls(name, fn, style="full")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "virtual " if self.virtual else ""
        return f"<{kind}Stage {self.name} ({self.style})>"
