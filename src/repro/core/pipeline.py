"""FG pipelines: an ordered chain of stages plus a buffer pool.

A :class:`Pipeline` is pure structure — stages, pool geometry, and the
round count.  All queues, buffers, and threads are materialized by
:class:`~repro.core.program.FGProgram` at assembly time, so the same
pipeline description could be assembled repeatedly (one per pass).

``rounds`` semantics:

* ``rounds=N`` — the source emits exactly N buffers and then the caboose.
  Used when the number of blocks is known in advance (every csort pass,
  dsort's read pipelines).
* ``rounds=None`` — the source emits recycled buffers indefinitely and
  some stage declares end-of-stream with
  :meth:`~repro.core.context.StageContext.convey_caboose` (dsort's receive
  pipelines, whose length depends on what other nodes send).  The sink
  then tells the source to stop.

``replicas`` declares **replicated stages** (the ``repro.tune``
mechanism): mapping a stage name to N >= 1 makes the program run N
interchangeable copies of that stage, all consuming from the shared
inbound channel, with a sequencer process restoring buffer order
downstream.  Declaring a stage with ``replicas={'sort': 1}`` wires the
sequencer without extra copies, which lets a
:class:`~repro.tune.controller.TuneController` add replicas at runtime.
Replicated stages must be map-style, non-virtual, single-pipeline, and
stateless across rounds (lint rule FG109 checks the last point).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.stage import Stage
from repro.errors import PipelineStructureError

__all__ = ["Pipeline"]


class Pipeline:
    """Description of one pipeline (no runtime state)."""

    def __init__(self, name: str, stages: Sequence[Stage], *,
                 nbuffers: int, buffer_bytes: int,
                 rounds: Optional[int] = None,
                 aux_buffers: bool = False,
                 channel_capacity: Optional[int] = None,
                 replicas: Optional[Mapping[str, int]] = None,
                 role: Optional[str] = None) -> None:
        if not stages:
            raise PipelineStructureError(
                f"pipeline {name!r} needs at least one stage")
        if nbuffers < 1:
            raise PipelineStructureError(
                f"pipeline {name!r}: nbuffers must be >= 1, got {nbuffers}")
        if buffer_bytes < 1:
            raise PipelineStructureError(
                f"pipeline {name!r}: buffer_bytes must be >= 1, "
                f"got {buffer_bytes}")
        if rounds is not None and rounds < 0:
            raise PipelineStructureError(
                f"pipeline {name!r}: rounds must be None or >= 0, "
                f"got {rounds}")
        if channel_capacity is not None and channel_capacity < 0:
            raise PipelineStructureError(
                f"pipeline {name!r}: channel_capacity must be None or "
                f">= 0, got {channel_capacity}")
        if channel_capacity == 0 and rounds is None:
            # capacity-0 channels are pure rendezvous: the source's first
            # put blocks until the first stage gets, but a rounds=None
            # source also needs the recycle round-trip to learn about
            # EOS — the two block on each other before any data flows.
            raise PipelineStructureError(
                f"pipeline {name!r}: channel_capacity=0 (rendezvous) "
                "cannot be combined with rounds=None; the unknown-length "
                "recycling protocol deadlocks before the first buffer is "
                "delivered.  Give the channels capacity >= 1 or declare "
                "rounds")
        seen = set()
        for stage in stages:
            if id(stage) in seen:
                raise PipelineStructureError(
                    f"stage {stage.name!r} appears twice in pipeline "
                    f"{name!r}")
            seen.add(id(stage))
        by_name = {s.name: s for s in stages}
        self.replicas: dict[str, int] = {}
        for sname, count in (replicas or {}).items():
            stage = by_name.get(sname)
            if stage is None:
                raise PipelineStructureError(
                    f"pipeline {name!r}: replicas names unknown stage "
                    f"{sname!r}")
            if count < 1:
                raise PipelineStructureError(
                    f"pipeline {name!r}: replicas for stage {sname!r} "
                    f"must be >= 1, got {count}")
            if stage.style != "map":
                raise PipelineStructureError(
                    f"pipeline {name!r}: replicated stage {sname!r} must "
                    "be map-style (the replica loop owns accept/convey)")
            if stage.virtual:
                raise PipelineStructureError(
                    f"pipeline {name!r}: virtual stage {sname!r} cannot "
                    "be replicated (it already shares a thread with its "
                    "group)")
            self.replicas[sname] = count
        self.name = name
        self.stages: list[Stage] = list(stages)
        self.nbuffers = nbuffers
        self.buffer_bytes = buffer_bytes
        self.rounds = rounds
        self.aux_buffers = aux_buffers
        #: bound each inter-stage queue at assembly time (None keeps the
        #: historical unbounded queues).  Bounding trades latency overlap
        #: for memory determinism; the FG108 lint rule proves when a
        #: bound combined with intersecting stages is deadlock-prone.
        self.channel_capacity = channel_capacity
        #: why this pipeline exists, when it is not ordinary program
        #: structure: the recovery manager marks speculative backup
        #: chains "backup" and re-assigned partition chains "adopted",
        #: so structural analyses (FG108 parking, provenance
        #: fingerprints) can tell recovery machinery from the program
        #: proper.  None for ordinary pipelines.
        self.role = role

    def replica_count(self, stage: Stage) -> int:
        """Declared replica count for ``stage`` (1 when not replicated)."""
        return self.replicas.get(stage.name, 1)

    def is_replicated(self, stage: Stage) -> bool:
        """True when ``stage`` was declared in ``replicas`` (even with
        count 1, which wires the sequencer for runtime growth)."""
        return stage.name in self.replicas

    def position_of(self, stage: Stage) -> int:
        """Index of ``stage`` within this pipeline (0-based)."""
        for i, s in enumerate(self.stages):
            if s is stage:
                return i
        raise PipelineStructureError(
            f"stage {stage.name!r} is not in pipeline {self.name!r}")

    def __contains__(self, stage: Stage) -> bool:
        return any(s is stage for s in self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        chain = " -> ".join(s.name for s in self.stages)
        return (f"<Pipeline {self.name}: source -> {chain} -> sink, "
                f"{self.nbuffers}x{self.buffer_bytes}B, "
                f"rounds={self.rounds}>")
