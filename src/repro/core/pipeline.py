"""FG pipelines: an ordered chain of stages plus a buffer pool.

A :class:`Pipeline` is pure structure — stages, pool geometry, and the
round count.  All queues, buffers, and threads are materialized by
:class:`~repro.core.program.FGProgram` at assembly time, so the same
pipeline description could be assembled repeatedly (one per pass).

``rounds`` semantics:

* ``rounds=N`` — the source emits exactly N buffers and then the caboose.
  Used when the number of blocks is known in advance (every csort pass,
  dsort's read pipelines).
* ``rounds=None`` — the source emits recycled buffers indefinitely and
  some stage declares end-of-stream with
  :meth:`~repro.core.context.StageContext.convey_caboose` (dsort's receive
  pipelines, whose length depends on what other nodes send).  The sink
  then tells the source to stop.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.stage import Stage
from repro.errors import PipelineStructureError

__all__ = ["Pipeline"]


class Pipeline:
    """Description of one pipeline (no runtime state)."""

    def __init__(self, name: str, stages: Sequence[Stage], *,
                 nbuffers: int, buffer_bytes: int,
                 rounds: Optional[int] = None,
                 aux_buffers: bool = False,
                 channel_capacity: Optional[int] = None) -> None:
        if not stages:
            raise PipelineStructureError(
                f"pipeline {name!r} needs at least one stage")
        if nbuffers < 1:
            raise PipelineStructureError(
                f"pipeline {name!r}: nbuffers must be >= 1, got {nbuffers}")
        if buffer_bytes < 1:
            raise PipelineStructureError(
                f"pipeline {name!r}: buffer_bytes must be >= 1, "
                f"got {buffer_bytes}")
        if rounds is not None and rounds < 0:
            raise PipelineStructureError(
                f"pipeline {name!r}: rounds must be None or >= 0, "
                f"got {rounds}")
        if channel_capacity is not None and channel_capacity < 0:
            raise PipelineStructureError(
                f"pipeline {name!r}: channel_capacity must be None or "
                f">= 0, got {channel_capacity}")
        seen = set()
        for stage in stages:
            if id(stage) in seen:
                raise PipelineStructureError(
                    f"stage {stage.name!r} appears twice in pipeline "
                    f"{name!r}")
            seen.add(id(stage))
        self.name = name
        self.stages: list[Stage] = list(stages)
        self.nbuffers = nbuffers
        self.buffer_bytes = buffer_bytes
        self.rounds = rounds
        self.aux_buffers = aux_buffers
        #: bound each inter-stage queue at assembly time (None keeps the
        #: historical unbounded queues).  Bounding trades latency overlap
        #: for memory determinism; the FG108 lint rule proves when a
        #: bound combined with intersecting stages is deadlock-prone.
        self.channel_capacity = channel_capacity

    def position_of(self, stage: Stage) -> int:
        """Index of ``stage`` within this pipeline (0-based)."""
        for i, s in enumerate(self.stages):
            if s is stage:
                return i
        raise PipelineStructureError(
            f"stage {stage.name!r} is not in pipeline {self.name!r}")

    def __contains__(self, stage: Stage) -> bool:
        return any(s is stage for s in self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        chain = " -> ".join(s.name for s in self.stages)
        return (f"<Pipeline {self.name}: source -> {chain} -> sink, "
                f"{self.nbuffers}x{self.buffer_bytes}B, "
                f"rounds={self.rounds}>")
