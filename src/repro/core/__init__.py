"""FG: the pipeline framework (the paper's core contribution).

FG structures a program as one or more **pipelines** per node.  A pipeline
is a linear sequence of **stages**; FG adds a **source** stage at the front
and a **sink** stage at the end, places a buffer queue between each pair of
consecutive stages, and runs every stage in its own thread (kernel
process).  Fixed-size **buffers** travel from the source through the stages
to the sink, which recycles them back to the source, so a small, fixed pool
of buffers supports an unbounded number of rounds.

Extensions reproduced from the paper:

* **multiple disjoint pipelines** per node (Section IV) — e.g. a send
  pipeline and a receive pipeline progressing at different rates;
* **multiple intersecting pipelines** (Section IV) — a stage object placed
  in several pipelines runs in a single thread and accepts buffers from a
  chosen pipeline (the merge stage of dsort's pass 2);
* **virtual stages / virtual pipelines** (Section IV) — identical stages
  across many pipelines share one thread and one input queue, and FG
  automatically virtualizes their sources and sinks, so hundreds of sorted
  runs do not need hundreds of threads.

Public API: :class:`FGProgram`, :class:`Pipeline`, :class:`Stage`,
:class:`Buffer`, :class:`StageContext`.
"""

from repro.core.buffer import Buffer
from repro.core.stage import Stage
from repro.core.pipeline import Pipeline
from repro.core.context import StageContext
from repro.core.program import FGProgram
from repro.core.forkjoin import ForkJoin, add_fork_join

__all__ = ["Buffer", "Stage", "Pipeline", "StageContext", "FGProgram",
           "ForkJoin", "add_fork_join"]
