"""Fork-join pipelines, built from FG's intersecting-pipeline primitive.

FG's repertoire includes fork-join structures (the paper's related-work
section notes that <stxxl>'s pipelining "allows constructs that resemble
FG's fork-join and intersecting pipelines").  :func:`add_fork_join` wires
one up from the primitives this library already has:

* a **trunk** pipeline carries buffers through the ``pre`` stages to a
  framework-provided **fork** stage;
* the fork routes each buffer's contents to one of several **branch**
  pipelines (chosen by a user ``route`` function), copying into a buffer
  of that branch — buffers never jump pipelines;
* each branch processes its share through its own stages at its own pace
  (that is the point: an expensive branch does not stall the others);
* a framework-provided **join** stage — where all branch pipelines
  intersect the **post** pipeline — reassembles the original round order
  and feeds the ``post`` stages.

Round-order restoration uses a control channel: the fork records its
routing decisions in emission order; the join replays them, accepting
from exactly the branch that holds the next round.  This keeps the join
deterministic and free of speculative accepts that could block on an
idle branch.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.core.buffer import Buffer
from repro.core.pipeline import Pipeline
from repro.core.program import FGProgram
from repro.core.stage import Stage
from repro.errors import KernelShutdown, PipelineStructureError, StageError
from repro.sim.channel import Channel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import StageContext

__all__ = ["ForkJoin", "add_fork_join"]

_EOS = object()


@dataclasses.dataclass
class ForkJoin:
    """Handle to an assembled fork-join structure (for inspection)."""

    trunk: Pipeline
    branches: dict[str, Pipeline]
    post: Pipeline
    fork_stage: Stage
    join_stage: Stage


def _copy_buffer(dst: Buffer, src: Buffer, ctx: "StageContext") -> None:
    """Copy payload + tags + round between pipelines, charging memcpy if
    a node service is attached.  The round travels with the data so the
    post pipeline sees the trunk's original emission order (``clear()``
    resets the destination's own round to -1 first)."""
    dst.clear()
    dst.data[:src.size] = src.data[:src.size]
    dst.size = src.size
    dst.round = src.round
    dst.tags.update(src.tags)
    node = ctx.node
    if node is not None:
        node.compute_copy(src.size)


def add_fork_join(prog: FGProgram, name: str, *,
                  pre: Sequence[Stage],
                  branches: dict[str, Sequence[Stage]],
                  post: Sequence[Stage],
                  route: Callable[[Buffer], str],
                  nbuffers: int, buffer_bytes: int,
                  rounds: Optional[int],
                  branch_nbuffers: Optional[int] = None,
                  branch_buffer_bytes: Optional[int] = None) -> ForkJoin:
    """Assemble a fork-join into ``prog``.

    ``route(buffer)`` names the branch each trunk buffer's data takes.
    ``rounds`` follows pipeline semantics (None = some ``pre`` stage
    declares EOS).  Branch pipelines may use their own pool geometry.
    """
    if not branches:
        raise PipelineStructureError(f"fork-join {name!r} needs branches")
    if not pre:
        raise PipelineStructureError(
            f"fork-join {name!r} needs at least one pre stage (the trunk "
            "must produce data to route)")
    branch_nbuffers = branch_nbuffers if branch_nbuffers is not None \
        else nbuffers
    branch_buffer_bytes = branch_buffer_bytes \
        if branch_buffer_bytes is not None else buffer_bytes

    control: Channel = Channel(prog.kernel,
                               name=f"{name}.fork-order")
    fork_stage = Stage.source_driven(f"{name}.fork", None)
    join_stage = Stage.source_driven(f"{name}.join", None)

    trunk = prog.add_pipeline(
        f"{name}.trunk", list(pre) + [fork_stage],
        nbuffers=nbuffers, buffer_bytes=buffer_bytes, rounds=rounds)

    branch_pipelines: dict[str, Pipeline] = {}
    for key, stages in branches.items():
        branch_pipelines[key] = prog.add_pipeline(
            f"{name}.branch[{key}]",
            [fork_stage] + list(stages) + [join_stage],
            nbuffers=branch_nbuffers,
            buffer_bytes=branch_buffer_bytes, rounds=None)

    post_pipeline = prog.add_pipeline(
        f"{name}.post", [join_stage] + list(post),
        nbuffers=nbuffers, buffer_bytes=buffer_bytes, rounds=None)

    def fork(ctx):
        # The control channel is out-of-band plumbing the generic pipeline
        # teardown knows nothing about, so a dying fork must close it
        # itself or the join would wait on it forever.
        try:
            _fork_loop(ctx)
        except KernelShutdown:
            raise
        except BaseException:
            control.put(_EOS)
            raise

    def _fork_loop(ctx):
        while True:
            buf = ctx.accept(trunk)
            if buf.is_caboose:
                for key, pipeline in branch_pipelines.items():
                    ctx.convey_caboose(pipeline)
                control.put(_EOS)
                ctx.forward(buf)
                return
            key = route(buf)
            if key not in branch_pipelines:
                raise StageError(
                    f"fork-join {name!r}: route() returned unknown "
                    f"branch {key!r}; known: {sorted(branch_pipelines)}")
            branch_buf = ctx.accept(branch_pipelines[key])
            if branch_buf.is_caboose:
                raise StageError(
                    f"fork-join {name!r}: branch {key!r} pipeline failed "
                    "underneath the fork")
            _copy_buffer(branch_buf, buf, ctx)
            control.put(key)
            ctx.convey(branch_buf)
            ctx.convey(buf)  # trunk buffer recycles via the trunk sink

    def join(ctx):
        pending_cabooses = dict(branch_pipelines)
        while True:
            key = control.get()
            if key is _EOS:
                break
            branch_buf = ctx.accept(branch_pipelines[key])
            if branch_buf.is_caboose:
                raise StageError(
                    f"fork-join {name!r}: branch {key!r} ended before "
                    "delivering its routed buffer")
            out = ctx.accept(post_pipeline)
            if out.is_caboose:
                raise StageError(
                    f"fork-join {name!r}: post pipeline failed underneath "
                    "the join")
            _copy_buffer(out, branch_buf, ctx)
            ctx.convey(branch_buf)  # home to its branch sink
            ctx.convey(out)
        # drain the branch cabooses so their pipelines shut down
        for key, pipeline in pending_cabooses.items():
            caboose = ctx.accept(pipeline)
            if not caboose.is_caboose:
                raise StageError(
                    f"fork-join {name!r}: branch {key!r} produced an "
                    "unrouted buffer")
            ctx.forward(caboose)
        ctx.convey_caboose(post_pipeline)

    fork_stage.fn = fork
    join_stage.fn = join
    return ForkJoin(trunk=trunk, branches=branch_pipelines,
                    post=post_pipeline, fork_stage=fork_stage,
                    join_stage=join_stage)
