"""Structures for virtual stages, virtual pipelines, and pipeline families.

From the paper (Section IV): FG creates one thread per stage, including
sources and sinks, so k vertical pipelines would cost Θ(k) threads — and
"most current systems cannot handle hundreds of threads".  The fix:

* identical stages across pipelines may be designated **virtual**; FG
  creates one thread for the whole group and one shared queue feeding it;
* FG then *automatically* virtualizes the sources and sinks of the
  affected pipelines.

Here, a :class:`VirtualGroup` is the set of same-named virtual stages (one
per pipeline) sharing a thread and an input queue, and a :class:`Family`
is a connected component of pipelines linked by virtual groups: each
family gets exactly one source thread, one sink thread, one shared sink
queue, and one shared recycle channel — so k virtual pipelines cost O(1)
threads regardless of k.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.core.pipeline import Pipeline
from repro.core.stage import Stage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import StageContext
    from repro.sim.channel import Channel

__all__ = ["VirtualGroup", "Family", "Stop"]


class Stop:
    """Recycle-channel token: sink tells source that a pipeline finished."""

    __slots__ = ("pipeline",)

    def __init__(self, pipeline: Pipeline) -> None:
        self.pipeline = pipeline

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stop {self.pipeline.name}>"


@dataclasses.dataclass
class VirtualGroup:
    """All virtual stages sharing one group key (one member per pipeline)."""

    key: str
    #: (pipeline, stage) pairs in registration order
    members: list[tuple[Pipeline, Stage]] = dataclasses.field(
        default_factory=list)
    shared_queue: Optional["Channel"] = None
    #: per-member contexts, keyed by id(pipeline)
    contexts: dict[int, "StageContext"] = dataclasses.field(
        default_factory=dict)

    @property
    def pipelines(self) -> list[Pipeline]:
        return [p for p, _ in self.members]

    def member_stage(self, pipeline_id: int) -> Stage:
        for p, s in self.members:
            if id(p) == pipeline_id:
                return s
        raise KeyError(pipeline_id)


@dataclasses.dataclass
class Family:
    """A connected set of pipelines sharing virtualized plumbing."""

    pipelines: list[Pipeline] = dataclasses.field(default_factory=list)
    sink_queue: Optional["Channel"] = None
    recycle: Optional["Channel"] = None
