"""FG buffers: the fixed-size blocks that travel through pipelines.

A buffer corresponds to one block of data transfer (disk block, message
block), so a pipeline's buffer size typically equals its I/O block size
(paper, Section II).  Buffers are allocated once per pipeline into a fixed
pool and recycled from sink to source; they are **tied to their pipeline**
and may never be conveyed along another one ("buffers cannot jump from one
pipeline to another", Section IV).

The **caboose** is a special marker buffer that signals end-of-stream: it
is conveyed after the last data buffer, travels the pipeline in order, and
tells each stage (and finally the sink) that the pipeline is complete.

When the owning program runs with FGSan enabled
(:mod:`repro.check.sanitizer`), every access to :attr:`Buffer.data`,
:meth:`Buffer.view`, and :meth:`Buffer.put` is ownership-checked, so a
stage touching a buffer it already conveyed fails at the exact offending
line instead of corrupting a block downstream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.errors import StageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.check.sanitizer import Sanitizer
    from repro.core.pipeline import Pipeline

__all__ = ["Buffer"]


class Buffer:
    """One block-sized buffer tied to a pipeline.

    Attributes:
        data: the backing byte array (``capacity`` bytes, dtype uint8);
            ``None`` for cabooses.
        size: number of valid bytes currently in the buffer; stages set it
            when they fill the buffer.
        round: emission index assigned by the source (0, 1, 2, ...);
            ``-1`` while pooled (``clear()`` resets it).
        tags: free-form per-buffer metadata for stage-to-stage signalling
            (e.g. which column of the matrix this block holds).
        aux: optional auxiliary scratch array of equal capacity — the
            "auxiliary buffer" feature the paper's permute stage uses so
            permutations need not be in place.
    """

    __slots__ = ("pipeline", "index", "_data", "aux", "size", "round",
                 "tags", "is_caboose", "_san")

    def __init__(self, pipeline: "Pipeline", index: int, capacity: int,
                 with_aux: bool = False) -> None:
        self.pipeline = pipeline
        self.index = index
        self._data: Optional[np.ndarray] = np.zeros(capacity, dtype=np.uint8)
        self.aux: Optional[np.ndarray] = (
            np.zeros(capacity, dtype=np.uint8) if with_aux else None)
        self.size = 0
        self.round = -1
        self.tags: dict[str, Any] = {}
        self.is_caboose = False
        #: the program's FGSan tracker when sanitizing, else None
        self._san: Optional["Sanitizer"] = None

    @classmethod
    def caboose(cls, pipeline: "Pipeline",
                san: Optional["Sanitizer"] = None) -> "Buffer":
        """Create the end-of-stream marker for ``pipeline``.

        ``san`` attaches the program's FGSan tracker so a stage writing
        to the marker is reported as a ``caboose_write`` violation."""
        buf = cls.__new__(cls)
        buf.pipeline = pipeline
        buf.index = -1
        buf._data = None
        buf.aux = None
        buf.size = 0
        buf.round = -1
        buf.tags = {}
        buf.is_caboose = True
        buf._san = san
        return buf

    # -- typed access helpers -------------------------------------------------

    @property
    def data(self) -> Optional[np.ndarray]:
        """The backing byte array (ownership-checked under FGSan)."""
        if self._san is not None:
            self._san.on_access(self, "data")
        return self._data

    @property
    def capacity(self) -> int:
        """Backing capacity in bytes (0 for cabooses)."""
        return 0 if self._data is None else len(self._data)

    @property
    def fill_fraction(self) -> float:
        """Valid bytes over capacity (0.0 for cabooses).

        Observability hook: since a buffer corresponds to one block of
        data transfer, persistently under-filled buffers mean wasted I/O
        and wire capacity; the program observer records the distribution
        of fill fractions at each convey.
        """
        capacity = self.capacity
        return self.size / capacity if capacity else 0.0

    def view(self, dtype: Any) -> np.ndarray:
        """View the *valid* bytes (``size``) as an array of ``dtype``.

        The valid byte count must be a multiple of the dtype's item size.
        The view aliases the buffer — mutations write through.
        """
        if self._san is not None:
            self._san.on_access(self, "view")
        self._check_data("view")
        assert self._data is not None
        itemsize = np.dtype(dtype).itemsize
        if self.size % itemsize != 0:
            raise StageError(
                f"buffer size {self.size} is not a multiple of "
                f"{np.dtype(dtype)} itemsize {itemsize}")
        return self._data[:self.size].view(dtype)

    def put(self, array: np.ndarray) -> None:
        """Copy ``array``'s raw bytes into the buffer and set ``size``."""
        if self._san is not None:
            self._san.on_access(self, "put")
        self._check_data("put")
        assert self._data is not None
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        if len(raw) > self.capacity:
            raise StageError(
                f"array of {len(raw)} bytes exceeds buffer capacity "
                f"{self.capacity}")
        self._data[:len(raw)] = raw
        self.size = len(raw)

    def clear(self) -> None:
        """Reset valid size, round, and metadata (bytes are left as-is).

        ``round`` returns to ``-1`` so a recycled buffer cannot carry a
        misleading round from its previous trip; the source restamps it
        on the next emission.
        """
        self.size = 0
        self.round = -1
        self.tags.clear()

    def _check_data(self, op: str) -> None:
        if self._data is None:
            raise StageError(f"cannot {op} on a caboose buffer")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_caboose:
            return f"<Caboose of {self.pipeline.name}>"
        return (f"<Buffer {self.pipeline.name}#{self.index} "
                f"round={self.round} size={self.size}/{self.capacity}>")
