"""FG buffers: the fixed-size blocks that travel through pipelines.

A buffer corresponds to one block of data transfer (disk block, message
block), so a pipeline's buffer size typically equals its I/O block size
(paper, Section II).  Buffers are allocated once per pipeline into a fixed
pool and recycled from sink to source; they are **tied to their pipeline**
and may never be conveyed along another one ("buffers cannot jump from one
pipeline to another", Section IV).

The **caboose** is a special marker buffer that signals end-of-stream: it
is conveyed after the last data buffer, travels the pipeline in order, and
tells each stage (and finally the sink) that the pipeline is complete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.errors import StageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.pipeline import Pipeline

__all__ = ["Buffer"]


class Buffer:
    """One block-sized buffer tied to a pipeline.

    Attributes:
        data: the backing byte array (``capacity`` bytes, dtype uint8);
            ``None`` for cabooses.
        size: number of valid bytes currently in the buffer; stages set it
            when they fill the buffer.
        round: emission index assigned by the source (0, 1, 2, ...).
        tags: free-form per-buffer metadata for stage-to-stage signalling
            (e.g. which column of the matrix this block holds).
        aux: optional auxiliary scratch array of equal capacity — the
            "auxiliary buffer" feature the paper's permute stage uses so
            permutations need not be in place.
    """

    __slots__ = ("pipeline", "index", "data", "aux", "size", "round",
                 "tags", "is_caboose")

    def __init__(self, pipeline: "Pipeline", index: int, capacity: int,
                 with_aux: bool = False):
        self.pipeline = pipeline
        self.index = index
        self.data: Optional[np.ndarray] = np.zeros(capacity, dtype=np.uint8)
        self.aux: Optional[np.ndarray] = (
            np.zeros(capacity, dtype=np.uint8) if with_aux else None)
        self.size = 0
        self.round = -1
        self.tags: dict[str, Any] = {}
        self.is_caboose = False

    @classmethod
    def caboose(cls, pipeline: "Pipeline") -> "Buffer":
        """Create the end-of-stream marker for ``pipeline``."""
        buf = cls.__new__(cls)
        buf.pipeline = pipeline
        buf.index = -1
        buf.data = None
        buf.aux = None
        buf.size = 0
        buf.round = -1
        buf.tags = {}
        buf.is_caboose = True
        return buf

    # -- typed access helpers -------------------------------------------------

    @property
    def capacity(self) -> int:
        """Backing capacity in bytes (0 for cabooses)."""
        return 0 if self.data is None else len(self.data)

    @property
    def fill_fraction(self) -> float:
        """Valid bytes over capacity (0.0 for cabooses).

        Observability hook: since a buffer corresponds to one block of
        data transfer, persistently under-filled buffers mean wasted I/O
        and wire capacity; the program observer records the distribution
        of fill fractions at each convey.
        """
        capacity = self.capacity
        return self.size / capacity if capacity else 0.0

    def view(self, dtype: np.dtype) -> np.ndarray:
        """View the *valid* bytes (``size``) as an array of ``dtype``.

        The valid byte count must be a multiple of the dtype's item size.
        The view aliases the buffer — mutations write through.
        """
        self._check_data("view")
        itemsize = np.dtype(dtype).itemsize
        if self.size % itemsize != 0:
            raise StageError(
                f"buffer size {self.size} is not a multiple of "
                f"{np.dtype(dtype)} itemsize {itemsize}")
        return self.data[:self.size].view(dtype)

    def put(self, array: np.ndarray) -> None:
        """Copy ``array``'s raw bytes into the buffer and set ``size``."""
        self._check_data("put")
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        if len(raw) > self.capacity:
            raise StageError(
                f"array of {len(raw)} bytes exceeds buffer capacity "
                f"{self.capacity}")
        self.data[:len(raw)] = raw
        self.size = len(raw)

    def clear(self) -> None:
        """Reset valid size and metadata (data bytes are left as-is)."""
        self.size = 0
        self.tags.clear()

    def _check_data(self, op: str) -> None:
        if self.data is None:
            raise StageError(f"cannot {op} on a caboose buffer")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_caboose:
            return f"<Caboose of {self.pipeline.name}>"
        return (f"<Buffer {self.pipeline.name}#{self.index} "
                f"round={self.round} size={self.size}/{self.capacity}>")
