"""Dataset setup: write per-node input files, untimed.

The paper's experiments start with the data "distributed evenly among the
16 nodes" in node-local input files.  :func:`generate_input` reproduces
that starting state: each node gets ``n_per_node`` records in a file named
``input`` on its disk.  Generation bypasses the timed disk path (the
dataset exists before the experiment's clock starts).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.workloads.distributions import generate_keys

__all__ = ["DatasetManifest", "generate_input", "INPUT_FILE"]

#: canonical name of the per-node input file
INPUT_FILE = "input"


@dataclasses.dataclass(frozen=True)
class DatasetManifest:
    """What was generated, plus the ground truth for verification."""

    distribution: str
    schema: RecordSchema
    n_per_node: int
    n_nodes: int
    seed: int
    #: all keys in globally sorted order (the expected output key column)
    sorted_keys: np.ndarray

    @property
    def total_records(self) -> int:
        return self.n_per_node * self.n_nodes

    @property
    def total_bytes(self) -> int:
        return self.total_records * self.schema.record_bytes


def generate_input(cluster: Cluster, schema: RecordSchema, n_per_node: int,
                   distribution: str, seed: int = 0) -> DatasetManifest:
    """Write ``n_per_node`` records to every node's ``input`` file.

    Returns a manifest carrying the globally sorted key sequence so tests
    and benchmarks can verify outputs without re-reading the inputs.
    """
    if n_per_node < 1:
        raise SortError(f"n_per_node must be >= 1, got {n_per_node}")
    rng = np.random.default_rng(seed)
    all_keys = []
    for node in cluster.nodes:
        keys = generate_keys(distribution, n_per_node, rng)
        all_keys.append(keys)
        records = schema.from_keys(keys)
        rf = RecordFile(node.disk, INPUT_FILE, schema)
        rf.delete()
        rf.poke(0, records)
    sorted_keys = np.sort(np.concatenate(all_keys), kind="stable")
    return DatasetManifest(distribution=distribution, schema=schema,
                           n_per_node=n_per_node, n_nodes=cluster.n_nodes,
                           seed=seed, sorted_keys=sorted_keys)
