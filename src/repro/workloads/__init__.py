"""Workload generation: key distributions and cluster dataset setup.

The paper evaluates four key distributions — uniform random, all keys
equal, standard normal, and Poisson(lambda=1) — plus unnamed adversarial
distributions "designed to elicit highly unbalanced communication in
pass 1 of dsort" (Section VI).  This package generates all of them as
order-preserving uint64 keys and writes per-node input files.
"""

from repro.workloads.distributions import (
    DISTRIBUTIONS,
    PAPER_DISTRIBUTIONS,
    ADVERSARIAL_DISTRIBUTIONS,
    generate_keys,
)
from repro.workloads.generator import DatasetManifest, generate_input

__all__ = [
    "DISTRIBUTIONS",
    "PAPER_DISTRIBUTIONS",
    "ADVERSARIAL_DISTRIBUTIONS",
    "generate_keys",
    "DatasetManifest",
    "generate_input",
]
