"""Key distributions for sorting experiments.

Each generator maps its native distribution to ``uint64`` keys through an
order-preserving transform, so sorting the keys sorts the underlying
values.  The paper's four evaluation distributions are joined by
adversarial ones that concentrate records into few partitions, eliciting
the highly unbalanced pass-1 communication discussed in Section VI.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import SortError

__all__ = [
    "generate_keys",
    "DISTRIBUTIONS",
    "PAPER_DISTRIBUTIONS",
    "ADVERSARIAL_DISTRIBUTIONS",
]

_HALF = np.uint64(1) << np.uint64(63)


def _floats_to_ordered_u64(x: np.ndarray) -> np.ndarray:
    """Order-preserving map from float64 to uint64.

    Uses the classic IEEE-754 trick: flip the sign bit for non-negative
    floats and all bits for negative ones; the resulting unsigned integers
    compare in the same order as the floats.  Adding 0.0 first collapses
    -0.0 onto +0.0, so equal floats always map to equal keys.
    """
    x = np.asarray(x, dtype="<f8") + 0.0
    bits = np.ascontiguousarray(x).view("<u8")
    negative = (bits & _HALF) != 0
    out = np.where(negative, ~bits, bits | _HALF)
    return out.astype("<u8")


def _uniform(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniform random over the full uint64 range."""
    return rng.integers(0, np.iinfo(np.uint64).max, size=n,
                        dtype=np.uint64, endpoint=True)


def _all_equal(rng: np.random.Generator, n: int) -> np.ndarray:
    """Every key identical — the splitter-selection stress test."""
    return np.full(n, 0x5555_5555_5555_5555, dtype=np.uint64)


def _std_normal(rng: np.random.Generator, n: int) -> np.ndarray:
    """Standard normal, order-preservingly mapped to uint64."""
    return _floats_to_ordered_u64(rng.standard_normal(n))


def _poisson1(rng: np.random.Generator, n: int) -> np.ndarray:
    """Poisson with lambda = 1 (tiny discrete support, massive ties)."""
    return rng.poisson(lam=1.0, size=n).astype(np.uint64)


def _reverse_sorted(rng: np.random.Generator, n: int) -> np.ndarray:
    """Strictly decreasing keys (every record moves)."""
    return np.arange(n, 0, -1, dtype=np.uint64)


def _already_sorted(rng: np.random.Generator, n: int) -> np.ndarray:
    """Strictly increasing keys."""
    return np.arange(n, dtype=np.uint64)


def _single_hot_value(rng: np.random.Generator, n: int) -> np.ndarray:
    """90% of keys share one value, 10% uniform — extreme partition skew
    that only the extended-key tie-breaking keeps balanced."""
    keys = _uniform(rng, n)
    hot = rng.random(n) < 0.9
    keys[hot] = 0x0123_4567_89AB_CDEF
    return keys


def _narrow_range(rng: np.random.Generator, n: int) -> np.ndarray:
    """All keys drawn from a sliver of the key space: without sampling,
    naive fixed splitters would route everything to one node."""
    lo = 0x7000_0000_0000_0000
    return (lo + rng.integers(0, 1 << 20, size=n)).astype(np.uint64)


def _zipf_like(rng: np.random.Generator, n: int) -> np.ndarray:
    """Heavy-tailed repeated values (Zipf over 1k distinct keys)."""
    ranks = rng.zipf(a=1.5, size=n)
    return (np.minimum(ranks, 1000) * 0x1_0000_0000).astype(np.uint64)


#: the paper's four evaluation distributions (Figure 8 column order)
PAPER_DISTRIBUTIONS = ("uniform", "all_equal", "std_normal", "poisson")

#: distributions "designed to elicit highly unbalanced communication"
ADVERSARIAL_DISTRIBUTIONS = ("single_hot_value", "narrow_range",
                             "zipf", "reverse_sorted", "sorted")

DISTRIBUTIONS: Dict[str, Callable[[np.random.Generator, int], np.ndarray]] = {
    "uniform": _uniform,
    "all_equal": _all_equal,
    "std_normal": _std_normal,
    "poisson": _poisson1,
    "reverse_sorted": _reverse_sorted,
    "sorted": _already_sorted,
    "single_hot_value": _single_hot_value,
    "narrow_range": _narrow_range,
    "zipf": _zipf_like,
}


def generate_keys(distribution: str, n: int,
                  rng: np.random.Generator) -> np.ndarray:
    """n uint64 keys drawn from the named distribution."""
    try:
        gen = DISTRIBUTIONS[distribution]
    except KeyError:
        raise SortError(
            f"unknown distribution {distribution!r}; "
            f"known: {sorted(DISTRIBUTIONS)}") from None
    if n < 0:
        raise SortError(f"negative key count: {n}")
    keys = gen(rng, n)
    assert keys.dtype == np.uint64 and len(keys) == n
    return keys
