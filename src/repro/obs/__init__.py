"""Unified observability: metrics, Chrome-trace export, bottleneck analysis.

FG's value proposition — asynchronous stages overlapping disk and network
latency — is invisible in aggregate timings; you have to *see* it.  This
package is the measurement substrate for every performance question:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  time-weighted histograms, recorded in **kernel time**, so virtual-time
  and real-time runs produce comparable numbers.  Attach one to any kernel
  with ``kernel.enable_metrics()``; channels, stages, and buffer pools
  instrument themselves when a registry is present.
* :mod:`repro.obs.chrome_trace` — export any
  :class:`~repro.sim.trace.Tracer` (plus gauge sample tracks) to the Trace
  Event Format that ``chrome://tracing`` and https://ui.perfetto.dev load.
* :mod:`repro.obs.bottleneck` — per-pipeline analysis that names the
  limiting stage and breaks down where every thread's blocked time went.
* :mod:`repro.obs.timeseries` — binned per-stage accept/queue-wait series
  and windowed gauge levels, the shared signal layer for the
  ``repro.tune`` feedback controller and the ``analyze`` wait profiles.
* :mod:`repro.obs.observer` — the single event path through which FG
  programs record per-stage accept/convey/wait activity.

Surfaced via ``python -m repro analyze`` / ``python -m repro trace
--trace-out`` and the benchmark harness (``run_sort(..., observe=True)``).
See docs/OBSERVABILITY.md for the guide.
"""

from repro.obs.bottleneck import (
    BottleneckReport,
    StageBreakdown,
    analyze_bottleneck,
)
from repro.obs.chrome_trace import (
    chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    window_average,
)
from repro.obs.observer import ProgramObserver
from repro.obs.timeseries import (
    SeriesBin,
    StageSeries,
    gauge_series,
    instrumented_programs,
    render_stage_series,
    stage_series,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ProgramObserver",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
    "analyze_bottleneck",
    "BottleneckReport",
    "StageBreakdown",
    "SeriesBin",
    "StageSeries",
    "stage_series",
    "gauge_series",
    "instrumented_programs",
    "render_stage_series",
    "window_average",
]
