"""Per-stage time series derived from sampled metrics.

The metrics registry aggregates by default: ``stage.sort.accepts`` is one
number for the whole run.  That is fine for totals but useless for the
questions the auto-tuner and ``repro analyze`` ask — *when* did the stage
wait, did backpressure build up or drain, was the pool starved early or
late?  This module answers them by slicing the sampled series that
instrumented programs already record (stage accept counters, accept-wait
counters, channel-occupancy and pool gauges) into fixed time bins:

* :func:`stage_series` — per-stage bins of accepts, queue-wait seconds,
  and mean wait per accept over the run (or any window);
* :func:`gauge_series` — window-averaged levels of any sampled gauge
  (channel occupancy, buffers in flight, pool size, replica count);
* :func:`render_stage_series` — a monospace table with a sparkline-style
  wait profile, printed by ``python -m repro analyze``.

Everything reads the same primitives the :class:`repro.tune.TuneController`
polls at round boundaries (:meth:`Counter.window_delta`,
:meth:`Gauge.window_average`), so what the controller reacts to and what
the human sees in the report are one signal, not two.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.obs.metrics import Counter, Gauge, MetricsRegistry

__all__ = ["SeriesBin", "StageSeries", "gauge_series",
           "instrumented_programs", "render_stage_series", "stage_series"]

#: glyphs for the wait profile, lightest to heaviest load
_SPARK = " .:-=+*#%@"


@dataclasses.dataclass(frozen=True)
class SeriesBin:
    """One time bin of one stage's activity."""

    t0: float
    t1: float
    accepts: float        #: buffers accepted during the bin
    wait_seconds: float   #: seconds spent blocked on the inbound channel

    @property
    def mean_wait(self) -> float:
        """Average blocked time per accepted buffer (0 when idle)."""
        return self.wait_seconds / self.accepts if self.accepts else 0.0

    @property
    def wait_fraction(self) -> float:
        """Fraction of the bin spent blocked waiting for input."""
        span = self.t1 - self.t0
        return self.wait_seconds / span if span > 0 else 0.0


@dataclasses.dataclass(frozen=True)
class StageSeries:
    """A stage's binned activity over a window."""

    stage: str
    bins: tuple[SeriesBin, ...]

    @property
    def total_accepts(self) -> float:
        return sum(b.accepts for b in self.bins)

    @property
    def total_wait(self) -> float:
        return sum(b.wait_seconds for b in self.bins)

    def peak_wait_bin(self) -> Optional[SeriesBin]:
        """The bin with the most blocked time, or None when never blocked."""
        worst = max(self.bins, key=lambda b: b.wait_seconds, default=None)
        if worst is None or worst.wait_seconds <= 0:
            return None
        return worst

    def sparkline(self) -> str:
        """One glyph per bin scaled to the stage's own peak wait."""
        peak = max((b.wait_seconds for b in self.bins), default=0.0)
        if peak <= 0:
            return " " * len(self.bins)
        out = []
        for b in self.bins:
            idx = int(b.wait_seconds / peak * (len(_SPARK) - 1))
            out.append(_SPARK[idx])
        return "".join(out)


def _edges(t0: float, t1: float, bins: int) -> list[tuple[float, float]]:
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1}]")
    width = (t1 - t0) / bins
    return [(t0 + i * width, t0 + (i + 1) * width) for i in range(bins)]


def instrumented_programs(registry: MetricsRegistry) -> list[str]:
    """Program names with sampled stage metrics, in registry order.

    Discovered from ``fg.<program>.stage.<stage>.accepts`` counter names,
    so a caller (``repro analyze``) needs no prior knowledge of how many
    FG programs the workload assembled or what they were called.
    """
    out: dict[str, None] = {}
    for name in registry.names():
        if (name.startswith("fg.") and name.endswith(".accepts")
                and ".stage." in name):
            out.setdefault(name[len("fg."):name.index(".stage.")], None)
    return list(out)


def _stage_names(registry: MetricsRegistry, program: str) -> list[str]:
    """Stages that recorded sampled accepts, in registry (sorted) order."""
    prefix = f"fg.{program}.stage."
    names = []
    for name in registry.names():
        if name.startswith(prefix) and name.endswith(".accepts"):
            metric = registry.get(name)
            if isinstance(metric, Counter) and metric.samples is not None:
                names.append(name[len(prefix):-len(".accepts")])
    return names


def stage_series(registry: MetricsRegistry, program: str,
                 t0: float = 0.0, t1: Optional[float] = None,
                 bins: int = 12) -> list[StageSeries]:
    """Binned accepts / queue-wait series for every stage of ``program``.

    Reads the sampled ``fg.<program>.stage.<stage>.accepts`` and
    ``.accept_wait_seconds`` counters; stages instrumented before
    sampling was enabled (none, today) are skipped.  ``t1`` defaults to
    the registry clock's now.
    """
    end = registry.clock() if t1 is None else t1
    edges = _edges(t0, end, bins)
    out = []
    for stage in _stage_names(registry, program):
        prefix = f"fg.{program}.stage.{stage}"
        accepts = registry.get(f"{prefix}.accepts")
        waits = registry.get(f"{prefix}.accept_wait_seconds")
        series = []
        for lo, hi in edges:
            n = accepts.window_delta(lo, hi) if isinstance(
                accepts, Counter) and accepts.samples is not None else 0.0
            w = waits.window_delta(lo, hi) if isinstance(
                waits, Counter) and waits.samples is not None else 0.0
            series.append(SeriesBin(lo, hi, n, w))
        out.append(StageSeries(stage, tuple(series)))
    return out


def gauge_series(registry: MetricsRegistry, name: str,
                 t0: float = 0.0, t1: Optional[float] = None,
                 bins: int = 12) -> list[float]:
    """Window-averaged levels of a sampled gauge, one value per bin.

    Works for any ``record_samples=True`` gauge: channel occupancy
    (``channel.<name>.occupancy``), ``...buffers_in_flight``,
    ``...pool_size``, ``...replicas``.  Raises KeyError for unknown
    names and ValueError for unsampled gauges.
    """
    metric = registry.get(name)
    if metric is None:
        raise KeyError(f"no metric named {name!r}")
    if not isinstance(metric, Gauge):
        raise ValueError(f"metric {name!r} is a {metric.kind}, not a gauge")
    end = registry.clock() if t1 is None else t1
    return [metric.window_average(lo, hi) for lo, hi in _edges(t0, end, bins)]


def render_stage_series(series: Sequence[StageSeries]) -> str:
    """Monospace table: per-stage totals plus the wait-profile sparkline.

    The profile shows *when* each stage was starved of input — a stage
    whose waits cluster at the start is warming up; one that waits
    throughout is downstream of the bottleneck.
    """
    if not series:
        return "(no sampled stage metrics: enable kernel metrics first)"
    label_w = min(28, max(len(s.stage) for s in series))
    nbins = max(len(s.bins) for s in series)
    lines = [f"{'stage':{label_w}} {'accepts':>8} {'wait(ms)':>9} "
             f"|{'wait profile (time ->)':{nbins}}|"]
    for s in series:
        lines.append(f"{s.stage[:label_w]:{label_w}} "
                     f"{s.total_accepts:8.0f} "
                     f"{s.total_wait * 1e3:9.3f} "
                     f"|{s.sparkline()}|")
    return "\n".join(lines)
