"""Chrome-trace export: view FG runs in chrome://tracing or Perfetto.

Converts a :class:`~repro.sim.trace.Tracer`'s event log into the Trace
Event Format (the ``traceEvents`` JSON that ``chrome://tracing`` and
https://ui.perfetto.dev load directly).  Each FG process becomes one named
thread row; every run/work/contend/wait interval becomes a complete
("X"-phase) slice with its park reason in ``args.detail``; gauges recorded
with ``record_samples=True`` (queue occupancy, buffers in flight) become
counter tracks.

Times are exported in microseconds, as the format requires.  Under the
virtual-time kernel the export is deterministic: same program, same seed,
byte-identical JSON.

Typical use::

    from repro.obs import write_chrome_trace
    write_chrome_trace("trace.json", tracer, metrics=kernel.metrics)
    # then open trace.json in https://ui.perfetto.dev
"""

from __future__ import annotations

import json
from typing import IO, Optional, Sequence, Union

from repro.obs.bottleneck import normalize_reason
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import FAULT, RECOVER, SCHED, TUNE, Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "write_metrics_json"]

#: synthetic process id for all FG threads (one simulated program)
_PID = 1


def _us(seconds: float) -> float:
    """Kernel seconds -> trace microseconds, rounded for stable JSON."""
    return round(seconds * 1e6, 3)


def chrome_trace(tracer: Tracer,
                 metrics: Optional[MetricsRegistry] = None,
                 processes: Optional[Sequence[str]] = None) -> dict:
    """Build a Trace Event Format document from a recorded trace.

    ``processes`` filters which FG processes get thread rows (by default
    all of them, in order of first appearance).  ``metrics`` adds counter
    tracks for every gauge that recorded samples.
    """
    names = (list(processes) if processes is not None
             else tracer.process_names())
    events: list[dict] = []
    for tid, name in enumerate(names):
        events.append({"ph": "M", "name": "thread_name", "pid": _PID,
                       "tid": tid, "args": {"name": name}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": _PID,
                       "tid": tid, "args": {"sort_index": tid}})
    for tid, name in enumerate(names):
        for iv in tracer.intervals(name):
            event = {
                "ph": "X",
                "name": normalize_reason(iv.state, iv.detail),
                "cat": iv.state,
                "pid": _PID,
                "tid": tid,
                "ts": _us(iv.start),
                "dur": _us(iv.duration),
            }
            if iv.detail:
                event["args"] = {"detail": iv.detail}
            events.append(event)
    # injected faults, tuner decisions, and recovery decisions are
    # instantaneous markers: render each as a thread-scoped instant event
    # on the process it struck, or on a dedicated per-kind row
    # ("faults" / "tune" / "recovery") when it fired outside any traced
    # process
    marker_events = [ev for ev in tracer.events
                     if ev.kind in (FAULT, TUNE, RECOVER, SCHED)]
    if marker_events:
        tid_of = {name: tid for tid, name in enumerate(names)}
        extra_tid: dict[str, int] = {}
        next_tid = len(names)
        row_of = {FAULT: "faults", TUNE: "tune", RECOVER: "recovery",
                  SCHED: "scheduler"}
        for ev in marker_events:
            tid = tid_of.get(ev.process)
            if tid is None:
                row = row_of[ev.kind]
                if row not in extra_tid:
                    extra_tid[row] = next_tid
                    events.append({"ph": "M", "name": "thread_name",
                                   "pid": _PID, "tid": next_tid,
                                   "args": {"name": row}})
                    next_tid += 1
                tid = extra_tid[row]
            events.append({"ph": "i", "name": ev.detail or ev.kind,
                           "cat": ev.kind, "s": "t", "pid": _PID,
                           "tid": tid, "ts": _us(ev.time)})
    if metrics is not None:
        for metric in metrics:
            samples = getattr(metric, "samples", None)
            if not samples:
                continue
            for t, value in samples:
                events.append({"ph": "C", "name": metric.name,
                               "pid": _PID, "tid": 0, "ts": _us(t),
                               "args": {"value": value}})
    t0, t1 = tracer.span()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "span_seconds": t1 - t0,
            "process_count": len(names),
            **_version_meta(),
        },
    }


def _version_meta() -> dict:
    """Code/version fingerprint stamped into every export, so a trace or
    metrics artifact can always be matched to the code that produced it
    (the same identity provenance records carry — see repro.prov)."""
    from repro.prov.fingerprint import version_info

    return version_info()


def write_chrome_trace(path_or_file: Union[str, IO[str]], tracer: Tracer,
                       metrics: Optional[MetricsRegistry] = None,
                       processes: Optional[Sequence[str]] = None) -> dict:
    """Write :func:`chrome_trace` output as JSON; returns the document."""
    doc = chrome_trace(tracer, metrics=metrics, processes=processes)
    _dump(doc, path_or_file)
    return doc


def write_metrics_json(path_or_file: Union[str, IO[str]],
                       metrics: MetricsRegistry) -> dict:
    """Write a registry snapshot as JSON; returns the document.

    The snapshot itself is unchanged (so its digest stays comparable to
    in-memory snapshots); the exported document wraps it with a ``meta``
    stamp identifying the code that produced it.
    """
    doc = dict(metrics.snapshot())
    doc["meta"] = _version_meta()
    _dump(doc, path_or_file)
    return doc


def _dump(doc: dict, path_or_file: Union[str, IO[str]]) -> None:
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
    else:
        json.dump(doc, path_or_file, sort_keys=True)
        path_or_file.write("\n")
