"""Bottleneck analysis: which stage limits the pipeline, and why.

In a buffer-recycling pipeline, throughput is set by the stage that is
busy the largest fraction of the span — every other stage spends the
difference waiting for it (starved upstream of the bottleneck's output
queue, or backed up behind its input queue).  :func:`analyze_bottleneck`
reconstructs per-process state totals from a :class:`~repro.sim.trace.Tracer`
and names that stage, with a breakdown of where every process's blocked
time went (which queue, which resource).

This is the measurement TPIE-style pipelining work says you need before
tuning: "make the bottleneck faster" requires knowing the bottleneck.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.sim.trace import Tracer

__all__ = ["StageBreakdown", "BottleneckReport", "analyze_bottleneck",
           "normalize_reason"]


def normalize_reason(state: str, detail: str) -> str:
    """Collapse a park reason to a stable, aggregatable label.

    Sleep reasons embed the wake-up time (``sleep until t=0.0123``), which
    would make every slice unique; they all become ``"work"``.  Queue and
    resource reasons (``get <- fg.p->sort``, ``acquire 1x node0.disk``)
    are already stable and kept verbatim.
    """
    if state in ("run", "work") or detail.startswith("sleep"):
        return state if state in ("run", "work") else "work"
    return detail or state


@dataclasses.dataclass(frozen=True)
class StageBreakdown:
    """State totals for one process over the analyzed span."""

    process: str
    busy: float     #: seconds running or doing timed work
    contend: float  #: seconds queued on a busy resource
    wait: float     #: seconds idle, waiting for data or completion
    #: normalized blocked reason -> seconds (contend + wait together)
    reasons: dict[str, float]

    @property
    def total(self) -> float:
        return self.busy + self.contend + self.wait

    def busy_fraction(self, span: float) -> float:
        return self.busy / span if span > 0 else 0.0

    def top_reasons(self, n: int = 3) -> list[tuple[str, float]]:
        """The ``n`` largest blocked-time reasons, descending."""
        ranked = sorted(self.reasons.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]


@dataclasses.dataclass(frozen=True)
class BottleneckReport:
    """Per-process breakdowns plus the limiting stage."""

    t0: float
    t1: float
    #: breakdowns sorted by busy time, descending
    breakdowns: tuple[StageBreakdown, ...]

    @property
    def span(self) -> float:
        return self.t1 - self.t0

    @property
    def bottleneck(self) -> Optional[StageBreakdown]:
        """The process with the most busy time (None if trace is empty)."""
        return self.breakdowns[0] if self.breakdowns else None

    def breakdown_of(self, process: str) -> Optional[StageBreakdown]:
        for b in self.breakdowns:
            if b.process == process:
                return b
        return None

    def render(self, top_reasons: int = 3) -> str:
        """Human-readable report naming the limiting stage."""
        if not self.breakdowns:
            return "(no processes traced)"
        span = max(self.span, 1e-12)
        label_w = min(32, max(len(b.process) for b in self.breakdowns))
        lines = [f"bottleneck analysis over {span * 1e3:.3f} ms "
                 f"({len(self.breakdowns)} process(es))",
                 f"{'process':{label_w}} {'busy%':>8} {'contend%':>9} "
                 f"{'wait%':>8}"]
        for b in self.breakdowns:
            mark = "  <-- bottleneck" if b is self.bottleneck else ""
            lines.append(
                f"{b.process[:label_w]:{label_w}} "
                f"{100 * b.busy / span:7.1f}% "
                f"{100 * b.contend / span:8.1f}% "
                f"{100 * b.wait / span:7.1f}%{mark}")
        limiter = self.bottleneck
        lines.append("")
        lines.append(
            f"bottleneck: {limiter.process!r} is busy "
            f"{100 * limiter.busy_fraction(span):.1f}% of the span; "
            f"the pipeline cannot finish faster than its work")
        reasons = limiter.top_reasons(top_reasons)
        if reasons:
            lines.append(f"where {limiter.process!r} blocks:")
            for reason, seconds in reasons:
                lines.append(f"  {seconds * 1e3:10.3f} ms  {reason}")
        return "\n".join(lines)


def analyze_bottleneck(tracer: Tracer,
                       processes: Optional[Sequence[str]] = None
                       ) -> BottleneckReport:
    """Build a :class:`BottleneckReport` from a recorded trace.

    ``processes`` restricts the analysis (e.g. to one program's stage
    threads); by default every traced process is included.  The bottleneck
    is the process with the most busy (run + timed-work) seconds.
    """
    names = (list(processes) if processes is not None
             else tracer.process_names())
    t0, t1 = tracer.span()
    breakdowns: list[StageBreakdown] = []
    for name in names:
        busy = contend = wait = 0.0
        reasons: dict[str, float] = {}
        for iv in tracer.intervals(name):
            if iv.state in ("run", "work"):
                busy += iv.duration
            elif iv.state == "contend":
                contend += iv.duration
            else:
                wait += iv.duration
            if iv.state in ("contend", "wait"):
                reason = normalize_reason(iv.state, iv.detail)
                reasons[reason] = reasons.get(reason, 0.0) + iv.duration
        breakdowns.append(StageBreakdown(process=name, busy=busy,
                                         contend=contend, wait=wait,
                                         reasons=reasons))
    breakdowns.sort(key=lambda b: (-b.busy, b.process))
    return BottleneckReport(t0=t0, t1=t1, breakdowns=tuple(breakdowns))
