"""Metrics registry: counters, gauges, and time-weighted histograms.

A :class:`MetricsRegistry` is bound to a clock — in practice a kernel's
``now`` method — so every recorded value is stamped in **kernel time**.
Under the virtual-time kernel that makes metrics exact consequences of the
cost model (two runs produce identical snapshots); under the real-time
kernel the same code records wall-clock metrics.  Nothing in this module
imports the kernels, so ``repro.sim`` can depend on it lazily without an
import cycle.

Three instrument kinds:

* :class:`Counter` — monotonically increasing total (accepts, conveys,
  items delivered, bytes moved);
* :class:`Gauge` — instantaneous level (queue occupancy, buffers in
  flight) with **time-weighted** aggregation: the integral of the value
  over kernel time yields :meth:`Gauge.time_average`, and an optional
  embedded histogram records how long the gauge spent at each level;
* :class:`Histogram` — weighted distribution over fixed bucket bounds;
  the weight defaults to 1 per observation but callers may pass elapsed
  seconds, making it time-weighted.

Instruments are get-or-create by dotted name::

    registry = kernel.enable_metrics()
    registry.counter("stage.read.accepts").inc()
    registry.gauge("channel.p->read.occupancy").set(3)
    registry.snapshot()   # JSON-able dict of everything
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "window_average"]

#: default bucket bounds for gauge level distributions (queue depths)
DEFAULT_LEVEL_BOUNDS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def window_average(samples: Sequence[tuple[float, float]], t0: float,
                   t1: float, initial: float = 0.0) -> float:
    """Time-weighted average of a step series over ``[t0, t1]``.

    ``samples`` is an ascending ``(time, value)`` list where each entry
    records the value the series *changed to* at that time; before the
    first sample the series held ``initial``.  The last known value
    extends to ``t1``.
    """
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1}]")
    value = initial
    integral = 0.0
    cursor = t0
    for st, sv in samples:
        if st <= t0:
            value = sv
            continue
        if st >= t1:
            break
        integral += value * (st - cursor)
        cursor = st
        value = sv
    integral += value * (t1 - cursor)
    return integral / (t1 - t0)


class Metric:
    """Base: a named instrument bound to a registry clock."""

    kind = "metric"

    def __init__(self, name: str, clock: Callable[[], float],
                 unit: str = "", help: str = ""):
        self.name = name
        self.unit = unit
        self.help = help
        self._clock = clock

    def snapshot(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Counter(Metric):
    """A monotonically increasing total.

    ``record_samples=True`` keeps the ``(time, cumulative_value)`` series
    of every increment, which is what turns an aggregate counter into a
    time series: :meth:`value_at` reads the cumulative value at any past
    instant and :meth:`window_delta` the growth over a window (the
    queue-wait signals of ``repro.tune`` and the per-stage series of
    :mod:`repro.obs.timeseries` are both built on this).
    """

    kind = "counter"

    def __init__(self, name: str, clock: Callable[[], float],
                 unit: str = "", help: str = "",
                 record_samples: bool = False):
        super().__init__(name, clock, unit, help)
        self.value: float = 0.0
        self.samples: Optional[list[tuple[float, float]]] = (
            [] if record_samples else None)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount
        if self.samples is not None:
            self.samples.append((self._clock(), self.value))

    def value_at(self, t: float) -> float:
        """Cumulative value at instant ``t`` (needs record_samples)."""
        if self.samples is None:
            raise ValueError(f"counter {self.name!r} records no samples")
        value = 0.0
        for st, sv in self.samples:
            if st > t:
                break
            value = sv
        return value

    def window_delta(self, t0: float, t1: float) -> float:
        """Growth of the counter over ``[t0, t1]`` (needs record_samples)."""
        return self.value_at(t1) - self.value_at(t0)

    def snapshot(self) -> dict:
        out: dict = {"value": self.value}
        if self.unit:
            out["unit"] = self.unit
        return out


class Gauge(Metric):
    """An instantaneous level with time-weighted aggregation.

    The gauge integrates its value over kernel time, so
    :meth:`time_average` is exact regardless of how irregularly the level
    changes — one second spent at occupancy 4 weighs the same as four
    one-second visits to occupancy 1.

    ``record_samples=True`` keeps the full ``(time, value)`` step series
    (used by the Chrome-trace exporter to draw counter tracks);
    ``level_bounds`` additionally maintains a time-weighted histogram of
    the levels the gauge held.
    """

    kind = "gauge"

    def __init__(self, name: str, clock: Callable[[], float],
                 unit: str = "", help: str = "",
                 record_samples: bool = False,
                 level_bounds: Optional[Sequence[float]] = None):
        super().__init__(name, clock, unit, help)
        self.value: float = 0.0
        self.max: float = 0.0
        self.min: float = 0.0
        self._t0 = clock()
        self._last_change = self._t0
        self._integral = 0.0
        self.samples: Optional[list[tuple[float, float]]] = (
            [] if record_samples else None)
        self._levels: Optional[Histogram] = (
            Histogram(f"{name}.levels", clock, bounds=level_bounds)
            if level_bounds is not None else None)

    def set(self, value: float) -> None:
        if value == self.value:
            return
        now = self._clock()
        elapsed = now - self._last_change
        self._integral += self.value * elapsed
        if self._levels is not None and elapsed > 0:
            self._levels.observe(self.value, weight=elapsed)
        self.value = value
        self._last_change = now
        self.max = max(self.max, value)
        self.min = min(self.min, value)
        if self.samples is not None:
            self.samples.append((now, value))

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def time_average(self, now: Optional[float] = None) -> float:
        """Integral of the value over time divided by elapsed time."""
        now = self._clock() if now is None else now
        elapsed = now - self._t0
        if elapsed <= 0:
            return self.value
        integral = self._integral + self.value * (now - self._last_change)
        return integral / elapsed

    def window_average(self, t0: float, t1: float) -> float:
        """Time-weighted average of the gauge over ``[t0, t1]``.

        Needs ``record_samples=True``: the step series is integrated
        piecewise over the window, so the result is exact however
        irregularly the level changed (``time_average`` restricted to a
        window).
        """
        if self.samples is None:
            raise ValueError(f"gauge {self.name!r} records no samples; "
                             "create it with record_samples=True")
        if t1 <= t0:
            return self.value
        return window_average(self.samples, t0, t1, initial=0.0)

    def level_distribution(self) -> Optional["Histogram"]:
        """The time-weighted level histogram, if enabled."""
        return self._levels

    def snapshot(self) -> dict:
        out: dict = {
            "value": self.value,
            "time_average": self.time_average(),
            "max": self.max,
            "min": self.min,
        }
        if self.unit:
            out["unit"] = self.unit
        if self._levels is not None:
            out["levels"] = self._levels.snapshot()
        return out


class Histogram(Metric):
    """A weighted distribution over fixed bucket bounds.

    ``observe(value)`` adds weight 1 to the bucket of ``value``; passing
    ``weight=elapsed_seconds`` makes the histogram time-weighted (how long
    was the queue at depth d?).  Bucket i counts values ``<= bounds[i]``;
    one overflow bucket catches the rest.
    """

    kind = "histogram"

    def __init__(self, name: str, clock: Callable[[], float],
                 unit: str = "", help: str = "",
                 bounds: Optional[Sequence[float]] = None):
        super().__init__(name, clock, unit, help)
        self.bounds: tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_LEVEL_BOUNDS)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must ascend: {self.bounds}")
        self.weights: list[float] = [0.0] * (len(self.bounds) + 1)
        self.count = 0
        self.total_weight = 0.0
        self.weighted_sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"negative histogram weight: {weight}")
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.weights[idx] += weight
        self.count += 1
        self.total_weight += weight
        self.weighted_sum += value * weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        """Weighted mean of observed values (0 when empty)."""
        if self.total_weight <= 0:
            return 0.0
        return self.weighted_sum / self.total_weight

    def snapshot(self) -> dict:
        out: dict = {
            "bounds": list(self.bounds),
            "weights": list(self.weights),
            "count": self.count,
            "total_weight": self.total_weight,
            "mean": self.mean(),
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        if self.unit:
            out["unit"] = self.unit
        return out


class MetricsRegistry:
    """Get-or-create registry of named instruments on one clock."""

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self._metrics: dict[str, Metric] = {}

    # -- instrument factories (get-or-create) ------------------------------

    def _get_or_create(self, cls: type, name: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}")
            return metric
        metric = cls(name, self.clock, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, unit: str = "", help: str = "",
                record_samples: bool = False) -> Counter:
        counter = self._get_or_create(Counter, name, unit=unit, help=help,
                                      record_samples=record_samples)
        # an already-registered aggregate counter can be upgraded to a
        # sampled one (get-or-create must not silently drop the request)
        if record_samples and counter.samples is None:
            counter.samples = []
        return counter

    def gauge(self, name: str, unit: str = "", help: str = "",
              record_samples: bool = False,
              level_bounds: Optional[Sequence[float]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, unit=unit, help=help,
                                   record_samples=record_samples,
                                   level_bounds=level_bounds)

    def histogram(self, name: str, unit: str = "", help: str = "",
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, unit=unit, help=help,
                                   bounds=bounds)

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able snapshot of every instrument, grouped by kind."""
        groups: dict[str, dict] = {"counters": {}, "gauges": {},
                                   "histograms": {}}
        for name in self.names():
            metric = self._metrics[name]
            groups[metric.kind + "s"][name] = metric.snapshot()
        return {"captured_at": self.clock(), **groups}
