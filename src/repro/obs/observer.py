"""ProgramObserver: the single event path for FG stage bookkeeping.

Before ``repro.obs`` existed, per-stage statistics were mutated from three
places (the stage context, the map-stage runner, and the virtual-group
dispatcher).  Every stage lifecycle event now flows through one
:class:`ProgramObserver` owned by the :class:`~repro.core.program.FGProgram`:
the observer keeps the legacy :class:`~repro.core.stage.StageStats` view up
to date *and* mirrors each event into the kernel's metrics registry when
one is enabled (see :meth:`~repro.sim.kernel.Kernel.enable_metrics`).

Metric names, all prefixed with the program name::

    fg.<prog>.stage.<stage>.accepts             counter
    fg.<prog>.stage.<stage>.conveys             counter
    fg.<prog>.stage.<stage>.accept_wait_seconds counter (unit: s)
    fg.<prog>.stage.<stage>.fill                histogram of conveyed
                                                buffer fill fractions
    fg.<prog>.pipeline.<pipe>.buffers_in_flight gauge (sampled, for the
                                                Chrome-trace counter track)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.buffer import Buffer
    from repro.core.pipeline import Pipeline
    from repro.core.program import FGProgram
    from repro.core.stage import Stage
    from repro.obs.metrics import MetricsRegistry

__all__ = ["ProgramObserver"]

#: bucket bounds for buffer fill fractions (how full conveyed buffers are)
FILL_BOUNDS = (0.25, 0.5, 0.75, 0.9, 1.0)


class ProgramObserver:
    """Routes stage/pipeline lifecycle events to stats and metrics."""

    def __init__(self, program: "FGProgram"):
        self.program = program
        self.kernel = program.kernel

    @property
    def registry(self) -> Optional["MetricsRegistry"]:
        """The kernel's registry, or None when metrics are disabled."""
        return self.kernel.metrics

    def _prefix(self, stage: "Stage") -> str:
        return f"fg.{self.program.name}.stage.{stage.name}"

    # -- program lifecycle --------------------------------------------------

    def program_started(self) -> None:
        """The program assembled and is about to spawn its processes.

        Forwards the program to the kernel's provenance capture
        (:class:`repro.prov.capture.ProvenanceCapture`) when one is
        attached, so every FG program — dsort's passes, csort's, chaos
        runs, tuned runs — reports its stage-graph fingerprint with zero
        per-app code.
        """
        capture = getattr(self.kernel, "provenance", None)
        if capture is not None:
            capture.on_program_start(self.program)

    # -- stage lifecycle ----------------------------------------------------

    def stage_started(self, stage: "Stage") -> None:
        stage.stats.started_at = self.kernel.now()

    def stage_finished(self, stage: "Stage") -> None:
        stage.stats.finished_at = self.kernel.now()

    def accepted(self, stage: "Stage", wait_seconds: float) -> None:
        """One buffer (or caboose) accepted after ``wait_seconds`` blocked."""
        stats = stage.stats
        stats.accepts += 1
        stats.accept_wait += wait_seconds
        registry = self.registry
        if registry is not None:
            prefix = self._prefix(stage)
            # sampled, so tuning policies and repro.obs.timeseries can
            # read windowed deltas, not just run-wide aggregates
            registry.counter(f"{prefix}.accepts",
                             record_samples=True).inc()
            registry.counter(f"{prefix}.accept_wait_seconds", unit="s",
                             record_samples=True).inc(wait_seconds)

    def conveyed(self, stage: "Stage",
                 buffer: Optional["Buffer"] = None) -> None:
        """One buffer conveyed downstream (None for synthesized cabooses)."""
        stage.stats.conveys += 1
        registry = self.registry
        if registry is not None:
            prefix = self._prefix(stage)
            registry.counter(f"{prefix}.conveys").inc()
            if (buffer is not None and not buffer.is_caboose
                    and buffer.capacity):
                registry.histogram(f"{prefix}.fill",
                                   bounds=FILL_BOUNDS).observe(
                    buffer.fill_fraction)

    # -- buffer-pool circulation -------------------------------------------

    def _in_flight(self, pipeline: "Pipeline"):
        registry = self.registry
        if registry is None:
            return None
        return registry.gauge(
            f"fg.{self.program.name}.pipeline.{pipeline.name}"
            ".buffers_in_flight",
            record_samples=True)

    def emitted(self, pipeline: "Pipeline") -> None:
        """The source put one recycled buffer into circulation."""
        gauge = self._in_flight(pipeline)
        if gauge is not None:
            gauge.add(1)

    def recycled(self, pipeline: "Pipeline") -> None:
        """The sink returned one data buffer to the pool."""
        gauge = self._in_flight(pipeline)
        if gauge is not None:
            gauge.add(-1)

    # -- runtime tuning (repro.tune mechanisms) ----------------------------

    def pool_resized(self, pipeline: "Pipeline", delta: int,
                     size: int) -> None:
        """add_buffers / retire_buffers changed the circulating pool."""
        registry = self.registry
        if registry is not None:
            prefix = f"fg.{self.program.name}.pipeline.{pipeline.name}"
            registry.gauge(f"{prefix}.pool_size",
                           record_samples=True).set(size)
            which = "buffers_added" if delta > 0 else "buffers_retired"
            registry.counter(f"{prefix}.{which}").inc(abs(delta))

    def replica_added(self, stage: "Stage", live: int) -> None:
        """add_replica spawned one more copy of ``stage`` mid-run."""
        stage.stats.replicas += 1
        registry = self.registry
        if registry is not None:
            registry.gauge(f"{self._prefix(stage)}.replicas",
                           record_samples=True).set(live)

    # -- sanitizer (FGSan) ----------------------------------------------------

    def sanitizer_violation(self, kind: str, count: int = 1) -> None:
        """FGSan detected ``count`` ownership violations of ``kind``
        (use_after_convey, double_convey, cross_pipeline, caboose_write,
        stale_round, leak, ...); counted under ``sanitizer.<kind>``."""
        registry = self.registry
        if registry is not None:
            registry.counter(f"sanitizer.{kind}").inc(count)

    # -- graceful teardown ---------------------------------------------------

    def poisoned(self, pipeline: "Pipeline") -> None:
        """A stage failure poisoned this pipeline (teardown started)."""
        registry = self.registry
        if registry is not None:
            registry.counter(
                f"fg.{self.program.name}.pipeline.{pipeline.name}"
                ".poisoned").inc()

    def drained(self, pipeline: "Pipeline", count: int) -> None:
        """``count`` stranded buffers were drained back to the pool."""
        registry = self.registry
        if registry is not None:
            registry.counter(
                f"fg.{self.program.name}.pipeline.{pipeline.name}"
                ".buffers_drained").inc(count)
