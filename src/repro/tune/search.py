"""Deterministic offline configuration search: grid and hill climb.

The simulated clock makes configuration search *exact*: evaluating a
candidate config runs a fresh virtual-time cluster, and the same config
always scores the same makespan, byte for byte.  So the search needs no
repetitions, no noise handling, and no randomness — a plain coordinate-
descent hill climb with a deterministic tie-break and an evaluation
cache, or an exhaustive grid when the space is small.

Vocabulary:

* an :class:`Axis` is one tunable knob with an ordered tuple of candidate
  values and a default (the hand-tuned starting point);
* a :class:`TuneSpace` is a list of axes; a *config* is a plain dict
  mapping axis names to chosen values (exactly what
  ``run_sort(tune=...)`` accepts);
* ``evaluate(config) -> float`` scores a config, lower is better
  (makespan in kernel seconds);
* a :class:`TuneResult` carries the best config, its score, the baseline
  (all-defaults) score, and the full trial log — everything ``repro
  tune`` serializes to JSON.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.errors import ReproError

__all__ = ["Axis", "Trial", "TuneResult", "TuneSpace", "grid_search",
           "hill_climb"]

Evaluator = Callable[[dict], float]


@dataclasses.dataclass(frozen=True)
class Axis:
    """One tunable knob: ordered candidate values plus the default."""

    name: str
    values: tuple
    default: object = None

    def __post_init__(self):
        if not self.values:
            raise ReproError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ReproError(f"axis {self.name!r} has duplicate values")
        if self.default is None:
            object.__setattr__(self, "default", self.values[0])
        if self.default not in self.values:
            raise ReproError(
                f"axis {self.name!r}: default {self.default!r} is not "
                f"among its values {self.values}")

    def index_of(self, value) -> int:
        return self.values.index(value)


class TuneSpace:
    """An ordered set of axes; iteration order is the search order."""

    def __init__(self, axes: Sequence[Axis]):
        if not axes:
            raise ReproError("tune space has no axes")
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate axis names: {names}")
        self.axes = list(axes)

    def default_config(self) -> dict:
        return {a.name: a.default for a in self.axes}

    def size(self) -> int:
        n = 1
        for a in self.axes:
            n *= len(a.values)
        return n

    def grid(self) -> list[dict]:
        """Every config, in lexicographic axis order (deterministic)."""
        configs = [{}]
        for axis in self.axes:
            configs = [dict(c, **{axis.name: v})
                       for c in configs for v in axis.values]
        return configs

    def neighbors(self, config: dict) -> list[dict]:
        """Configs one step along one axis (coordinate moves), in axis
        order, minus-step before plus-step — a fixed order so the climb
        is deterministic."""
        out = []
        for axis in self.axes:
            i = axis.index_of(config[axis.name])
            for j in (i - 1, i + 1):
                if 0 <= j < len(axis.values):
                    out.append(dict(config, **{axis.name: axis.values[j]}))
        return out


@dataclasses.dataclass(frozen=True)
class Trial:
    """One evaluated config (``cached`` marks a cache hit, not a run)."""

    config: dict
    score: float
    cached: bool = False


@dataclasses.dataclass
class TuneResult:
    """Outcome of one search."""

    method: str
    best: dict
    best_score: float
    baseline: dict
    baseline_score: float
    trials: list[Trial]
    evaluations: int      #: actual evaluator calls (cache misses)

    @property
    def improvement(self) -> float:
        """Fractional makespan reduction vs the baseline config."""
        if self.baseline_score <= 0:
            return 0.0
        return 1.0 - self.best_score / self.baseline_score

    def to_json(self) -> dict:
        """A JSON-able document with deterministic key order."""
        return {
            "method": self.method,
            "best": dict(sorted(self.best.items())),
            "best_score": self.best_score,
            "baseline": dict(sorted(self.baseline.items())),
            "baseline_score": self.baseline_score,
            "improvement": self.improvement,
            "evaluations": self.evaluations,
            "trials": [{"config": dict(sorted(t.config.items())),
                        "score": t.score} for t in self.trials
                       if not t.cached],
        }


def _key(config: dict) -> tuple:
    return tuple(sorted(config.items()))


class _CachedEvaluator:
    """Memoizes the evaluator and logs every lookup as a Trial."""

    def __init__(self, evaluate: Evaluator):
        self._evaluate = evaluate
        self._cache: dict[tuple, float] = {}
        self.trials: list[Trial] = []
        self.evaluations = 0

    def __call__(self, config: dict) -> float:
        key = _key(config)
        hit = key in self._cache
        if not hit:
            self._cache[key] = self._evaluate(config)
            self.evaluations += 1
        score = self._cache[key]
        self.trials.append(Trial(dict(config), score, cached=hit))
        return score


def grid_search(evaluate: Evaluator, space: TuneSpace) -> TuneResult:
    """Evaluate every config; exact but exponential in axis count."""
    cached = _CachedEvaluator(evaluate)
    baseline = space.default_config()
    baseline_score = cached(baseline)
    best, best_score = baseline, baseline_score
    for config in space.grid():
        score = cached(config)
        if score < best_score:
            best, best_score = config, score
    return TuneResult("grid", best, best_score, baseline, baseline_score,
                      cached.trials, cached.evaluations)


def hill_climb(evaluate: Evaluator, space: TuneSpace,
               start: Optional[dict] = None,
               max_steps: int = 64) -> TuneResult:
    """Deterministic coordinate-descent from the default config.

    Each step evaluates every one-axis neighbor of the incumbent and
    moves to the best strictly-improving one (first in neighbor order on
    ties); stops at a local optimum or after ``max_steps`` moves.  With
    a deterministic evaluator this needs no restarts to be reproducible
    — though like any local search it can stop short of the global
    optimum on non-convex landscapes (use :func:`grid_search` to check,
    when the space is small enough).
    """
    cached = _CachedEvaluator(evaluate)
    baseline = space.default_config()
    baseline_score = cached(baseline)
    current = dict(start) if start is not None else dict(baseline)
    if start is not None:
        unknown = sorted(set(current) - {a.name for a in space.axes})
        if unknown:
            raise ReproError(f"start config has non-axis key(s): {unknown}")
    current_score = cached(current)
    for _ in range(max_steps):
        best_move, best_move_score = None, current_score
        for candidate in space.neighbors(current):
            score = cached(candidate)
            if score < best_move_score:
                best_move, best_move_score = candidate, score
        if best_move is None:
            break
        current, current_score = best_move, best_move_score
    return TuneResult("hill", current, current_score, baseline,
                      baseline_score, cached.trials, cached.evaluations)
