"""TuneController: in-run feedback control of replicas and buffer pools.

The controller is one more kernel process.  It wakes at a fixed interval
(the "round boundary" of the control loop), reads windowed signals from
the kernel's metrics registry — per-stage accepts and queue-wait deltas,
inbound-channel occupancy averages, buffers-in-flight averages — and
hands them to a pluggable :class:`TunePolicy`.  The policy returns
:class:`TuneAction` s, which the controller applies through the runtime
mechanisms of :class:`~repro.core.program.FGProgram`
(:meth:`~repro.core.program.FGProgram.add_replica`,
:meth:`~repro.core.program.FGProgram.add_buffers`,
:meth:`~repro.core.program.FGProgram.retire_buffers`) and records as
``tune`` trace instants plus ``tune.*`` metrics.

The default :class:`BacklogPolicy` implements the classic rule: replicate
the stage with the highest busy fraction when its inbound channel is
persistently backlogged (the stage is the bottleneck and parallel copies
can drain it), and grow the buffer pool when the source is persistently
starved of recycled buffers (the pool, not a stage, is the limit).  Both
rules carry hysteresis (``patience`` consecutive windows before acting,
``cooldown`` windows after acting) and hard caps, so one noisy window
cannot trigger runaway growth.

Everything runs on the cooperative kernel: the controller's reads and
actions are atomic between blocking points, and its wake times are
deterministic, so a controlled run is exactly reproducible.

Only stages *declared* replicated are controllable — declare
``replicas={"stage": 1}`` on the pipeline to wire the sequencer without
adding copies, then let the controller scale it.  See docs/TUNING.md.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.errors import ReproError
from repro.sim.trace import TUNE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.program import FGProgram

__all__ = ["BacklogPolicy", "PoolSignal", "StageSignal", "TuneAction",
           "TuneController", "TuneDecision", "TunePolicy", "TuneSample"]


@dataclasses.dataclass(frozen=True)
class StageSignal:
    """One replicated stage's activity over the last control window."""

    pipeline: str
    stage: str
    replicas: int          #: live replica count
    accepts: float         #: buffers accepted this window (all replicas)
    wait_seconds: float    #: replica-seconds spent blocked on input
    backlog: float         #: time-averaged inbound-channel occupancy
    backlog_limit: float   #: channel capacity (or pool size if unbounded)
    window: float          #: window length in kernel seconds

    @property
    def busy_fraction(self) -> float:
        """Fraction of replica time NOT spent waiting for input."""
        budget = self.window * max(1, self.replicas)
        if budget <= 0:
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.wait_seconds / budget))


@dataclasses.dataclass(frozen=True)
class PoolSignal:
    """One pipeline's buffer-pool pressure over the last control window."""

    pipeline: str
    nbuffers: int        #: current pool size
    in_flight: float     #: time-averaged buffers out of the pool

    @property
    def starvation(self) -> float:
        """1.0 when every buffer was in flight all window (source starved),
        0.0 when the pool always had spares."""
        if self.nbuffers <= 0:
            return 0.0
        return min(1.0, max(0.0, self.in_flight / self.nbuffers))


@dataclasses.dataclass(frozen=True)
class TuneSample:
    """Everything a policy sees at one round boundary."""

    t0: float
    t1: float
    stages: tuple[StageSignal, ...]
    pools: tuple[PoolSignal, ...]

    @property
    def window(self) -> float:
        return self.t1 - self.t0


@dataclasses.dataclass(frozen=True)
class TuneAction:
    """One decision a policy asks the controller to apply."""

    kind: str        #: "add_replica" | "add_buffers" | "retire_buffers"
    pipeline: str
    stage: str = ""  #: add_replica only
    count: int = 1   #: buffer actions only
    reason: str = ""


@dataclasses.dataclass(frozen=True)
class TuneDecision:
    """An applied (or rejected) action, stamped in kernel time."""

    time: float
    action: TuneAction
    applied: bool


class TunePolicy:
    """Interface: inspect one sample, return the actions to apply.

    Policies may keep state between calls (streak counters, cooldowns) —
    the controller calls ``decide`` exactly once per control window, in
    kernel-time order.
    """

    def decide(self, sample: TuneSample) -> list[TuneAction]:
        raise NotImplementedError


class BacklogPolicy(TunePolicy):
    """Replicate the busiest backlogged stage; grow a starved pool.

    Per window, at most ONE replica is added — to the eligible stage
    with the highest busy fraction among those whose inbound occupancy
    averaged at least ``backlog_depth`` for ``patience`` consecutive
    windows while the stage itself stayed at least ``busy_threshold``
    busy.  Pools grow by one buffer when ``starvation`` (in-flight over
    pool size) held at least ``starve_threshold`` for ``patience``
    windows.  ``shrink=True`` additionally retires one buffer from pools
    that stayed below half use for ``2 * patience`` windows (never below
    the pool's size at attach time).
    """

    def __init__(self, backlog_depth: float = 1.5,
                 busy_threshold: float = 0.5,
                 starve_threshold: float = 0.9,
                 patience: int = 2, cooldown: int = 2,
                 max_replicas: int = 4,
                 max_buffers: Optional[int] = None,
                 shrink: bool = False):
        if patience < 1 or cooldown < 0:
            raise ReproError("patience must be >= 1 and cooldown >= 0")
        self.backlog_depth = backlog_depth
        self.busy_threshold = busy_threshold
        self.starve_threshold = starve_threshold
        self.patience = patience
        self.cooldown = cooldown
        self.max_replicas = max_replicas
        self.max_buffers = max_buffers
        self.shrink = shrink
        self._streaks: dict[str, int] = {}
        self._cooldowns: dict[str, int] = {}
        self._floors: dict[str, int] = {}  #: pool size first seen

    def _streak(self, key: str, condition: bool) -> int:
        count = self._streaks.get(key, 0) + 1 if condition else 0
        self._streaks[key] = count
        return count

    def _ready(self, key: str) -> bool:
        return self._cooldowns.get(key, 0) <= 0

    def _acted(self, key: str) -> None:
        self._streaks[key] = 0
        self._cooldowns[key] = self.cooldown

    def decide(self, sample: TuneSample) -> list[TuneAction]:
        for key in list(self._cooldowns):
            if self._cooldowns[key] > 0:
                self._cooldowns[key] -= 1
        actions: list[TuneAction] = []

        # -- replication: one stage per window, the busiest backlogged one
        candidates = []
        for sig in sample.stages:
            key = f"replicate:{sig.pipeline}.{sig.stage}"
            hot = (sig.backlog >= min(self.backlog_depth, sig.backlog_limit)
                   and sig.busy_fraction >= self.busy_threshold)
            streak = self._streak(key, hot)
            if (hot and streak >= self.patience and self._ready(key)
                    and sig.replicas < self.max_replicas):
                candidates.append((sig, key))
        if candidates:
            sig, key = max(candidates,
                           key=lambda c: (c[0].busy_fraction, c[0].backlog))
            self._acted(key)
            actions.append(TuneAction(
                "add_replica", sig.pipeline, stage=sig.stage,
                reason=f"backlog {sig.backlog:.2f} >= "
                       f"{self.backlog_depth}, busy "
                       f"{sig.busy_fraction:.0%} for {self.patience} "
                       f"window(s)"))

        # -- pool sizing: grow on starvation, optionally shrink on idle
        for sig in sample.pools:
            self._floors.setdefault(sig.pipeline, sig.nbuffers)
            grow_key = f"grow:{sig.pipeline}"
            starved = sig.starvation >= self.starve_threshold
            streak = self._streak(grow_key, starved)
            capped = (self.max_buffers is not None
                      and sig.nbuffers >= self.max_buffers)
            if (starved and streak >= self.patience
                    and self._ready(grow_key) and not capped):
                self._acted(grow_key)
                actions.append(TuneAction(
                    "add_buffers", sig.pipeline,
                    reason=f"pool starved (in-flight "
                           f"{sig.in_flight:.2f}/{sig.nbuffers}) for "
                           f"{self.patience} window(s)"))
                continue
            if not self.shrink:
                continue
            shrink_key = f"shrink:{sig.pipeline}"
            idle = sig.starvation < 0.5
            sstreak = self._streak(shrink_key, idle)
            if (idle and sstreak >= 2 * self.patience
                    and self._ready(shrink_key)
                    and sig.nbuffers > self._floors[sig.pipeline]):
                self._acted(shrink_key)
                actions.append(TuneAction(
                    "retire_buffers", sig.pipeline,
                    reason=f"pool under half use (in-flight "
                           f"{sig.in_flight:.2f}/{sig.nbuffers})"))
        return actions


class TuneController:
    """Samples signals each ``interval`` and applies the policy's actions.

    Attach to a *started* program whose kernel has metrics enabled::

        registry = kernel.enable_metrics()
        prog.add_pipeline(..., replicas={"sort": 1})
        prog.start()
        controller = TuneController(prog, interval=0.002)
        controller.start()
        prog.wait()
        controller.decisions   # what it did, and why

    The controller exits on its own once the program finishes.
    """

    def __init__(self, program: "FGProgram", interval: float,
                 policy: Optional[TunePolicy] = None):
        if interval <= 0:
            raise ReproError(f"interval must be > 0, got {interval}")
        self.program = program
        self.kernel = program.kernel
        self.interval = interval
        self.policy = policy if policy is not None else BacklogPolicy()
        self.decisions: list[TuneDecision] = []
        self.samples: list[TuneSample] = []
        self._proc = None
        #: parallel-safety verdicts by id(fn); the effect scan is pure,
        #: so one verdict per stage function serves every window
        self._safety_cache: dict[int, str] = {}

    def decision_log(self) -> list[dict]:
        """The applied/rejected decisions as JSON-able data.

        This is the structured form of the ``tune`` trace instants that
        :func:`repro.prov.tune_decision_log` harvests into provenance
        records; use it for direct inspection of a controller you own.
        """
        return [{"time": d.time, "kind": d.action.kind,
                 "pipeline": d.action.pipeline, "stage": d.action.stage,
                 "count": d.action.count, "reason": d.action.reason,
                 "applied": d.applied}
                for d in self.decisions]

    def start(self):
        """Spawn the control loop; returns its kernel process."""
        if not self.program._started:
            raise ReproError("TuneController needs a started program; "
                             "call program.start() first")
        if self.kernel.metrics is None:
            raise ReproError("TuneController reads windowed signals from "
                             "the metrics registry; call "
                             "kernel.enable_metrics() before the program "
                             "starts")
        if self._proc is not None:
            raise ReproError("controller already started")
        self._proc = self.kernel.spawn(
            self._run, name=f"{self.program.name}.tuner")
        return self._proc

    # -- signal collection ---------------------------------------------------

    def _counter_delta(self, name: str, t0: float, t1: float) -> float:
        metric = self.kernel.metrics.get(name)
        if metric is None or getattr(metric, "samples", None) is None:
            return 0.0
        return metric.window_delta(t0, t1)

    def _gauge_average(self, name: str, t0: float, t1: float) -> float:
        metric = self.kernel.metrics.get(name)
        if metric is None or getattr(metric, "samples", None) is None:
            return 0.0
        return metric.window_average(t0, t1)

    def sample(self, t0: float, t1: float) -> TuneSample:
        """Build one windowed sample (public for tests and custom loops)."""
        prog = self.program
        stages = []
        for rset in prog.replica_sets():
            if rset.finished or rset.live == 0:
                continue
            p, s = rset.pipeline, rset.stage
            in_q = prog.in_queue(p, s)
            prefix = f"fg.{prog.name}.stage.{s.name}"
            limit = (float(in_q.capacity) if in_q.capacity
                     else float(p.nbuffers))
            stages.append(StageSignal(
                pipeline=p.name, stage=s.name, replicas=rset.live,
                accepts=self._counter_delta(f"{prefix}.accepts", t0, t1),
                wait_seconds=self._counter_delta(
                    f"{prefix}.accept_wait_seconds", t0, t1),
                backlog=self._gauge_average(
                    f"channel.{in_q.name}.occupancy", t0, t1),
                backlog_limit=limit, window=t1 - t0))
        pools = []
        for p in prog.pipelines:
            pools.append(PoolSignal(
                pipeline=p.name, nbuffers=p.nbuffers,
                in_flight=self._gauge_average(
                    f"fg.{prog.name}.pipeline.{p.name}.buffers_in_flight",
                    t0, t1)))
        return TuneSample(t0, t1, tuple(stages), tuple(pools))

    # -- action application --------------------------------------------------

    def _pipeline_named(self, name: str):
        for p in self.program.pipelines:
            if p.name == name:
                return p
        raise ReproError(f"policy named unknown pipeline {name!r}")

    def _replica_unsafe(self, pipeline, stage_name: str) -> bool:
        """True when the effect analysis classifies the stage function
        as a shared-state writer: interchangeable copies would race on
        that state (FG110's dynamic twin), so the controller refuses to
        scale it no matter what the policy asked for."""
        from repro.check import dataflow

        stage = next((s for s in pipeline.stages
                      if s.name == stage_name), None)
        fn = getattr(stage, "fn", None)
        if fn is None:
            return False
        cached = self._safety_cache.get(id(fn))
        if cached is None:
            cached = dataflow.classify_fn(fn)
            self._safety_cache[id(fn)] = cached
        return cached == dataflow.WRITE_SHARED

    def apply(self, action: TuneAction) -> bool:
        """Apply one action; returns whether it took effect."""
        prog = self.program
        p = self._pipeline_named(action.pipeline)
        if action.kind == "add_replica":
            if self._replica_unsafe(p, action.stage):
                applied = False
                self.kernel.metrics.counter(
                    "tune.add_replica.unsafe").inc()
            else:
                applied = prog.add_replica(p, action.stage)
        elif action.kind == "add_buffers":
            prog.add_buffers(p, action.count)
            applied = True
        elif action.kind == "retire_buffers":
            applied = prog.retire_buffers(p, action.count) > 0
        else:
            raise ReproError(f"unknown tune action kind {action.kind!r}")
        now = self.kernel.now()
        self.decisions.append(TuneDecision(now, action, applied))
        registry = self.kernel.metrics
        registry.counter("tune.decisions").inc()
        registry.counter(f"tune.{action.kind}"
                         + ("" if applied else ".rejected")).inc()
        tracer = getattr(self.kernel, "tracer", None)
        if tracer is not None:
            target = action.stage or action.pipeline
            tracer.record(now, f"{prog.name}.tuner", TUNE,
                          f"{action.kind} {target}: {action.reason}")
        return applied

    # -- control loop --------------------------------------------------------

    def _run(self) -> None:
        last = self.kernel.now()
        while not self.program.finished:
            self.kernel.sleep(self.interval)
            now = self.kernel.now()
            if self.program.finished or now <= last:
                break
            sample = self.sample(last, now)
            self.samples.append(sample)
            for action in self.policy.decide(sample):
                self.apply(action)
            last = now
