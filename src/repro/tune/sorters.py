"""Auto-tuning the sorting benchmarks: spaces, offline and adaptive tuners.

Three layers, all deterministic under the virtual-time kernel:

* :func:`dsort_space` / :func:`csort_space` build the search space for a
  given problem size: buffer-pool size and sort-stage replication for
  both sorts, plus each sort's *geometry* axis — dsort's pass-1 block
  size and csort's column count — because at disk-bound benchmark scale
  the geometry, not the pool, dominates the makespan;
* :func:`tune_sort` runs the offline search (hill climb by default,
  exhaustive grid on request): every candidate config is one fresh
  verified cluster run via ``run_sort(tune=...)``;
* :func:`adaptive_tune_sort` is the feedback scheduler: instead of
  searching blindly it runs the current config *instrumented*, reads the
  same signals the in-run :class:`~repro.tune.controller.TuneController`
  uses (disk-busy share, sort-stage inbound backlog, buffer-pool
  pressure), and tries the axis those signals implicate first, keeping
  every improvement.  It typically reaches within a few percent of the
  offline optimum in a fraction of the evaluations.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ReproError
from repro.tune.search import (
    Axis,
    TuneResult,
    TuneSpace,
    grid_search,
    hill_climb,
)

__all__ = ["AdaptiveResult", "adaptive_tune_sort", "csort_space",
           "dsort_space", "record_best_run", "sort_evaluator", "tune_sort"]

#: pool sizes worth trying (the seed default is 4)
_NBUFFERS = (2, 3, 4, 6, 8)
#: sort-stage replica counts worth trying
_REPLICAS = (1, 2, 3, 4)


def dsort_space(n_nodes: int, n_per_node: int) -> TuneSpace:
    """Axes for dsort: pass-1 block size, pool size, sort replicas.

    The geometry ladder comes from the shared planner enumeration
    (:func:`repro.plan.dsort_block_candidates`), so tuner and planner
    search the same space by construction.
    """
    from repro.bench.harness import default_dsort_config
    from repro.plan.geometry import dsort_block_candidates

    n_total = n_nodes * n_per_node
    default = default_dsort_config(n_total, n_nodes)
    return TuneSpace([
        Axis("block_records", dsort_block_candidates(n_nodes, n_per_node),
             default=default.block_records),
        Axis("nbuffers", _NBUFFERS, default=default.nbuffers),
        Axis("sort_replicas", _REPLICAS, default=default.sort_replicas),
    ])


def csort_space(n_nodes: int, n_per_node: int) -> TuneSpace:
    """Axes for csort: column count, pool size, sort replicas.

    The legal column counts come from the shared planner enumeration
    (:func:`repro.plan.csort_s_candidates`).
    """
    from repro.bench.harness import default_csort_config
    from repro.plan.geometry import csort_s_candidates
    from repro.sorting.columnsort.steps import plan_columnsort

    n_total = n_nodes * n_per_node
    default = default_csort_config(n_total, n_nodes)
    plan = plan_columnsort(n_total, n_nodes)
    return TuneSpace([
        Axis("s_override", csort_s_candidates(n_nodes, n_per_node),
             default=plan.s),
        Axis("nbuffers", _NBUFFERS, default=default.nbuffers),
        Axis("sort_replicas", _REPLICAS, default=default.sort_replicas),
    ])


def _space_for(sorter: str, n_nodes: int, n_per_node: int) -> TuneSpace:
    if sorter in ("dsort", "dsort-linear"):
        return dsort_space(n_nodes, n_per_node)
    if sorter == "csort":
        return csort_space(n_nodes, n_per_node)
    raise ReproError(f"no tune space for sorter {sorter!r}; expected "
                     "'dsort', 'dsort-linear', or 'csort'")


def sort_evaluator(sorter: str, distribution: str = "uniform",
                   schema=None, n_nodes: int = 4, n_per_node: int = 4096,
                   seed: int = 0, observe: bool = False):
    """``evaluate(config) -> makespan`` running one fresh verified
    cluster per call.  With ``observe=True`` the callable also keeps its
    last :class:`~repro.bench.harness.SortRun` on ``evaluate.last_run``
    (the adaptive tuner reads its metrics)."""
    from repro.bench.harness import run_sort
    from repro.pdm.records import RecordSchema

    if schema is None:
        schema = RecordSchema.paper_16()

    def evaluate(config: dict) -> float:
        run = run_sort(sorter, distribution, schema, n_nodes=n_nodes,
                       n_per_node=n_per_node, seed=seed, observe=observe,
                       tune=config)
        evaluate.last_run = run
        return run.total_time

    evaluate.last_run = None
    return evaluate


def _warm_start_config(space: TuneSpace, plan) -> dict:
    """Snap a plan's config onto the space's axes (nearest legal value
    per axis; axes the plan does not set keep their default)."""
    config = space.default_config()
    for axis in space.axes:
        if axis.name not in plan.config:
            continue
        want = plan.config[axis.name]
        config[axis.name] = min(
            axis.values, key=lambda v: (abs(v - want), v))
    return config


def tune_sort(sorter: str, distribution: str = "uniform", schema=None,
              n_nodes: int = 4, n_per_node: int = 4096, seed: int = 0,
              method: str = "hill", warm_start=None) -> TuneResult:
    """Offline-tune one sorting benchmark; returns the search result.

    ``method`` is ``"hill"`` (deterministic coordinate descent, the
    default) or ``"grid"`` (exhaustive; exact but much slower).

    ``warm_start`` seeds the hill climb at a compiled plan's config
    instead of the hand-tuned default: pass a
    :class:`repro.plan.Plan`, or ``True`` to compile one on the spot.
    When the planner's analytic optimum is at or near the true optimum
    the climb converges in a fraction of the evaluations.
    """
    space = _space_for(sorter, n_nodes, n_per_node)
    evaluate = sort_evaluator(sorter, distribution, schema,
                              n_nodes=n_nodes, n_per_node=n_per_node,
                              seed=seed)
    start = None
    if warm_start is not None and warm_start is not False:
        if warm_start is True:
            from repro.plan import plan_sort
            from repro.pdm.records import RecordSchema

            record_bytes = (schema.record_bytes if schema is not None
                            else RecordSchema.paper_16().record_bytes)
            warm_start = plan_sort(sorter, n_nodes, n_per_node,
                                   record_bytes=record_bytes)
        start = _warm_start_config(space, warm_start)
    if method == "hill":
        return hill_climb(evaluate, space, start=start)
    if method == "grid":
        return grid_search(evaluate, space)
    raise ReproError(f"unknown tune method {method!r}; "
                     "expected 'hill' or 'grid'")


# -- adaptive feedback scheduler -------------------------------------------


@dataclasses.dataclass
class AdaptiveResult:
    """Outcome of one adaptive tuning session."""

    best: dict
    best_score: float
    baseline: dict
    baseline_score: float
    #: every run: (config, score, the axis priorities that drove it)
    history: list[tuple[dict, float, dict]]
    evaluations: int

    @property
    def improvement(self) -> float:
        if self.baseline_score <= 0:
            return 0.0
        return 1.0 - self.best_score / self.baseline_score

    def to_json(self) -> dict:
        return {
            "method": "adaptive",
            "best": dict(sorted(self.best.items())),
            "best_score": self.best_score,
            "baseline": dict(sorted(self.baseline.items())),
            "baseline_score": self.baseline_score,
            "improvement": self.improvement,
            "evaluations": self.evaluations,
            "history": [{"config": dict(sorted(c.items())), "score": s,
                         "signals": dict(sorted(d.items()))}
                        for c, s, d in self.history],
        }


def _diagnose(run, geometry_axis: str) -> dict:
    """Axis name -> priority, from one instrumented run's signals.

    The same evidence model as :class:`BacklogPolicy`, read from run-wide
    aggregates instead of windows: disk-bound time implicates the
    geometry axis (change how much each disk op moves), backlog queued in
    front of the sort stage implicates replication, and a pool whose
    buffers averaged near all-in-flight implicates the pool size.
    """
    priorities = {geometry_axis: 0.0, "sort_replicas": 0.0,
                  "nbuffers": 0.0}
    if run.total_time > 0:
        priorities[geometry_axis] = run.max_disk_busy / run.total_time
    if run.metrics is None:
        return priorities
    backlog = []
    pressure = []
    for metric in run.metrics:
        name = metric.name
        if name.startswith("channel.") and name.endswith("->sort.occupancy"):
            backlog.append(metric.time_average())
        elif name.endswith(".buffers_in_flight") and metric.max > 0:
            pressure.append(metric.time_average() / metric.max)
    if backlog:
        priorities["sort_replicas"] = min(
            1.0, sum(backlog) / len(backlog) / 2.0)
    if pressure:
        priorities["nbuffers"] = max(pressure)
    return priorities


def adaptive_tune_sort(sorter: str, distribution: str = "uniform",
                       schema=None, n_nodes: int = 4,
                       n_per_node: int = 4096, seed: int = 0,
                       max_runs: int = 16) -> AdaptiveResult:
    """Feedback-tune one sorting benchmark, run by run.

    Each round runs the incumbent config instrumented, turns its signals
    into axis priorities (:func:`_diagnose`), and probes one step each
    way along the highest-priority axis that still has an untried
    improving move; improvements are kept immediately.  Stops when no
    axis yields an improvement or after ``max_runs`` cluster runs.
    """
    space = _space_for(sorter, n_nodes, n_per_node)
    geometry_axis = space.axes[0].name
    evaluate = sort_evaluator(sorter, distribution, schema,
                              n_nodes=n_nodes, n_per_node=n_per_node,
                              seed=seed, observe=True)
    scores: dict[tuple, float] = {}
    runs_by_key: dict[tuple, object] = {}
    history: list[tuple[dict, float, dict]] = []
    runs = 0

    def score_of(config: dict) -> float:
        nonlocal runs
        key = tuple(sorted(config.items()))
        if key not in scores:
            scores[key] = evaluate(config)
            runs_by_key[key] = evaluate.last_run
            runs += 1
        return scores[key]

    def run_of(config: dict):
        return runs_by_key[tuple(sorted(config.items()))]

    current = space.default_config()
    current_score = score_of(current)
    baseline, baseline_score = dict(current), current_score
    diagnosis = _diagnose(run_of(current), geometry_axis)
    history.append((dict(current), current_score, dict(diagnosis)))
    axes_by_name = {a.name: a for a in space.axes}

    improved = True
    while improved and runs < max_runs:
        improved = False
        ordered = sorted(diagnosis, key=lambda n: (-diagnosis[n], n))
        for name in ordered:
            axis = axes_by_name[name]
            i = axis.index_of(current[name])
            steps = [j for j in (i - 1, i + 1)
                     if 0 <= j < len(axis.values)]
            best_move, best_move_score = None, current_score
            for j in steps:
                if runs >= max_runs:
                    break
                candidate = dict(current, **{name: axis.values[j]})
                score = score_of(candidate)
                if score < best_move_score:
                    best_move, best_move_score = candidate, score
            if best_move is not None:
                current, current_score = best_move, best_move_score
                diagnosis = _diagnose(run_of(current), geometry_axis)
                history.append((dict(current), current_score,
                                dict(diagnosis)))
                improved = True
                break  # re-prioritize from the new config's signals
    return AdaptiveResult(best=current, best_score=current_score,
                          baseline=baseline,
                          baseline_score=baseline_score,
                          history=history, evaluations=runs)


def record_best_run(sorter: str, best: dict, distribution: str = "uniform",
                    schema=None, n_nodes: int = 4, n_per_node: int = 4096,
                    seed: int = 0):
    """Re-run a tuner's winning config with provenance capture.

    Returns the :class:`~repro.prov.record.ProvenanceRecord` of one
    verified run of ``best`` — the replayable artifact a tuning session
    should publish next to its trial log, so "the tuned configuration is
    X% faster" stays a reproducible claim (``python -m repro tune
    --prov-out`` wires this up).
    """
    from repro.bench.harness import run_sort
    from repro.pdm.records import RecordSchema

    if schema is None:
        schema = RecordSchema.paper_16()
    run = run_sort(sorter, distribution, schema, n_nodes=n_nodes,
                   n_per_node=n_per_node, seed=seed, tune=dict(best),
                   provenance=True)
    return run.provenance
