"""repro.tune: adaptive auto-tuning for FG programs.

FG's performance knobs — buffers per pool, copies per stage, how much
each pipeline round moves — have always been hand-tuned.  This package
closes the loop three ways, all deterministic under the virtual-time
kernel:

* :mod:`repro.tune.controller` — an **in-run feedback controller**: a
  kernel process sampling per-stage occupancy and queue-wait signals
  from the metrics registry at round boundaries and applying a pluggable
  policy through the runtime mechanisms
  (:meth:`~repro.core.program.FGProgram.add_replica`,
  :meth:`~repro.core.program.FGProgram.add_buffers`,
  :meth:`~repro.core.program.FGProgram.retire_buffers`), with hysteresis
  and caps;
* :mod:`repro.tune.search` — **offline search**: deterministic hill
  climb / grid over a :class:`TuneSpace` of axes, each evaluation one
  fresh simulated run;
* :mod:`repro.tune.sorters` — both applied to the paper's sorting
  benchmarks, including :func:`adaptive_tune_sort`, the run-by-run
  feedback scheduler that reads each run's signals to decide which axis
  to move next.

Surfaced as ``python -m repro tune``; the guide is docs/TUNING.md.
"""

from repro.tune.controller import (
    BacklogPolicy,
    PoolSignal,
    StageSignal,
    TuneAction,
    TuneController,
    TuneDecision,
    TunePolicy,
    TuneSample,
)
from repro.tune.search import (
    Axis,
    Trial,
    TuneResult,
    TuneSpace,
    grid_search,
    hill_climb,
)
from repro.tune.sorters import (
    AdaptiveResult,
    adaptive_tune_sort,
    csort_space,
    dsort_space,
    record_best_run,
    sort_evaluator,
    tune_sort,
)

__all__ = [
    "TuneController",
    "TunePolicy",
    "BacklogPolicy",
    "TuneAction",
    "TuneDecision",
    "TuneSample",
    "StageSignal",
    "PoolSignal",
    "Axis",
    "TuneSpace",
    "Trial",
    "TuneResult",
    "grid_search",
    "hill_climb",
    "AdaptiveResult",
    "dsort_space",
    "csort_space",
    "sort_evaluator",
    "tune_sort",
    "adaptive_tune_sort",
    "record_best_run",
]
