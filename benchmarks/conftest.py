"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper (see DESIGN.md's
experiment index), asserts the *shape* of the paper's result (who wins, by
roughly what factor), and writes the regenerated rows to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.

The quantity of interest is the SIMULATED time inside each experiment;
pytest-benchmark's wall-clock measurement is kept (rounds=1) so the suite
doubles as a tracker of simulation cost.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> None:
    """Persist a regenerated table and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def save_observability(name: str, tracer, metrics=None,
                       processes=None) -> None:
    """Persist a benchmark run's trace/metrics artifacts.

    Writes ``results/<name>.trace.json`` (Chrome-trace format — open in
    chrome://tracing or https://ui.perfetto.dev) and, when a registry is
    given, ``results/<name>.metrics.json`` (the registry snapshot).
    """
    from repro.obs import write_chrome_trace, write_metrics_json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    trace_path = os.path.join(RESULTS_DIR, f"{name}.trace.json")
    doc = write_chrome_trace(trace_path, tracer, metrics=metrics,
                             processes=processes)
    print(f"[saved {len(doc['traceEvents'])} trace events to {trace_path}]")
    if metrics is not None:
        metrics_path = os.path.join(RESULTS_DIR, f"{name}.metrics.json")
        write_metrics_json(metrics_path, metrics)
        print(f"[saved metrics snapshot to {metrics_path}]")


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner
