"""Observability artifact: a per-thread Gantt of dsort's pipelines.

Not a paper figure — the raw material behind all of them.  Runs dsort on
two nodes with the execution tracer attached and saves a Gantt chart of
node 0's FG threads, making the overlap that produces the Figure-8
numbers directly visible ('#' = timed work, '+' = queued on a busy
resource, '.' = waiting for data).  The same run also emits the
machine-readable artifacts — ``stage_trace.trace.json`` (Chrome-trace,
node-0 stage threads), ``stage_trace.metrics.json`` (kernel-time metrics
snapshot), and ``stage_trace.bottleneck.txt`` (limiting-stage report) —
that EXPERIMENTS.md's observability section points at.
"""

from conftest import save_observability, save_result

from repro.bench.harness import benchmark_hardware
from repro.cluster import Cluster
from repro.obs import analyze_bottleneck
from repro.pdm.records import RecordSchema
from repro.sim import Tracer, VirtualTimeKernel
from repro.sorting.dsort import DsortConfig, run_dsort
from repro.sorting.verify import verify_striped_output
from repro.workloads.generator import generate_input


def test_dsort_stage_trace(once):
    def experiment():
        tracer = Tracer()
        kernel = VirtualTimeKernel(tracer=tracer)
        kernel.enable_metrics()
        cluster = Cluster(n_nodes=2, hardware=benchmark_hardware(),
                          kernel=kernel)
        schema = RecordSchema.paper_16()
        manifest = generate_input(cluster, schema, 16384, "uniform",
                                  seed=6)
        config = DsortConfig(block_records=2048,
                             vertical_block_records=1024,
                             out_block_records=1024, oversample=32)
        cluster.run(run_dsort, schema, config)
        verify_striped_output(cluster, manifest, config.output_file,
                              config.out_block_records)
        return tracer, kernel

    tracer, kernel = once(experiment)
    elapsed = kernel.now()
    node0_stages = [n for n in tracer.process_names()
                    if "@0" in n and ".source" not in n
                    and ".sink" not in n and "family" not in n
                    and not n.startswith("main")]
    chart = tracer.gantt(width=100, processes=node0_stages)
    save_result("stage_trace",
                f"dsort on 2 nodes — node 0 stage threads "
                f"({elapsed * 1e3:.2f} ms simulated)\n" + chart)
    save_observability("stage_trace", tracer, metrics=kernel.metrics,
                       processes=node0_stages)
    report = analyze_bottleneck(tracer, processes=node0_stages)
    save_result("stage_trace.bottleneck", report.render())
    assert report.bottleneck.process in node0_stages
    lines = chart.splitlines()
    assert len(lines) == len(node0_stages) + 1
    # pass-1 and pass-2 stages both present
    assert any("dsort-p1@0" in line for line in lines)
    assert any("dsort-p2@0" in line for line in lines)
    # somebody did timed work and somebody waited
    body = "\n".join(lines[1:])
    assert "#" in body and "." in body
