"""Recovery overhead: dsort under fault injection vs the fault-free run.

The robustness layer's promise is that faults cost *time*, never
*correctness*: a chaos run must produce byte-identical sorted output and
pay only for the retries, the straggler drag, and any pass restarts.
This benchmark quantifies that price on the same dataset at three fault
levels:

* **baseline** — no fault plan (the injector is never consulted; the
  timing must match the plain fault-free model);
* **transient** — per-op disk faults + wire drops + one straggler,
  all absorbed by retry/backoff inside the pass;
* **restart** — the transient mix plus one permanent disk fault that
  kills a pass-1 pipeline and forces a cluster-wide pass restart.
"""

from conftest import save_result

from repro.bench.reporting import render_table
from repro.faults import FaultPlan, chaos_plan, run_chaos_dsort

NODES = 3
RECORDS = 1500
SEED = 42
SIZES = dict(block_records=128, vertical_block_records=64,
             out_block_records=128, oversample=8)


def _run(plan):
    return run_chaos_dsort(n_nodes=NODES, records_per_node=RECORDS,
                           seed=SEED, plan=plan, pass_retries=2,
                           trace=False, **SIZES)


def fault_recovery_experiment():
    baseline = _run(FaultPlan(seed=SEED))
    transient = _run(chaos_plan(SEED, NODES, disk_fault_rate=0.02,
                                drop_rate=0.01, straggler_rank=1,
                                straggler_slowdown=2.0))
    restart = _run(chaos_plan(SEED, NODES, disk_fault_rate=0.02,
                              drop_rate=0.01, straggler_rank=1,
                              straggler_slowdown=2.0,
                              permanent_disk_op=25,
                              permanent_disk_rank=1))
    return baseline, transient, restart


def test_fault_recovery_overhead(once):
    baseline, transient, restart = once(fault_recovery_experiment)

    rows = []
    for label, rep in (("baseline", baseline), ("transient", transient),
                       ("restart", restart)):
        rows.append([label, rep.elapsed, rep.elapsed / baseline.elapsed,
                     rep.fault_summary["total"], rep.pass_restarts])
    save_result(
        "fault_recovery",
        f"dsort recovery overhead ({NODES} nodes, "
        f"{NODES * RECORDS} records, seed {SEED})\n"
        + render_table(
            ["fault level", "simulated s", "vs baseline",
             "faults fired", "pass restarts"], rows))

    # correctness is non-negotiable: every level verified and produced
    # the identical sorted output
    assert baseline.verified and transient.verified and restart.verified
    assert transient.output_digest == baseline.output_digest
    assert restart.output_digest == baseline.output_digest
    # the fault levels actually exercised what they claim
    assert baseline.fault_summary["total"] == 0
    assert transient.fault_summary["total"] > 0
    assert transient.pass_restarts == 0
    assert restart.pass_restarts >= 1
    # recovery costs time, and more faults cost more of it
    assert transient.elapsed > baseline.elapsed
    assert restart.elapsed > transient.elapsed
