"""Recovery overhead: dsort under fault injection vs the fault-free run.

The robustness layer's promise is that faults cost *time*, never
*correctness*: a chaos run must produce byte-identical sorted output and
pay only for the retries, the straggler drag, and any pass restarts.
This benchmark quantifies that price on the same dataset at three fault
levels:

* **baseline** — no fault plan (the injector is never consulted; the
  timing must match the plain fault-free model);
* **transient** — per-op disk faults + wire drops + one straggler,
  all absorbed by retry/backoff inside the pass;
* **restart** — the transient mix plus one permanent disk fault that
  kills a pass-1 pipeline and forces a cluster-wide pass restart.

It then quantifies the fine-grained recovery layer (``repro.recover``)
against its acceptance gates:

* **checkpoint resume** — a crash at 80% of pass 2 recovers by
  re-running only the blocks that never became durable; the recovery
  overhead (faulted − clean, same config) must be ≤ 25% of what the
  legacy full-pass-restart path pays;
* **speculation** — a 3x straggler with speculative backup execution
  enabled finishes ≥ 1.5x faster than the same straggler without it;
* **byte identity** — clean, faulted, and provenance-replayed runs all
  produce the identical sorted output.
"""

from conftest import save_result

from repro.bench.reporting import render_table
from repro.faults import FaultPlan, chaos_plan, run_chaos_dsort
from repro.prov import replay
from repro.recover import RecoverPolicy, SpeculationPolicy

NODES = 3
RECORDS = 1500
SEED = 42
SIZES = dict(block_records=128, vertical_block_records=64,
             out_block_records=128, oversample=8)

#: checkpoint-resume scenario: big enough that a rank owns hundreds of
#: output pieces, so "resume from the durable prefix" visibly beats
#: "re-run the pass from scratch"
CK_RECORDS = 25600
CK_SIZES = dict(block_records=1024, vertical_block_records=256,
                out_block_records=64, oversample=8)
#: bounded mailboxes give the checkpointed run backpressure: durable
#: progress then tracks merge progress instead of lagging behind an
#: unbounded in-flight queue (the legacy path has no drain protocol and
#: would deadlock under a bound, so it keeps the default)
CK_MAILBOX_BYTES = 8 * 64 * 16

#: speculation scenario: read-heavy merge geometry — plenty of seek work
#: a backup merge on the buddy node can take over
SPEC_SIZES = dict(block_records=256, vertical_block_records=64,
                  out_block_records=256)


def _run(plan):
    return run_chaos_dsort(n_nodes=NODES, records_per_node=RECORDS,
                           seed=SEED, plan=plan, pass_retries=2,
                           trace=False, **SIZES)


def fault_recovery_experiment():
    baseline = _run(FaultPlan(seed=SEED))
    transient = _run(chaos_plan(SEED, NODES, disk_fault_rate=0.02,
                                drop_rate=0.01, straggler_rank=1,
                                straggler_slowdown=2.0))
    restart = _run(chaos_plan(SEED, NODES, disk_fault_rate=0.02,
                              drop_rate=0.01, straggler_rank=1,
                              straggler_slowdown=2.0,
                              permanent_disk_op=25,
                              permanent_disk_rank=1))
    return baseline, transient, restart


def test_fault_recovery_overhead(once):
    baseline, transient, restart = once(fault_recovery_experiment)

    rows = []
    for label, rep in (("baseline", baseline), ("transient", transient),
                       ("restart", restart)):
        rows.append([label, rep.elapsed, rep.elapsed / baseline.elapsed,
                     rep.fault_summary["total"], rep.pass_restarts])
    save_result(
        "fault_recovery",
        f"dsort recovery overhead ({NODES} nodes, "
        f"{NODES * RECORDS} records, seed {SEED})\n"
        + render_table(
            ["fault level", "simulated s", "vs baseline",
             "faults fired", "pass restarts"], rows))

    # correctness is non-negotiable: every level verified and produced
    # the identical sorted output
    assert baseline.verified and transient.verified and restart.verified
    assert transient.output_digest == baseline.output_digest
    assert restart.output_digest == baseline.output_digest
    # the fault levels actually exercised what they claim
    assert baseline.fault_summary["total"] == 0
    assert transient.fault_summary["total"] > 0
    assert transient.pass_restarts == 0
    assert restart.pass_restarts >= 1
    # recovery costs time, and more faults cost more of it
    assert transient.elapsed > baseline.elapsed
    assert restart.elapsed > transient.elapsed


def _crash_at(clean, rank, frac):
    """A permanent disk fault aimed at ``frac`` of ``rank``'s pass 2.

    The window is aimed from the *same configuration's* clean run (the
    per-rank phase timings in ``rank_times``), so legacy and
    checkpointed variants each crash at 80% of their own pass 2.
    """
    rt = next(t for t in clean.rank_times if t["rank"] == rank)
    at = rt["sampling"] + rt["pass1"] + frac * rt["pass2"]
    return FaultPlan(seed=SEED).with_disk_faults(
        rate=1.0, rank=rank, permanent=True, start=at, end=at + 0.04)


def checkpoint_resume_experiment():
    def run(plan, recover=None, mbox=None):
        return run_chaos_dsort(n_nodes=NODES, records_per_node=CK_RECORDS,
                               seed=SEED, plan=plan, pass_retries=3,
                               recover=recover,
                               mailbox_capacity_bytes=mbox, **CK_SIZES)

    legacy_clean = run(FaultPlan(seed=SEED))
    ck_clean = run(FaultPlan(seed=SEED), recover=RecoverPolicy(),
                   mbox=CK_MAILBOX_BYTES)
    legacy_faulted = run(_crash_at(legacy_clean, rank=1, frac=0.8))
    ck_faulted = run(_crash_at(ck_clean, rank=1, frac=0.8),
                     recover=RecoverPolicy(), mbox=CK_MAILBOX_BYTES)
    return legacy_clean, legacy_faulted, ck_clean, ck_faulted


def test_checkpoint_resume_beats_full_pass_restart(once):
    legacy_clean, legacy_faulted, ck_clean, ck_faulted = once(
        checkpoint_resume_experiment)

    full_restart = legacy_faulted.elapsed - legacy_clean.elapsed
    resume = ck_faulted.elapsed - ck_clean.elapsed
    ratio = resume / full_restart

    rows = [
        ["full pass restart", legacy_clean.elapsed, legacy_faulted.elapsed,
         full_restart, ""],
        ["block checkpoints", ck_clean.elapsed, ck_faulted.elapsed,
         resume, f"{ratio:.2f}"],
    ]
    save_result(
        "checkpoint_resume",
        f"crash at 80% of pass 2 ({NODES} nodes, {NODES * CK_RECORDS} "
        f"records, seed {SEED})\n"
        + render_table(
            ["recovery mode", "clean s", "faulted s", "overhead s",
             "vs restart"], rows))

    # both variants actually crashed and re-ran the pass
    assert legacy_faulted.pass_restarts >= 1
    assert ck_faulted.pass_restarts >= 1
    # the retry resumed from journaled blocks instead of starting over
    resumes = [d for d in ck_faulted.recovery_decisions
               if d["kind"] == "resume"]
    assert resumes, ck_faulted.recovery_decisions
    # correctness: byte-identical output on every path
    assert ck_faulted.verified and legacy_faulted.verified
    assert (legacy_clean.output_digest == legacy_faulted.output_digest
            == ck_clean.output_digest == ck_faulted.output_digest)
    # the acceptance gate: recovery overhead <= 25% of a full restart
    assert ratio <= 0.25, (resume, full_restart, ratio)


def speculation_experiment():
    spec_policy = RecoverPolicy(
        checkpoint=False, backup_runs=True,
        speculation=SpeculationPolicy(interval=0.01, patience=2,
                                      min_progress=0.02))

    def run(plan, recover):
        return run_chaos_dsort(seed=SEED, plan=plan, recover=recover,
                               **SPEC_SIZES)

    clean = run(FaultPlan(seed=SEED), RecoverPolicy(checkpoint=False))
    straggle = FaultPlan(seed=SEED).with_straggler(
        rank=1, slowdown=3.0, start=0.5 * clean.elapsed)
    base = run(straggle, RecoverPolicy(checkpoint=False))
    spec = run(straggle, spec_policy)
    return clean, base, spec


def test_speculation_beats_the_straggler(once):
    clean, base, spec = once(speculation_experiment)

    speedup = base.elapsed / spec.elapsed
    rows = [
        ["no straggler", clean.elapsed, ""],
        ["3x straggler, no speculation", base.elapsed, ""],
        ["3x straggler, speculation", spec.elapsed, f"{speedup:.2f}x"],
    ]
    save_result(
        "speculation",
        f"speculative backup execution (3 nodes, seed {SEED})\n"
        + render_table(["run", "simulated s", "speedup"], rows))

    # the watcher fired and a backup won the race
    kinds = [d["kind"] for d in spec.recovery_decisions]
    assert "speculate" in kinds, spec.recovery_decisions
    assert "winner" in kinds
    # correctness: whoever wins, the bytes match the clean run
    assert spec.verified
    assert spec.output_digest == clean.output_digest
    assert base.output_digest == clean.output_digest
    # the acceptance gate: speculation pays >= 1.5x on a 3x straggler
    assert speedup >= 1.5, (base.elapsed, spec.elapsed, speedup)


def replay_identity_experiment():
    clean = run_chaos_dsort(seed=SEED, plan=FaultPlan(seed=SEED),
                            recover=RecoverPolicy(), **SPEC_SIZES)
    at = 0.6 * clean.elapsed
    plan = FaultPlan(seed=SEED).with_disk_faults(
        rate=1.0, rank=1, permanent=True, start=at, end=at + 0.04)
    faulted = run_chaos_dsort(seed=SEED, plan=plan,
                              recover=RecoverPolicy(), **SPEC_SIZES)
    replayed = replay(faulted.provenance)
    return clean, faulted, replayed


def test_output_identical_across_clean_faulted_replayed(once):
    clean, faulted, replayed = once(replay_identity_experiment)

    rows = [
        ["clean", clean.output_digest[:16]],
        ["faulted", faulted.output_digest[:16]],
        ["replayed", replayed.replayed.digests["output"][:16]],
    ]
    save_result(
        "recovery_replay_identity",
        f"output digests across recovery paths (seed {SEED})\n"
        + render_table(["run", "output digest (prefix)"], rows))

    # the fault actually hit and the recovery layer handled it
    assert faulted.fault_summary["total"] > 0
    assert faulted.verified and clean.verified
    # clean == faulted: faults cost time, never bytes
    assert faulted.output_digest == clean.output_digest
    # replayed == faulted: provenance replay reproduces every digest
    # (output, metrics, trace) byte-for-byte
    assert replayed.ok, replayed.matches
    assert replayed.replayed.digests["output"] == faulted.output_digest
