"""Figure 5(b): virtual stages collapse k pipelines' thread cost to O(1).

"Most current systems cannot handle hundreds of threads" — with virtual
stages, FG creates one thread for the stage group and auto-virtualizes
the sources and sinks, so 256 sorted runs cost 3 threads, not 768.
"""

from conftest import save_result

from repro.bench import render_table, virtual_stage_experiment


def test_virtual_stage_thread_counts(once):
    results = once(virtual_stage_experiment, (4, 32, 256))
    rows = [[k, counts["plain"], counts["virtual"]]
            for k, counts in sorted(results.items())]
    save_result("virtual_stages", "threads for k single-stage pipelines\n"
                + render_table(["k", "plain threads", "virtual threads"],
                               rows))
    for k, counts in results.items():
        assert counts["plain"] == 3 * k      # source + stage + sink per k
        assert counts["virtual"] == 3        # one group of each, any k
