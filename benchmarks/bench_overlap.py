"""The FG headline claim (Figures 1-2, and the SPAA'06 paper's thesis):
running stages asynchronously in a pipeline overlaps high-latency
operations, so elapsed time approaches the bottleneck stage's time rather
than the sum of all stages.
"""

from conftest import save_result

from repro.bench import overlap_experiment, render_table


def test_pipeline_overlap_vs_serial(once):
    results = once(overlap_experiment)
    save_result("overlap", "FG pipeline vs serial execution (one node, "
                "read -> compute -> write)\n" + render_table(
                    ["mode", "simulated seconds"],
                    [["serial", results["serial"]],
                     ["pipeline", results["pipeline"]],
                     ["speedup", results["speedup"]]]))
    # read+write share one disk arm, so the best possible speedup for
    # compute == one-block-I/O is 1.5x; demand most of it
    assert results["speedup"] > 1.3
