"""repro.tune acceptance benchmarks: offline, adaptive, and in-run.

Three claims, all on the deterministic virtual clock:

* the offline tuner finds a config at least 10% faster (simulated
  makespan) than the hand-tuned default for both dsort and csort —
  the geometry axes (pass-1 block size, column count) carry the win,
  because both sorts are disk-bound at benchmark scale;
* the adaptive feedback scheduler lands within 5% of the offline
  optimum in no more evaluations;
* the in-run TuneController shortens a compute-bound pipeline by
  replicating its bottleneck stage mid-flight.

Every result is byte-deterministic across same-seed runs; the JSON
artifacts under ``results/`` are what ``repro tune`` would emit.
"""

import json
import os

from conftest import RESULTS_DIR, save_observability, save_result

from repro.bench import render_table
from repro.core import FGProgram, Stage
from repro.sim import Tracer, VirtualTimeKernel
from repro.tune import (
    BacklogPolicy,
    TuneController,
    adaptive_tune_sort,
    tune_sort,
)

N_NODES = 4
N_PER_NODE = 4096
SEED = 0


def save_json(name: str, doc: dict) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[saved tuner result to {path}]")
    return path


def tune_both(sorter):
    offline = tune_sort(sorter, n_nodes=N_NODES, n_per_node=N_PER_NODE,
                        seed=SEED, method="hill")
    adaptive = adaptive_tune_sort(sorter, n_nodes=N_NODES,
                                  n_per_node=N_PER_NODE, seed=SEED)
    return offline, adaptive


def test_tuner_beats_default_and_adaptive_tracks_it(once):
    results = once(lambda: {s: tune_both(s) for s in ("dsort", "csort")})

    rows = []
    for sorter, (offline, adaptive) in results.items():
        save_json(f"tune_{sorter}_hill", offline.to_json())
        save_json(f"tune_{sorter}_adaptive", adaptive.to_json())
        gap = adaptive.best_score / offline.best_score - 1.0
        rows.append([sorter, offline.baseline_score * 1e3,
                     offline.best_score * 1e3,
                     f"{offline.improvement:.1%}",
                     offline.evaluations,
                     adaptive.best_score * 1e3,
                     f"{gap:.2%}", adaptive.evaluations])

        # the tentpole acceptance criteria
        assert offline.improvement >= 0.10, \
            f"{sorter}: offline win {offline.improvement:.1%} < 10%"
        assert adaptive.best_score <= offline.best_score * 1.05, \
            f"{sorter}: adaptive {adaptive.best_score} not within 5% " \
            f"of offline {offline.best_score}"
        assert adaptive.evaluations <= offline.evaluations

    save_result(
        "tuner",
        "offline hill climb vs adaptive feedback scheduler "
        f"({N_NODES} nodes x {N_PER_NODE} records, seed {SEED})\n"
        + render_table(["sorter", "default (ms)", "offline best (ms)",
                        "offline win", "evals", "adaptive best (ms)",
                        "gap to offline", "evals"], rows))


def test_tuner_results_are_byte_deterministic(once):
    def twice():
        first = tune_sort("dsort", n_nodes=N_NODES,
                          n_per_node=N_PER_NODE, seed=SEED)
        second = tune_sort("dsort", n_nodes=N_NODES,
                           n_per_node=N_PER_NODE, seed=SEED)
        return first, second

    first, second = once(twice)
    a = json.dumps(first.to_json(), indent=2, sort_keys=True)
    b = json.dumps(second.to_json(), indent=2, sort_keys=True)
    assert a.encode() == b.encode()


def controller_demo(controlled, rounds=48, work_time=0.002):
    """Fast feed ahead of a slow replicated work stage."""
    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)
    kernel.enable_metrics()
    prog = FGProgram(kernel, name="demo")

    def feed(ctx, buf):
        return buf

    def work(ctx, buf):
        kernel.sleep(work_time)
        return buf

    prog.add_pipeline("p", [Stage.map("feed", feed),
                            Stage.map("work", work)],
                      nbuffers=4, buffer_bytes=64, rounds=rounds,
                      replicas={"work": 1})

    controller = None

    def driver():
        nonlocal controller
        prog.start()
        if controlled:
            controller = TuneController(
                prog, interval=0.003,
                policy=BacklogPolicy(patience=1, cooldown=0,
                                     max_replicas=4))
            controller.start()
        prog.wait()

    kernel.spawn(driver, name="driver")
    kernel.run()
    return kernel.now(), prog, controller, tracer, kernel


def test_controller_speeds_up_compute_bound_pipeline(once):
    def experiment():
        base_time, _, _, _, _ = controller_demo(controlled=False)
        tuned = controller_demo(controlled=True)
        repeat = controller_demo(controlled=True)
        return base_time, tuned, repeat

    base_time, tuned, repeat = once(experiment)
    tuned_time, prog, controller, tracer, kernel = tuned
    speedup = base_time / tuned_time
    applied = [d for d in controller.decisions if d.applied]
    rows = [["uncontrolled", base_time * 1e3, 1, "-"],
            ["TuneController", tuned_time * 1e3,
             prog.replica_sets()[0].total,
             f"{len(applied)} actions"]]
    save_result(
        "tuner_controller",
        "in-run feedback control of a compute-bound pipeline "
        f"(speedup {speedup:.2f}x)\n"
        + render_table(["run", "makespan (ms)", "work replicas",
                        "decisions"], rows))
    save_observability("tuner_controller", tracer,
                       metrics=kernel.metrics)

    assert speedup > 1.5, f"controller speedup {speedup:.2f}x <= 1.5x"
    assert any(d.action.kind == "add_replica" for d in applied)
    # determinism: the repeated controlled run is identical
    assert repeat[0] == tuned_time
    assert [(d.time, d.action.kind, d.applied)
            for d in repeat[2].decisions] == \
        [(d.time, d.action.kind, d.applied) for d in controller.decisions]
