"""FGSan overhead: host wall-clock cost of the buffer sanitizer.

FGSan's checks consume no virtual time by design, so the *simulated*
elapsed time of a sanitized run is identical to the plain run — asserted
below.  What sanitizing costs is host CPU: an ownership check on every
``Buffer.data`` access and a state transition on every lifecycle event
(emit/accept/convey/recycle).  This benchmark measures that price as the
wall-clock ratio of a full dsort run with ``REPRO_SANITIZE=1`` vs
without, interleaving repetitions so machine drift hits both arms
equally.
"""

import os
import statistics
import time

from conftest import save_result

from repro.bench import render_table
from repro.bench.harness import run_sort
from repro.cluster import HardwareModel
from repro.pdm.records import RecordSchema

NODES = 2
RECORDS = 32768
REPS = 5


def _hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def _timed_run(sanitize):
    previous = os.environ.get("REPRO_SANITIZE")
    os.environ["REPRO_SANITIZE"] = "1" if sanitize else "0"
    try:
        t0 = time.perf_counter()
        run = run_sort("dsort", "uniform", RecordSchema.paper_16(),
                       n_nodes=NODES, n_per_node=RECORDS, hardware=_hw())
        wall = time.perf_counter() - t0
    finally:
        if previous is None:
            del os.environ["REPRO_SANITIZE"]
        else:
            os.environ["REPRO_SANITIZE"] = previous
    return wall, run


def sanitizer_overhead_experiment():
    walls = {False: [], True: []}
    runs = {}
    for _ in range(REPS):
        for sanitize in (False, True):
            wall, run = _timed_run(sanitize)
            walls[sanitize].append(wall)
            runs[sanitize] = run
    return walls, runs


def test_sanitizer_overhead(once):
    walls, runs = once(sanitizer_overhead_experiment)

    plain, sanitized = runs[False], runs[True]
    plain_wall = statistics.median(walls[False])
    sanitized_wall = statistics.median(walls[True])
    ratio = sanitized_wall / plain_wall

    rows = [["plain", f"{plain_wall:.3f}", "1.00x",
             f"{plain.total_time:.6f}"],
            ["REPRO_SANITIZE=1", f"{sanitized_wall:.3f}", f"{ratio:.2f}x",
             f"{sanitized.total_time:.6f}"]]
    save_result(
        "sanitizer_overhead",
        f"FGSan overhead on dsort ({NODES} nodes, "
        f"{NODES * RECORDS} records, median of {REPS} interleaved reps)\n"
        + render_table(
            ["mode", "host wall s", "vs plain", "simulated s"], rows))

    # the headline guarantee: sanitizing never changes the simulation
    assert plain.verified and sanitized.verified
    assert sanitized.total_time == plain.total_time
    # wall-clock cost stays within an order of magnitude — a loose bound
    # on purpose, since host timing on shared CI is noisy
    assert ratio < 10.0
