"""Section VI prose: adversarial inputs eliciting highly unbalanced
pass-1 communication; "even under these conditions, dsort fared well".

``sorted``/``reverse_sorted`` make every node stream to the same hot
receiver at any moment; ``single_hot_value`` makes 90% of keys collide.
"""

from conftest import save_result

from repro.bench import render_table, unbalanced_experiment


def test_unbalanced_communication(once):
    results = once(unbalanced_experiment)
    rows = []
    for dist, pair in results.items():
        dsort, csort = pair["dsort"], pair["csort"]
        rows.append([dist, dsort.total_time, csort.total_time,
                     dsort.total_time / csort.total_time,
                     dsort.partition_imbalance])
    save_result("unbalanced", "Adversarial (unbalanced-communication) "
                "inputs\n" + render_table(
                    ["distribution", "dsort total", "csort total",
                     "ratio", "partition max/avg"], rows))
    for dist, pair in results.items():
        dsort, csort = pair["dsort"], pair["csort"]
        assert dsort.verified and csort.verified
        # "dsort fared well": at worst marginally slower than csort even
        # under deliberately hostile communication patterns
        assert dsort.total_time / csort.total_time <= 1.10, dist
        # extended keys keep partitions reasonable even here
        assert dsort.partition_imbalance <= 1.30, dist
