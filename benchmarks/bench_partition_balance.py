"""Section VI prose: "In our experiments, all partition sizes were at most
10% greater than the average" — thanks to oversampling plus extended keys.
"""

from conftest import save_result

from repro.bench import render_table, run_sort
from repro.pdm.records import RecordSchema
from repro.workloads.distributions import PAPER_DISTRIBUTIONS


def test_partition_balance_all_distributions(once):
    def experiment():
        schema = RecordSchema.paper_16()
        return {dist: run_sort("dsort", dist, schema)
                for dist in PAPER_DISTRIBUTIONS}

    results = once(experiment)
    rows = [[dist, run.partition_imbalance]
            for dist, run in results.items()]
    save_result("partition_balance",
                "dsort partition size: max over average\n"
                + render_table(["distribution", "max/avg"], rows))
    for dist, run in results.items():
        assert run.verified
        assert run.partition_imbalance <= 1.10, dist
