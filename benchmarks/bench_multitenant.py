"""Multi-tenant scheduling at scale: FIFO vs weighted fair share.

One shared 4-node cluster, ~1000 jobs from two tenants: ``heavy``
floods the queue (~85% of arrivals), ``light`` submits occasionally.
The tenants have identical quotas; only the placement policy differs.

Acceptance gates:

* **fairness** — under FIFO the light tenant's occasional jobs drown in
  the heavy backlog; weighted fair share must cut the light tenant's
  p99 latency strictly below its FIFO p99 while every job still
  completes;
* **preemption resume** — a preempted block job resumes from its last
  durable (journaled) block: summed per-attempt work equals the job's
  block count exactly (no durable block re-done), so the resumed
  attempts perform measurably less work than a full restart would;
* **determinism + replay** — the same seed and arrival trace produce a
  byte-identical decision log across two runs, and the captured ``sched``
  provenance record replays byte-exactly (decisions, metrics, and trace
  digests all match).
"""

from conftest import save_result

from repro.bench.reporting import render_table
from repro.prov import replay
from repro.sched import Quota, run_schedule, synthetic_trace

SEED = 77
N_JOBS = 1000
N_NODES = 4
TENANTS = ("heavy", "light")
QUOTAS = {
    "heavy": Quota(max_nodes=3, max_inflight=3),
    "light": Quota(max_nodes=3, max_inflight=3),
}
#: small block jobs so a thousand of them schedule in reasonable wall
#: time; work per job is still real (modeled compute + journaled writes)
JOB_PARAMS = {"blocks": {"blocks": 3, "compute": 0.004,
                         "block_bytes": 2048}}


def make_trace():
    return synthetic_trace(
        SEED, N_JOBS, TENANTS,
        mean_interarrival=0.012,
        tenant_share={"heavy": 6.0, "light": 1.0},
        params=JOB_PARAMS)


def run_policy(trace, policy, provenance=False):
    return run_schedule(trace, n_nodes=N_NODES, quotas=QUOTAS,
                        policy=policy, seed=SEED,
                        provenance=provenance)


def preemption_experiment():
    """One long low-priority job preempted by high-priority arrivals."""
    from repro.cluster.cluster import Cluster
    from repro.sched import JobSpec, JobState, Scheduler
    from repro.sim.trace import Tracer
    from repro.sim.virtual import VirtualTimeKernel

    kernel = VirtualTimeKernel(tracer=Tracer())
    cluster = Cluster(n_nodes=1, kernel=kernel)
    sched = Scheduler(cluster, {"t": Quota()}, "priority", preempt=True)
    sched.start()
    victim = sched.submit(JobSpec(
        tenant="t", kind="blocks", priority=0,
        params={"blocks": 40, "compute": 0.01}))

    def meddler():
        for _ in range(2):
            kernel.sleep(0.06)
            sched.submit(JobSpec(tenant="t", kind="blocks", priority=5,
                                 params={"blocks": 2, "compute": 0.01}))
        sched.close()

    kernel.spawn(meddler, name="meddler")
    kernel.run()
    assert victim.state is JobState.DONE
    worked = [victim.progress[f"worked.r0.a{a}"]
              for a in range(1, victim.attempts + 1)]
    return victim, worked


def multitenant_experiment():
    trace = make_trace()
    n_heavy = sum(1 for a in trace if a.spec.tenant == "heavy")
    n_light = len(trace) - n_heavy
    assert n_light >= 50, "workload must exercise the light tenant"

    fifo = run_policy(trace, "fifo")
    fair = run_policy(trace, "fair", provenance=True)
    fair_again = run_policy(trace, "fair", provenance=True)

    # -- gate: everything completes under both policies ---------------------
    assert fifo.done == N_JOBS and fifo.failed == 0
    assert fair.done == N_JOBS and fair.failed == 0

    # -- gate: fair share rescues the starved tenant's tail -----------------
    fifo_p99 = fifo.tenants["light"]["p99"]
    fair_p99 = fair.tenants["light"]["p99"]
    assert fair_p99 < fifo_p99, (
        f"fair share must cut the light tenant's p99 "
        f"({fair_p99:.3f}s vs {fifo_p99:.3f}s under FIFO)")

    # -- gate: byte-identical decision logs across identical runs -----------
    assert fair.decision_digest == fair_again.decision_digest
    assert (fair.provenance.record_digest()
            == fair_again.provenance.record_digest())

    # -- gate: the schedule replays byte-exactly from provenance ------------
    result = replay(fair.provenance)
    assert result.ok, result.describe()

    # -- gate: preemption resumes from the last durable block ---------------
    victim, worked = preemption_experiment()
    assert victim.preemptions == 2
    assert sum(worked) == 40, f"durable blocks were re-done: {worked}"
    assert all(w > 0 for w in worked)
    assert max(worked) < 40  # every attempt did a strict subset

    rows = []
    for policy, rep in (("fifo", fifo), ("fair", fair)):
        for tenant in TENANTS:
            st = rep.tenants[tenant]
            rows.append([policy, tenant, st["jobs"], st["done"],
                         st["p50"], st["p99"], st["mean"],
                         f"{rep.utilization:.1%}"])
    table = render_table(
        ["policy", "tenant", "jobs", "done", "p50_s", "p99_s",
         "mean_s", "cluster_util"], rows)
    resume = render_table(
        ["attempt", "blocks_worked"],
        [[i + 1, w] for i, w in enumerate(worked)])
    return "\n".join([
        f"multi-tenant schedule: {N_JOBS} jobs on {N_NODES} nodes "
        f"(heavy={n_heavy}, light={n_light}), seed={SEED}",
        table,
        "",
        f"light-tenant p99: fifo={fifo_p99:.3f}s fair={fair_p99:.3f}s "
        f"({fifo_p99 / fair_p99:.1f}x better under fair share)",
        f"decision log: {len(fair.decisions)} decisions, "
        f"sha256 {fair.decision_digest[:16]}… "
        f"(byte-identical across runs; provenance replay REPRODUCED)",
        "",
        "preemption resume (40-block job, preempted twice):",
        resume,
        "sum of per-attempt work == 40 blocks: no durable block re-done",
    ])


def test_multitenant_fifo_vs_fair(once):
    text = once(multitenant_experiment)
    save_result("multitenant", text)
